#include "rel/exec.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "rel/parallel.h"
#include "rel/snapshot.h"

namespace xdb::rel {

std::string PlanNode::EstimateSuffix() const {
  if (!has_estimate_) return "";
  auto fmt = [](double v) {
    double r = v < 0 ? 0 : (v > 1e15 ? 1e15 : v);
    return std::to_string(static_cast<long long>(std::llround(r)));
  };
  return " [est_rows=" + fmt(est_rows_) + " cost=" + fmt(est_cost_) + "]";
}

Result<std::vector<Row>> ExecuteAll(const PlanNode& plan, ExecCtx& ctx) {
  {
    std::vector<Row> rows;
    XDB_ASSIGN_OR_RETURN(bool partitioned,
                         TryCollectPartitioned(plan, ctx, "rel:scan", &rows));
    if (partitioned) return rows;
  }
  XDB_ASSIGN_OR_RETURN(auto cursor, plan.Open(ctx));
  std::vector<Row> rows;
  Row row;
  for (;;) {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    XDB_ASSIGN_OR_RETURN(bool has, cursor->Next(ctx, &row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

std::string ExplainPlan(const PlanNode& plan) {
  std::string out;
  plan.Explain(0, &out);
  return out;
}

namespace {
std::string Pad(int indent) { return std::string(static_cast<size_t>(indent) * 2, ' '); }

class RowVectorCursor : public Cursor {
 public:
  explicit RowVectorCursor(std::vector<Row> rows) : rows_(std::move(rows)) {}
  Result<bool> Next(ExecCtx&, Row* row) override {
    if (i_ >= rows_.size()) return false;
    *row = rows_[i_++];
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t i_ = 0;
};
}  // namespace

// ---- SeqScan ---------------------------------------------------------------

namespace {
class SeqScanCursor : public Cursor {
 public:
  explicit SeqScanCursor(TableRead read) : read_(std::move(read)) {}
  Result<bool> Next(ExecCtx& ctx, Row* row) override {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    if (id_ >= static_cast<int64_t>(read_.row_count())) return false;
    *row = read_.row(id_++);
    return true;
  }

 private:
  TableRead read_;
  int64_t id_ = 0;
};
}  // namespace

Result<std::unique_ptr<Cursor>> SeqScanNode::Open(ExecCtx& ctx) const {
  return std::unique_ptr<Cursor>(
      new SeqScanCursor(TableRead(table_, ctx.snapshot)));
}

void SeqScanNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "SeqScan(" + table_->name() + ")" + EstimateSuffix() +
          "\n";
}

// ---- IndexRangeScan ---------------------------------------------------------

namespace {
class IndexScanCursor : public Cursor {
 public:
  IndexScanCursor(TableRead read, std::vector<int64_t> ids)
      : read_(std::move(read)), ids_(std::move(ids)) {}
  Result<bool> Next(ExecCtx& ctx, Row* row) override {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    if (i_ >= ids_.size()) return false;
    *row = read_.row(ids_[i_++]);
    return true;
  }

 private:
  TableRead read_;
  std::vector<int64_t> ids_;
  size_t i_ = 0;
};
}  // namespace

Result<std::unique_ptr<Cursor>> IndexRangeScanNode::Open(ExecCtx& ctx) const {
  TableRead read(table_, ctx.snapshot);
  const BTreeIndex* index = read.index(column_);
  if (index == nullptr) {
    return Status::NotFound("no index on " + table_->name() + "." + column_);
  }
  Bound lo, hi;
  Bound* lo_ptr = nullptr;
  Bound* hi_ptr = nullptr;
  if (lo_ != nullptr) {
    XDB_ASSIGN_OR_RETURN(lo.key, lo_->Eval(ctx));
    lo.inclusive = lo_inclusive_;
    lo_ptr = &lo;
  }
  if (hi_ != nullptr) {
    XDB_ASSIGN_OR_RETURN(hi.key, hi_->Eval(ctx));
    hi.inclusive = hi_inclusive_;
    hi_ptr = &hi;
  }
  std::vector<int64_t> ids;
  index->Scan(lo_ptr, hi_ptr, &ids);
  if (rowid_order_) std::sort(ids.begin(), ids.end());
  return std::unique_ptr<Cursor>(
      new IndexScanCursor(std::move(read), std::move(ids)));
}

void IndexRangeScanNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "IndexRangeScan(" + table_->name() + "." + column_;
  if (lo_ != nullptr) {
    *out += std::string(lo_inclusive_ ? " >= " : " > ") + lo_->ToSql();
  }
  if (hi_ != nullptr) {
    *out += std::string(hi_inclusive_ ? " <= " : " < ") + hi_->ToSql();
  }
  *out += ")" + EstimateSuffix() + "\n";
}

// ---- Filter ------------------------------------------------------------------

namespace {
class FilterCursor : public Cursor {
 public:
  FilterCursor(std::unique_ptr<Cursor> child, const RelExpr* pred)
      : child_(std::move(child)), pred_(pred) {}
  Result<bool> Next(ExecCtx& ctx, Row* row) override {
    for (;;) {
      XDB_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, row));
      if (!has) return false;
      ctx.rows.push_back(row);
      auto v = pred_->Eval(ctx);
      ctx.rows.pop_back();
      if (!v.ok()) return v.status();
      if (!v->is_null() && v->ToDouble() != 0) return true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const RelExpr* pred_;
};
}  // namespace

Result<std::unique_ptr<Cursor>> FilterNode::Open(ExecCtx& ctx) const {
  XDB_ASSIGN_OR_RETURN(auto child, child_->Open(ctx));
  return std::unique_ptr<Cursor>(new FilterCursor(std::move(child), predicate_.get()));
}

void FilterNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "Filter(" + predicate_->ToSql() + ")" +
          EstimateSuffix() + "\n";
  child_->Explain(indent + 1, out);
}

// ---- Project ------------------------------------------------------------------

namespace {
class ProjectCursor : public Cursor {
 public:
  ProjectCursor(std::unique_ptr<Cursor> child, const std::vector<RelExprPtr>* exprs)
      : child_(std::move(child)), exprs_(exprs) {}
  Result<bool> Next(ExecCtx& ctx, Row* row) override {
    Row input;
    XDB_ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &input));
    if (!has) return false;
    row->clear();
    ctx.rows.push_back(&input);
    for (const RelExprPtr& e : *exprs_) {
      auto v = e->Eval(ctx);
      if (!v.ok()) {
        ctx.rows.pop_back();
        return v.status();
      }
      row->push_back(v.MoveValue());
    }
    ctx.rows.pop_back();
    return true;
  }

 private:
  std::unique_ptr<Cursor> child_;
  const std::vector<RelExprPtr>* exprs_;
};
}  // namespace

Result<std::unique_ptr<Cursor>> ProjectNode::Open(ExecCtx& ctx) const {
  XDB_ASSIGN_OR_RETURN(auto child, child_->Open(ctx));
  return std::unique_ptr<Cursor>(new ProjectCursor(std::move(child), &exprs_));
}

void ProjectNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += exprs_[i]->ToSql();
  }
  *out += ")" + EstimateSuffix() + "\n";
  child_->Explain(indent + 1, out);
}

// ---- XmlAgg --------------------------------------------------------------------

namespace {
// Appends one aggregated value to the fragment, splicing absorbed same-arena
// detached nodes directly (identical serialization to the serial ImportNode
// copy, without re-walking the subtree).
void AppendAggValue(ExecCtx& ctx, xml::Node* frag, const Datum& v) {
  if (v.is_null()) return;
  if (v.type() == DataType::kXml && v.AsXml() != nullptr) {
    xml::Node* n = v.AsXml();
    bool local = n->document() == ctx.arena && n->parent() == nullptr;
    if (n->local_name() == kFragmentName) {
      if (local) {
        for (xml::Node* c : ctx.arena->DetachChildren(n)) frag->AppendChild(c);
      } else {
        for (xml::Node* c : n->children()) {
          frag->AppendChild(ctx.arena->ImportNode(c));
        }
      }
    } else if (local) {
      frag->AppendChild(n);
    } else {
      frag->AppendChild(ctx.arena->ImportNode(n));
    }
  } else {
    frag->AppendChild(ctx.arena->CreateText(v.ToString()));
  }
}
}  // namespace

Result<std::unique_ptr<Cursor>> XmlAggNode::Open(ExecCtx& ctx) const {
  // Partition-parallel path: the child pipeline evaluates per partition and
  // each run arrives locally sorted; the k-way merge below over
  // (key, partition, in-partition position) reproduces the serial global
  // stable sort, so the output fragment is byte-identical.
  {
    std::vector<std::vector<AggItem>> runs;
    XDB_ASSIGN_OR_RETURN(
        bool partitioned,
        TryCollectAggRuns(*child_, order_by_.get(), descending_, ctx, &runs));
    if (partitioned) {
      xml::Node* frag = ctx.arena->CreateElement(kFragmentName);
      if (order_by_ == nullptr) {
        for (const auto& run : runs) {
          for (const AggItem& item : run) AppendAggValue(ctx, frag, item.value);
        }
      } else {
        std::vector<size_t> pos(runs.size(), 0);
        for (;;) {
          int best = -1;
          for (size_t p = 0; p < runs.size(); ++p) {
            if (pos[p] >= runs[p].size()) continue;
            if (best < 0) {
              best = static_cast<int>(p);
              continue;
            }
            int cmp = runs[p][pos[p]].key.Compare(
                runs[static_cast<size_t>(best)][pos[static_cast<size_t>(best)]].key);
            if (descending_) cmp = -cmp;
            // Strictly-less only: on ties the lower partition (earlier
            // original rows) wins, matching the stable sort.
            if (cmp < 0) best = static_cast<int>(p);
          }
          if (best < 0) break;
          auto& bp = pos[static_cast<size_t>(best)];
          AppendAggValue(ctx, frag, runs[static_cast<size_t>(best)][bp].value);
          ++bp;
        }
      }
      std::vector<Row> result;
      result.push_back(Row{Datum(frag)});
      return std::unique_ptr<Cursor>(new RowVectorCursor(std::move(result)));
    }
  }

  XDB_ASSIGN_OR_RETURN(auto child, child_->Open(ctx));
  struct Item {
    Datum value;
    Datum key;
    size_t original;
  };
  std::vector<Item> items;
  Row row;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool has, child->Next(ctx, &row));
    if (!has) break;
    Item item;
    item.value = row.empty() ? Datum::Null() : row[0];
    item.original = items.size();
    if (order_by_ != nullptr) {
      ctx.rows.push_back(&row);
      auto k = order_by_->Eval(ctx);
      ctx.rows.pop_back();
      if (!k.ok()) return k.status();
      item.key = k.MoveValue();
    }
    items.push_back(std::move(item));
  }
  if (order_by_ != nullptr) {
    std::stable_sort(items.begin(), items.end(), [this](const Item& a, const Item& b) {
      int cmp = a.key.Compare(b.key);
      if (descending_) cmp = -cmp;
      if (cmp != 0) return cmp < 0;
      return a.original < b.original;
    });
  }
  xml::Node* frag = ctx.arena->CreateElement(kFragmentName);
  for (const Item& item : items) {
    const Datum& v = item.value;
    if (v.is_null()) continue;
    if (v.type() == DataType::kXml && v.AsXml() != nullptr) {
      xml::Node* n = v.AsXml();
      if (n->local_name() == kFragmentName) {
        for (xml::Node* c : n->children()) {
          frag->AppendChild(ctx.arena->ImportNode(c));
        }
      } else {
        frag->AppendChild(ctx.arena->ImportNode(n));
      }
    } else {
      frag->AppendChild(ctx.arena->CreateText(v.ToString()));
    }
  }
  std::vector<Row> result;
  result.push_back(Row{Datum(frag)});
  return std::unique_ptr<Cursor>(new RowVectorCursor(std::move(result)));
}

void XmlAggNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "XMLAgg(";
  if (order_by_ != nullptr) {
    *out += "ORDER BY " + order_by_->ToSql();
    if (descending_) *out += " DESC";
  }
  *out += ")" + EstimateSuffix() + "\n";
  child_->Explain(indent + 1, out);
}

// ---- ScalarAgg -----------------------------------------------------------------

Result<std::unique_ptr<Cursor>> ScalarAggNode::Open(ExecCtx& ctx) const {
  std::unique_ptr<Cursor> child;
  {
    // Partition-parallel path: materialize the child pipeline concurrently,
    // then feed the rows — in serial order — through the unchanged
    // accumulation loop below, so floating-point summation order (and thus
    // the result) is identical to the serial walk.
    std::vector<Row> rows;
    XDB_ASSIGN_OR_RETURN(
        bool partitioned,
        TryCollectPartitioned(*child_, ctx, "rel:scalar-agg", &rows));
    if (partitioned) {
      child = std::make_unique<RowVectorCursor>(std::move(rows));
    } else {
      XDB_ASSIGN_OR_RETURN(child, child_->Open(ctx));
    }
  }
  double sum = 0;
  int64_t count = 0;
  Datum min_v, max_v;
  Row row;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool has, child->Next(ctx, &row));
    if (!has) break;
    Datum v;
    if (arg_ != nullptr) {
      ctx.rows.push_back(&row);
      auto r = arg_->Eval(ctx);
      ctx.rows.pop_back();
      if (!r.ok()) return r.status();
      v = r.MoveValue();
    } else if (!row.empty()) {
      v = row[0];
    }
    if (v.is_null()) continue;
    ++count;
    double d = v.ToDouble();
    if (!std::isnan(d)) sum += d;
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }
  Datum out;
  switch (kind_) {
    case AggKind::kSum:
      out = Datum(sum);
      break;
    case AggKind::kCount:
      out = Datum(count);
      break;
    case AggKind::kMin:
      out = min_v;
      break;
    case AggKind::kMax:
      out = max_v;
      break;
  }
  std::vector<Row> result;
  result.push_back(Row{std::move(out)});
  return std::unique_ptr<Cursor>(new RowVectorCursor(std::move(result)));
}

void ScalarAggNode::Explain(int indent, std::string* out) const {
  const char* name = kind_ == AggKind::kSum
                         ? "SUM"
                         : (kind_ == AggKind::kCount
                                ? "COUNT"
                                : (kind_ == AggKind::kMin ? "MIN" : "MAX"));
  *out += Pad(indent) + std::string(name) + "(" +
          (arg_ != nullptr ? arg_->ToSql() : "*") + ")" + EstimateSuffix() +
          "\n";
  child_->Explain(indent + 1, out);
}

// ---- GroupJoin -----------------------------------------------------------------

const char* JoinStrategyName(JoinStrategy strategy) {
  return strategy == JoinStrategy::kHash ? "hash" : "index-nl";
}

namespace {
struct DatumHash {
  size_t operator()(const Datum& d) const {
    return static_cast<size_t>(d.Hash());
  }
};
struct DatumKeyEq {
  bool operator()(const Datum& a, const Datum& b) const {
    return a.Compare(b) == 0;
  }
};

void BumpJoinCounter(ExecCtx& ctx, std::atomic<uint64_t> JoinRuntimeStats::*f,
                     uint64_t n = 1) {
  if (ctx.join_stats != nullptr) {
    (ctx.join_stats->*f).fetch_add(n, std::memory_order_relaxed);
  }
}
}  // namespace

struct GroupJoinNode::Probe {
  /// kHash: right-table row ids grouped by join key, residuals already
  /// applied. Ids are ascending because the build scans in row-id order —
  /// the aggregation then sees matches in document order without a sort.
  std::unordered_map<Datum, std::vector<int64_t>, DatumHash, DatumKeyEq>
      groups;
  /// Right-table read handle (pinned version or live), resolved once at
  /// probe build; row ids above refer to it.
  TableRead right;
};

Result<std::shared_ptr<const GroupJoinNode::Probe>> GroupJoinNode::PrepareProbe(
    ExecCtx& ctx) const {
  auto probe = std::make_shared<Probe>();
  probe->right = TableRead(right_table_, ctx.snapshot);
  if (strategy_ == JoinStrategy::kHash) {
    int64_t rows = static_cast<int64_t>(probe->right.row_count());
    for (int64_t id = 0; id < rows; ++id) {
      XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
      BumpJoinCounter(ctx, &JoinRuntimeStats::build_rows);
      const Row& r = probe->right.row(id);
      XDB_ASSIGN_OR_RETURN(bool keep, EvalResiduals(ctx, r));
      if (!keep) continue;
      const Datum& key = r[static_cast<size_t>(right_key_)];
      if (key.is_null()) continue;  // an equi-join never matches NULL
      probe->groups[key].push_back(id);
    }
  } else if (probe->right.index(right_key_name_) == nullptr) {
    return Status::NotFound("no index on " + right_table_->name() + "." +
                            right_key_name_);
  }
  return std::shared_ptr<const Probe>(std::move(probe));
}

Result<bool> GroupJoinNode::EvalResiduals(ExecCtx& ctx,
                                          const Row& right_row) const {
  if (residual_.empty()) return true;
  ctx.rows.push_back(&right_row);
  for (const RelExprPtr& e : residual_) {
    auto v = e->Eval(ctx);
    if (!v.ok()) {
      ctx.rows.pop_back();
      return v.status();
    }
    if (v->is_null() || v->ToDouble() == 0) {
      ctx.rows.pop_back();
      return false;
    }
  }
  ctx.rows.pop_back();
  return true;
}

Result<Datum> GroupJoinNode::AggregateGroup(ExecCtx& ctx,
                                            const TableRead& right,
                                            const std::vector<int64_t>& ids,
                                            bool apply_residual) const {
  if (spec_.is_xmlagg) {
    struct Item {
      Datum value;
      Datum key;
      size_t original;
    };
    std::vector<Item> items;
    for (int64_t id : ids) {
      XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
      const Row& rrow = right.row(id);
      if (apply_residual) {
        XDB_ASSIGN_OR_RETURN(bool keep, EvalResiduals(ctx, rrow));
        if (!keep) continue;
      }
      BumpJoinCounter(ctx, &JoinRuntimeStats::match_rows);
      Row proj;
      ctx.rows.push_back(&rrow);
      for (const RelExprPtr& e : spec_.project) {
        auto v = e->Eval(ctx);
        if (!v.ok()) {
          ctx.rows.pop_back();
          return v.status();
        }
        proj.push_back(v.MoveValue());
      }
      ctx.rows.pop_back();
      Item item;
      item.original = items.size();
      if (spec_.order_by != nullptr) {
        // The order key sees the projected row, mirroring Project -> XMLAgg.
        ctx.rows.push_back(&proj);
        auto k = spec_.order_by->Eval(ctx);
        ctx.rows.pop_back();
        if (!k.ok()) return k.status();
        item.key = k.MoveValue();
      }
      item.value = proj.empty() ? Datum::Null() : std::move(proj[0]);
      items.push_back(std::move(item));
    }
    if (spec_.order_by != nullptr) {
      std::stable_sort(items.begin(), items.end(),
                       [this](const Item& a, const Item& b) {
                         int cmp = a.key.Compare(b.key);
                         if (spec_.descending) cmp = -cmp;
                         if (cmp != 0) return cmp < 0;
                         return a.original < b.original;
                       });
    }
    xml::Node* frag = ctx.arena->CreateElement(kFragmentName);
    for (const Item& item : items) AppendAggValue(ctx, frag, item.value);
    return Datum(frag);
  }
  // Scalar aggregation: same accumulation (and empty-group results: SUM=0,
  // COUNT=0, MIN/MAX=NULL) as ScalarAggNode.
  double sum = 0;
  int64_t count = 0;
  Datum min_v, max_v;
  for (int64_t id : ids) {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    const Row& rrow = right.row(id);
    if (apply_residual) {
      XDB_ASSIGN_OR_RETURN(bool keep, EvalResiduals(ctx, rrow));
      if (!keep) continue;
    }
    BumpJoinCounter(ctx, &JoinRuntimeStats::match_rows);
    Datum v;
    if (spec_.arg != nullptr) {
      ctx.rows.push_back(&rrow);
      auto r = spec_.arg->Eval(ctx);
      ctx.rows.pop_back();
      if (!r.ok()) return r.status();
      v = r.MoveValue();
    } else if (!rrow.empty()) {
      v = rrow[0];
    }
    if (v.is_null()) continue;
    ++count;
    double d = v.ToDouble();
    if (!std::isnan(d)) sum += d;
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }
  switch (spec_.agg) {
    case AggKind::kSum:
      return Datum(sum);
    case AggKind::kCount:
      return Datum(count);
    case AggKind::kMin:
      return min_v;
    case AggKind::kMax:
      return max_v;
  }
  return Datum::Null();
}

Result<Datum> GroupJoinNode::ProbeOne(ExecCtx& ctx, const Probe& probe,
                                      const Row& left_row) const {
  BumpJoinCounter(ctx, &JoinRuntimeStats::probe_rows);
  ctx.rows.push_back(&left_row);
  auto key_r = left_key_->Eval(ctx);
  ctx.rows.pop_back();
  if (!key_r.ok()) return key_r.status();
  Datum key = key_r.MoveValue();
  static const std::vector<int64_t> kEmptyGroup;
  const std::vector<int64_t>* ids = &kEmptyGroup;
  std::vector<int64_t> looked_up;
  if (!key.is_null()) {
    if (strategy_ == JoinStrategy::kHash) {
      auto it = probe.groups.find(key);
      if (it != probe.groups.end()) ids = &it->second;
    } else {
      const BTreeIndex* index = probe.right.index(right_key_name_);
      if (index == nullptr) {
        return Status::NotFound("no index on " + right_table_->name() + "." +
                                right_key_name_);
      }
      Bound lo{key, true};
      Bound hi{key, true};
      index->Scan(&lo, &hi, &looked_up);
      // Key-equal entries come back in index order; document order is what
      // the aggregate must see.
      std::sort(looked_up.begin(), looked_up.end());
      ids = &looked_up;
    }
  }
  return AggregateGroup(ctx, probe.right, *ids,
                        /*apply_residual=*/strategy_ == JoinStrategy::kIndexNl);
}

namespace {
class GroupJoinCursor : public Cursor {
 public:
  GroupJoinCursor(const GroupJoinNode* node, std::unique_ptr<Cursor> left,
                  std::shared_ptr<const GroupJoinNode::Probe> probe)
      : node_(node), left_(std::move(left)), probe_(std::move(probe)) {}
  Result<bool> Next(ExecCtx& ctx, Row* row) override {
    Row left_row;
    XDB_ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &left_row));
    if (!has) return false;
    XDB_ASSIGN_OR_RETURN(Datum agg, node_->ProbeOne(ctx, *probe_, left_row));
    *row = std::move(left_row);
    row->push_back(std::move(agg));
    return true;
  }

 private:
  const GroupJoinNode* node_;
  std::unique_ptr<Cursor> left_;
  std::shared_ptr<const GroupJoinNode::Probe> probe_;
};
}  // namespace

Result<std::unique_ptr<Cursor>> GroupJoinNode::Open(ExecCtx& ctx) const {
  XDB_ASSIGN_OR_RETURN(std::shared_ptr<const Probe> probe, PrepareProbe(ctx));
  XDB_ASSIGN_OR_RETURN(auto left, left_->Open(ctx));
  return std::unique_ptr<Cursor>(
      new GroupJoinCursor(this, std::move(left), std::move(probe)));
}

void GroupJoinNode::Explain(int indent, std::string* out) const {
  std::string agg;
  if (spec_.is_xmlagg) {
    agg = "XMLAgg";
    if (spec_.order_by != nullptr) {
      agg += " ORDER BY " + spec_.order_by->ToSql();
      if (spec_.descending) agg += " DESC";
    }
  } else {
    const char* name =
        spec_.agg == AggKind::kSum
            ? "SUM"
            : (spec_.agg == AggKind::kCount
                   ? "COUNT"
                   : (spec_.agg == AggKind::kMin ? "MIN" : "MAX"));
    agg = std::string(name) + "(" +
          (spec_.arg != nullptr ? spec_.arg->ToSql() : "*") + ")";
  }
  *out += Pad(indent) +
          (strategy_ == JoinStrategy::kHash ? "HashGroupJoin("
                                            : "IndexNLGroupJoin(") +
          right_table_->name() + "." + right_key_name_ + " = " +
          left_key_->ToSql() + ", " + agg + ")" + EstimateSuffix() + "\n";
  if (!residual_.empty()) {
    *out += Pad(indent + 1) + "Residual(";
    for (size_t i = 0; i < residual_.size(); ++i) {
      if (i > 0) *out += " AND ";
      *out += residual_[i]->ToSql();
    }
    *out += ")\n";
  }
  left_->Explain(indent + 1, out);
}

// ---- StructuralJoin ------------------------------------------------------------

const char* StructuralAxisName(StructuralAxis axis) {
  switch (axis) {
    case StructuralAxis::kDescendant:
      return "descendant";
    case StructuralAxis::kDescendantOrSelf:
      return "descendant-or-self";
    case StructuralAxis::kAncestor:
      return "ancestor";
    case StructuralAxis::kChildLevel:
      return "child";
  }
  return "?";
}

const char* StructuralStrategyName(StructuralStrategy strategy) {
  return strategy == StructuralStrategy::kRange ? "interval-range"
                                                : "interval-scan";
}

Result<std::unique_ptr<Cursor>> StructuralJoinNode::Open(ExecCtx& ctx) const {
  BumpJoinCounter(ctx, &JoinRuntimeStats::structural_joins);
  if (has_estimate()) {
    BumpJoinCounter(ctx, &JoinRuntimeStats::structural_est_rows,
                    static_cast<uint64_t>(est_rows() < 0 ? 0 : est_rows()));
  }
  XDB_ASSIGN_OR_RETURN(Datum start_d, outer_start_->Eval(ctx));
  XDB_ASSIGN_OR_RETURN(Datum end_d, outer_end_->Eval(ctx));
  if (start_d.is_null() || end_d.is_null()) {
    return Status::Internal("structural join anchor interval is NULL");
  }
  int64_t anchor_start = start_d.AsInt();
  int64_t anchor_end = end_d.AsInt();
  int64_t anchor_level = 0;
  if (axis_ == StructuralAxis::kChildLevel) {
    XDB_ASSIGN_OR_RETURN(Datum level_d, outer_level_->Eval(ctx));
    if (level_d.is_null()) {
      return Status::Internal("structural join anchor level is NULL");
    }
    anchor_level = level_d.AsInt();
  }

  TableRead read(table_, ctx.snapshot);
  // Qualifies `id` against the axis predicate the `start` range alone does
  // not imply: the ancestor staircase's end condition and the child axis'
  // level equality. Range bounds below make the start comparisons redundant
  // for kRange; kScan applies everything here.
  auto qualifies = [&](int64_t id, bool check_start) -> bool {
    const Row& r = read.row(id);
    int64_t start = r[static_cast<size_t>(start_col_)].AsInt();
    int64_t end = r[static_cast<size_t>(end_col_)].AsInt();
    switch (axis_) {
      case StructuralAxis::kDescendant:
        return !check_start || (anchor_start < start && start < anchor_end);
      case StructuralAxis::kDescendantOrSelf:
        return !check_start || (anchor_start <= start && start <= anchor_end);
      case StructuralAxis::kAncestor:
        if (check_start && start >= anchor_start) return false;
        return end > anchor_end;
      case StructuralAxis::kChildLevel:
        if (check_start && !(anchor_start < start && start < anchor_end)) {
          return false;
        }
        return r[static_cast<size_t>(level_col_)].AsInt() == anchor_level + 1;
    }
    return false;
  };

  std::vector<int64_t> ids;
  if (strategy_ == StructuralStrategy::kRange) {
    const BTreeIndex* index = read.index(start_name_);
    if (index == nullptr) {
      return Status::NotFound("no index on " + table_->name() + "." +
                              start_name_);
    }
    bool inclusive = axis_ == StructuralAxis::kDescendantOrSelf;
    std::vector<int64_t> candidates;
    if (axis_ == StructuralAxis::kAncestor) {
      // Ancestors have start < anchor_start; the end > anchor_end residual
      // prunes the preceding (non-enclosing) intervals from the prefix.
      Bound hi{Datum(anchor_start), false};
      index->Scan(nullptr, &hi, &candidates);
    } else {
      Bound lo{Datum(anchor_start), inclusive};
      Bound hi{Datum(anchor_end), inclusive};
      index->Scan(&lo, &hi, &candidates);
    }
    for (int64_t id : candidates) {
      XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
      if (qualifies(id, /*check_start=*/false)) ids.push_back(id);
    }
  } else {
    int64_t rows = static_cast<int64_t>(read.row_count());
    for (int64_t id = 0; id < rows; ++id) {
      XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
      if (qualifies(id, /*check_start=*/true)) ids.push_back(id);
    }
  }
  // Preorder numbering makes start order == rowid order == document order;
  // sorting ids restores it after the index scan (kScan is already sorted).
  std::sort(ids.begin(), ids.end());
  BumpJoinCounter(ctx, &JoinRuntimeStats::structural_match_rows,
                  static_cast<uint64_t>(ids.size()));
  return std::unique_ptr<Cursor>(
      new IndexScanCursor(std::move(read), std::move(ids)));
}

void StructuralJoinNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "StructuralJoin(" + table_->name() + ", axis=" +
          StructuralAxisName(axis_) + ", anchor=[" + outer_start_->ToSql() +
          ", " + outer_end_->ToSql() + "], strategy=" +
          StructuralStrategyName(strategy_) + ")" + EstimateSuffix() + "\n";
}

// ---- RecursiveApply ------------------------------------------------------------

Result<Datum> RecursiveApplyExpr::Eval(ExecCtx& ctx) const {
  if (slot == nullptr || slot->target == nullptr) {
    return Status::Internal(
        "recursive publish slot unresolved (compiler bug: target element "
        "expression was never registered)");
  }
  XDB_ASSIGN_OR_RETURN(Datum key, outer_key->Eval(ctx));
  TableRead read(table, ctx.snapshot);
  std::vector<int64_t> ids;
  if (!key.is_null()) {
    const std::string& key_name =
        table->schema().column(static_cast<size_t>(inner_key_column)).name;
    const BTreeIndex* index = read.index(key_name);
    if (index != nullptr) {
      Bound lo{key, true};
      Bound hi{key, true};
      index->Scan(&lo, &hi, &ids);
      std::sort(ids.begin(), ids.end());
    } else {
      int64_t rows = static_cast<int64_t>(read.row_count());
      for (int64_t id = 0; id < rows; ++id) {
        XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
        const Row& r = read.row(id);
        if (r[static_cast<size_t>(inner_key_column)].Compare(key) == 0) {
          ids.push_back(id);
        }
      }
    }
  }
  if (order_column >= 0) {
    // Sibling order: ord column ascending, row id as the stable tiebreak.
    std::stable_sort(ids.begin(), ids.end(), [&](int64_t a, int64_t b) {
      return read.row(a)[static_cast<size_t>(order_column)].Compare(
                 read.row(b)[static_cast<size_t>(order_column)]) < 0;
    });
  }
  // Re-apply the recursion target's element expression per child row. Depth
  // is bounded: each level descends to rows whose parent link is the current
  // row, and the shredder's parent links form a forest.
  xml::Node* frag = ctx.arena->CreateElement(kFragmentName);
  for (int64_t id : ids) {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    const Row& child_row = read.row(id);
    ctx.rows.push_back(&child_row);
    auto v = slot->target->Eval(ctx);
    ctx.rows.pop_back();
    if (!v.ok()) return v.status();
    AppendAggValue(ctx, frag, *v);
  }
  return Datum(frag);
}

std::string RecursiveApplyExpr::ToSql() const {
  const std::string& key_name =
      table->schema().column(static_cast<size_t>(inner_key_column)).name;
  return "RECURSIVE_XMLAGG(" + table->name() + " WHERE " + table->name() +
         "." + key_name + " = " + outer_key->ToSql() + ")";
}

// ---- Sort ----------------------------------------------------------------------

Result<std::unique_ptr<Cursor>> SortNode::Open(ExecCtx& ctx) const {
  XDB_ASSIGN_OR_RETURN(auto child, child_->Open(ctx));
  struct Entry {
    Row row;
    std::vector<Datum> keys;
    size_t original;
  };
  std::vector<Entry> entries;
  Row row;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool has, child->Next(ctx, &row));
    if (!has) break;
    Entry e;
    e.row = row;
    e.original = entries.size();
    ctx.rows.push_back(&e.row);
    for (const Key& k : keys_) {
      auto v = k.expr->Eval(ctx);
      if (!v.ok()) {
        ctx.rows.pop_back();
        return v.status();
      }
      e.keys.push_back(v.MoveValue());
    }
    ctx.rows.pop_back();
    entries.push_back(std::move(e));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [this](const Entry& a, const Entry& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int cmp = a.keys[i].Compare(b.keys[i]);
                       if (keys_[i].descending) cmp = -cmp;
                       if (cmp != 0) return cmp < 0;
                     }
                     return a.original < b.original;
                   });
  std::vector<Row> rows;
  rows.reserve(entries.size());
  for (Entry& e : entries) rows.push_back(std::move(e.row));
  return std::unique_ptr<Cursor>(new RowVectorCursor(std::move(rows)));
}

void SortNode::Explain(int indent, std::string* out) const {
  *out += Pad(indent) + "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += keys_[i].expr->ToSql();
    if (keys_[i].descending) *out += " DESC";
  }
  *out += ")" + EstimateSuffix() + "\n";
  child_->Explain(indent + 1, out);
}

}  // namespace xdb::rel
