// The rule-based optimizer (rel/optimizer.h): per-rule fires/declines and
// result equivalence over hand-built logical plans, XDB_DISABLE_OPT_RULES
// parsing, and two-level golden EXPLAIN snapshots for the paper's Table-8
// workload and an xsltmark case.
#include "rel/optimizer.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/xmldb.h"
#include "rel/catalog.h"
#include "rel/logical.h"
#include "xsltmark/suite.h"

namespace xdb::rel {
namespace {

RelExprPtr Col(int level, int column, const char* display) {
  return std::make_unique<ColumnRefExpr>(level, column, display);
}
RelExprPtr Int(int64_t v) { return std::make_unique<ConstExpr>(Datum(v)); }
RelExprPtr Str(const char* v) { return std::make_unique<ConstExpr>(Datum(v)); }
RelExprPtr Bin(RelOp op, RelExprPtr l, RelExprPtr r) {
  return std::make_unique<BinaryRelExpr>(op, std::move(l), std::move(r));
}
RelExprPtr Apply(LogicalPlanPtr plan) {
  return std::make_unique<LogicalApplyExpr>(
      std::shared_ptr<LogicalNode>(std::move(plan)));
}

const RuleTrace* FindTrace(const OptimizedQuery& q, const char* rule) {
  for (const RuleTrace& t : q.trace) {
    if (t.rule == rule) return &t;
  }
  return nullptr;
}

// emp(empno, ename, job, sal[indexed], deptno) + a two-row dept outer table,
// the same shape the rewriter emits for the paper's running example.
class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dept = catalog_.CreateTable(
        "dept", Schema({{"deptno", DataType::kInt},
                        {"dname", DataType::kString}}));
    ASSERT_TRUE(dept.ok());
    dept_ = *dept;
    ASSERT_TRUE(dept_->Insert({Datum(int64_t{10}), Datum("ACCOUNTING")}).ok());
    ASSERT_TRUE(dept_->Insert({Datum(int64_t{40}), Datum("OPERATIONS")}).ok());

    auto emp = catalog_.CreateTable(
        "emp", Schema({{"empno", DataType::kInt},
                       {"ename", DataType::kString},
                       {"job", DataType::kString},
                       {"sal", DataType::kInt},
                       {"deptno", DataType::kInt}}));
    ASSERT_TRUE(emp.ok());
    emp_ = *emp;
    ASSERT_TRUE(emp_->Insert({Datum(int64_t{7782}), Datum("CLARK"),
                              Datum("MANAGER"), Datum(int64_t{2450}),
                              Datum(int64_t{10})})
                    .ok());
    ASSERT_TRUE(emp_->Insert({Datum(int64_t{7934}), Datum("MILLER"),
                              Datum("CLERK"), Datum(int64_t{1300}),
                              Datum(int64_t{10})})
                    .ok());
    ASSERT_TRUE(emp_->Insert({Datum(int64_t{7954}), Datum("SMITH"),
                              Datum("VP"), Datum(int64_t{4900}),
                              Datum(int64_t{40})})
                    .ok());
    ASSERT_TRUE(emp_->CreateIndex("sal").ok());
  }

  // emp.deptno = dept.deptno (the correlation the rewriter emits first).
  RelExprPtr CorrPredicate() {
    return Bin(RelOp::kEq, Col(0, 4, "emp.deptno"), Col(1, 0, "dept.deptno"));
  }

  // COUNT(*) over Filter(predicate, Scan(emp)), wrapped as a correlated
  // apply — the smallest plan every rule can act on.
  RelExprPtr CountEmpWhere(RelExprPtr predicate) {
    LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(emp_);
    plan = std::make_unique<LogicalFilterNode>(std::move(plan),
                                               std::move(predicate));
    plan = std::make_unique<LogicalScalarAggNode>(std::move(plan),
                                                  AggKind::kCount, nullptr);
    return Apply(std::move(plan));
  }

  // Evaluates the optimized expression once per dept row; returns the
  // serialized values (ToString) in row order.
  std::vector<std::string> EvalPerDeptRow(const RelExpr& expr) {
    std::vector<std::string> out;
    for (size_t i = 0; i < dept_->row_count(); ++i) {
      xml::Document arena;
      ExecCtx ctx;
      ctx.arena = &arena;
      const Row& row = dept_->row(static_cast<int64_t>(i));
      ctx.rows.push_back(&row);
      auto v = expr.Eval(ctx);
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      out.push_back(v.ok() ? v->ToString() : "<error>");
    }
    return out;
  }

  // Optimizes a fresh copy built by `build` under `options` and returns both
  // the OptimizedQuery and the per-dept-row results.
  OptimizedQuery Optimize(RelExprPtr root, const OptimizerOptions& options) {
    Optimizer optimizer(options);
    auto r = optimizer.Run(std::move(root));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  }

  Catalog catalog_;
  Table* dept_ = nullptr;
  Table* emp_ = nullptr;
};

OptimizerOptions OnlyRule(const char* rule) {
  OptimizerOptions o;
  o.enable_predicate_pushdown = rule == kRulePredicatePushdown;
  o.enable_index_selection = rule == kRuleIndexRangeScan;
  o.enable_constant_folding = rule == kRuleConstantFold;
  o.enable_column_pruning = rule == kRuleColumnPruning;
  o.enable_subplan_dedup = rule == kRuleSubplanDedup;
  return o;
}

OptimizerOptions NoRules() { return OnlyRule("none"); }

// ---------------------------------------------------------------------------
// XDB_DISABLE_OPT_RULES parsing.
// ---------------------------------------------------------------------------

TEST(OptimizerOptionsTest, FromEnvParsesDisableList) {
  setenv("XDB_DISABLE_OPT_RULES", "index-range-scan, constant-fold,bogus", 1);
  OptimizerOptions o = OptimizerOptionsFromEnv();
  EXPECT_TRUE(o.enable_predicate_pushdown);
  EXPECT_FALSE(o.enable_index_selection);
  EXPECT_FALSE(o.enable_constant_folding);  // spaces trimmed
  EXPECT_TRUE(o.enable_column_pruning);     // unknown names ignored
  EXPECT_TRUE(o.enable_subplan_dedup);
  EXPECT_TRUE(o.enable_join_lowering);

  setenv("XDB_DISABLE_OPT_RULES", "join-lowering,join-order", 1);
  o = OptimizerOptionsFromEnv();
  EXPECT_FALSE(o.enable_join_lowering);
  EXPECT_TRUE(o.enable_join_access_path);
  EXPECT_FALSE(o.enable_join_order);

  setenv("XDB_DISABLE_OPT_RULES", "all", 1);
  o = OptimizerOptionsFromEnv();
  EXPECT_FALSE(o.enable_predicate_pushdown);
  EXPECT_FALSE(o.enable_index_selection);
  EXPECT_FALSE(o.enable_constant_folding);
  EXPECT_FALSE(o.enable_column_pruning);
  EXPECT_FALSE(o.enable_subplan_dedup);
  EXPECT_FALSE(o.enable_join_lowering);
  EXPECT_FALSE(o.enable_join_access_path);
  EXPECT_FALSE(o.enable_join_order);

  unsetenv("XDB_DISABLE_OPT_RULES");
  o = OptimizerOptionsFromEnv();
  EXPECT_TRUE(o.enable_predicate_pushdown);
  EXPECT_TRUE(o.enable_index_selection);
  EXPECT_TRUE(o.enable_constant_folding);
  EXPECT_TRUE(o.enable_column_pruning);
  EXPECT_TRUE(o.enable_subplan_dedup);
  EXPECT_TRUE(o.enable_join_lowering);
  EXPECT_TRUE(o.enable_join_access_path);
  EXPECT_TRUE(o.enable_join_order);
}

TEST(OptimizerTest, RejectsNullRoot) {
  Optimizer optimizer;
  EXPECT_FALSE(optimizer.Run(nullptr).ok());
}

// ---------------------------------------------------------------------------
// predicate-pushdown.
// ---------------------------------------------------------------------------

TEST_F(OptimizerFixture, PredicatePushdownSplitsConjunction) {
  // corr AND sal > 2000 AND job = 'VP' (left-associated, corr first).
  RelExprPtr pred =
      Bin(RelOp::kAnd,
          Bin(RelOp::kAnd, CorrPredicate(),
              Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000))),
          Bin(RelOp::kEq, Col(0, 2, "emp.job"), Str("VP")));
  auto baseline = EvalPerDeptRow(
      *Optimize(CountEmpWhere(std::move(pred)), NoRules()).expr);

  pred = Bin(RelOp::kAnd,
             Bin(RelOp::kAnd, CorrPredicate(),
                 Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000))),
             Bin(RelOp::kEq, Col(0, 2, "emp.job"), Str("VP")));
  OptimizedQuery q = Optimize(CountEmpWhere(std::move(pred)),
                              OnlyRule(kRulePredicatePushdown));
  EXPECT_EQ(q.predicates_pushed, 2);  // the correlation does not count
  // Node count is conserved: each dropped AND becomes a Filter. Assert the
  // structural effect instead — three single-predicate filters.
  size_t filters = 0;
  for (size_t p = q.logical_plan.find("Filter("); p != std::string::npos;
       p = q.logical_plan.find("Filter(", p + 1)) {
    ++filters;
  }
  EXPECT_EQ(filters, 3u) << q.logical_plan;
  // Correlation innermost (deepest indent renders last).
  size_t corr_pos = q.logical_plan.find("emp.deptno = dept.deptno");
  size_t sal_pos = q.logical_plan.find("emp.sal > 2000");
  size_t job_pos = q.logical_plan.find("emp.job = 'VP'");
  ASSERT_NE(corr_pos, std::string::npos) << q.logical_plan;
  ASSERT_NE(sal_pos, std::string::npos) << q.logical_plan;
  ASSERT_NE(job_pos, std::string::npos) << q.logical_plan;
  EXPECT_GT(corr_pos, sal_pos);
  EXPECT_GT(sal_pos, job_pos);
  EXPECT_EQ(EvalPerDeptRow(*q.expr), baseline);
}

TEST_F(OptimizerFixture, PredicatePushdownDeclinesOnSingleConjunct) {
  OptimizedQuery q = Optimize(CountEmpWhere(CorrPredicate()),
                              OnlyRule(kRulePredicatePushdown));
  EXPECT_EQ(q.predicates_pushed, 0);
  const RuleTrace* t = FindTrace(q, kRulePredicatePushdown);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->nodes_before, t->nodes_after);
}

// ---------------------------------------------------------------------------
// index-range-scan.
// ---------------------------------------------------------------------------

TEST_F(OptimizerFixture, IndexRangeScanFiresOnIndexedColumn) {
  auto build = [this] {
    LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(emp_);
    plan = std::make_unique<LogicalFilterNode>(
        std::move(plan), Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000)));
    plan = std::make_unique<LogicalScalarAggNode>(std::move(plan),
                                                  AggKind::kCount, nullptr);
    return Apply(std::move(plan));
  };
  auto baseline = EvalPerDeptRow(*Optimize(build(), NoRules()).expr);

  OptimizedQuery q = Optimize(build(), OnlyRule(kRuleIndexRangeScan));
  EXPECT_TRUE(q.used_index);
  EXPECT_NE(q.logical_plan.find("IndexScan"), std::string::npos)
      << q.logical_plan;
  const RuleTrace* t = FindTrace(q, kRuleIndexRangeScan);
  ASSERT_NE(t, nullptr);
  EXPECT_LT(t->nodes_after, t->nodes_before);  // the filter was absorbed
  EXPECT_EQ(EvalPerDeptRow(*q.expr), baseline);
}

TEST_F(OptimizerFixture, IndexRangeScanDeclinesWithoutIndex) {
  // job has no B-tree; the filter must stay a filter.
  OptimizedQuery q = Optimize(
      CountEmpWhere(Bin(RelOp::kEq, Col(0, 2, "emp.job"), Str("VP"))),
      OnlyRule(kRuleIndexRangeScan));
  EXPECT_FALSE(q.used_index);
  EXPECT_EQ(q.logical_plan.find("IndexScan"), std::string::npos)
      << q.logical_plan;
}

TEST_F(OptimizerFixture, IndexRangeScanDeclinesOnCorrelatedComparison) {
  // sal > dept.deptno compares against the outer row, not a constant.
  OptimizedQuery q = Optimize(
      CountEmpWhere(
          Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Col(1, 0, "dept.deptno"))),
      OnlyRule(kRuleIndexRangeScan));
  EXPECT_FALSE(q.used_index);
}

TEST_F(OptimizerFixture, PushdownThenIndexSelectionComposes) {
  // The full pipeline on the rewriter's natural shape: one conjunction.
  auto build = [this] {
    return CountEmpWhere(
        Bin(RelOp::kAnd, CorrPredicate(),
            Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000))));
  };
  auto baseline = EvalPerDeptRow(*Optimize(build(), NoRules()).expr);

  OptimizedQuery q = Optimize(build(), OptimizerOptions());
  EXPECT_TRUE(q.used_index);
  EXPECT_EQ(q.predicates_pushed, 1);
  EXPECT_EQ(q.trace.size(), 9u);  // all rules ran and traced
  EXPECT_EQ(EvalPerDeptRow(*q.expr), baseline);
  EXPECT_EQ(baseline, (std::vector<std::string>{"1", "1"}));  // CLARK; SMITH
}

// ---------------------------------------------------------------------------
// constant-fold.
// ---------------------------------------------------------------------------

TEST_F(OptimizerFixture, ConstantFoldFoldsBinaryAndShortCircuits) {
  // (1 + 2) folds outside any subplan too.
  OptimizedQuery q = Optimize(Bin(RelOp::kPlus, Int(1), Int(2)),
                              OnlyRule(kRuleConstantFold));
  ASSERT_EQ(q.expr->kind(), RelExprKind::kConst);
  EXPECT_EQ(static_cast<const ConstExpr&>(*q.expr).value.ToString(), "3");

  // 0 AND <non-constant> short-circuits to 0 without touching the column.
  q = Optimize(Bin(RelOp::kAnd, Int(0), Col(0, 3, "emp.sal")),
               OnlyRule(kRuleConstantFold));
  ASSERT_EQ(q.expr->kind(), RelExprKind::kConst);
  EXPECT_EQ(static_cast<const ConstExpr&>(*q.expr).value.ToString(), "0");

  // 1 OR <non-constant> short-circuits to 1.
  q = Optimize(Bin(RelOp::kOr, Int(1), Col(0, 3, "emp.sal")),
               OnlyRule(kRuleConstantFold));
  ASSERT_EQ(q.expr->kind(), RelExprKind::kConst);
  EXPECT_EQ(static_cast<const ConstExpr&>(*q.expr).value.ToString(), "1");
}

TEST_F(OptimizerFixture, ConstantFoldDoesNotRewriteTrueAndX) {
  // AND normalizes truthiness to 0/1, so true AND x is NOT x — the fold
  // must decline (x itself may be 7, not 1).
  OptimizedQuery q = Optimize(Bin(RelOp::kAnd, Int(1), Col(0, 3, "emp.sal")),
                              OnlyRule(kRuleConstantFold));
  EXPECT_EQ(q.expr->kind(), RelExprKind::kBinary);
}

TEST_F(OptimizerFixture, ConstantFoldPrunesCaseBranches) {
  // CASE WHEN 0 THEN 'dead' WHEN 1 THEN sal END  ==>  sal.
  auto kase = std::make_unique<CaseRelExpr>();
  kase->branches.push_back({Int(0), Str("dead")});
  kase->branches.push_back({Int(1), Col(0, 3, "emp.sal")});
  OptimizedQuery q =
      Optimize(std::move(kase), OnlyRule(kRuleConstantFold));
  EXPECT_EQ(q.expr->kind(), RelExprKind::kColumnRef);

  // All branches dead, no ELSE  ==>  NULL.
  kase = std::make_unique<CaseRelExpr>();
  kase->branches.push_back({Int(0), Str("dead")});
  q = Optimize(std::move(kase), OnlyRule(kRuleConstantFold));
  ASSERT_EQ(q.expr->kind(), RelExprKind::kConst);
  EXPECT_TRUE(static_cast<const ConstExpr&>(*q.expr).value.is_null());
}

TEST_F(OptimizerFixture, ConstantFoldReachesInsideSubplans) {
  // The filter predicate sal > (1000 + 1000) folds to sal > 2000 inside the
  // correlated subplan; results are unchanged.
  auto build = [this](RelExprPtr bound) {
    return CountEmpWhere(
        Bin(RelOp::kGt, Col(0, 3, "emp.sal"), std::move(bound)));
  };
  auto baseline =
      EvalPerDeptRow(*Optimize(build(Int(2000)), NoRules()).expr);
  OptimizedQuery q = Optimize(build(Bin(RelOp::kPlus, Int(1000), Int(1000))),
                              OnlyRule(kRuleConstantFold));
  const RuleTrace* t = FindTrace(q, kRuleConstantFold);
  ASSERT_NE(t, nullptr);
  EXPECT_LT(t->nodes_after, t->nodes_before);
  EXPECT_NE(q.logical_plan.find("2000"), std::string::npos) << q.logical_plan;
  EXPECT_EQ(EvalPerDeptRow(*q.expr), baseline);
}

// ---------------------------------------------------------------------------
// column-pruning.
// ---------------------------------------------------------------------------

TEST_F(OptimizerFixture, ColumnPruningDropsTrailingSortColumn) {
  // XMLAgg in document order over Project(ename, sal): only the first
  // projected expression feeds the aggregate; the trailing column is the
  // shape the rewriter emits for an already-satisfied ORDER BY.
  auto build = [this](bool ordered) {
    LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(emp_);
    std::vector<RelExprPtr> exprs;
    exprs.push_back(Col(0, 1, "emp.ename"));
    exprs.push_back(Col(0, 3, "emp.sal"));
    plan = std::make_unique<LogicalProjectNode>(std::move(plan),
                                                std::move(exprs));
    RelExprPtr order =
        ordered ? Col(0, 1, "sort_key") : nullptr;
    plan = std::make_unique<LogicalXmlAggNode>(std::move(plan),
                                               std::move(order), false);
    return Apply(std::move(plan));
  };

  OptimizedQuery q = Optimize(build(/*ordered=*/false),
                              OnlyRule(kRuleColumnPruning));
  const RuleTrace* t = FindTrace(q, kRuleColumnPruning);
  ASSERT_NE(t, nullptr);
  EXPECT_LT(t->nodes_after, t->nodes_before);
  EXPECT_EQ(q.logical_plan.find("emp.sal"), std::string::npos)
      << q.logical_plan;

  // With an ORDER BY the sort key is live: the rule must decline.
  q = Optimize(build(/*ordered=*/true), OnlyRule(kRuleColumnPruning));
  t = FindTrace(q, kRuleColumnPruning);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->nodes_before, t->nodes_after);
}

TEST_F(OptimizerFixture, ColumnPruningRemovesConstantTrueFilter) {
  auto build = [this] {
    LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(emp_);
    plan = std::make_unique<LogicalFilterNode>(std::move(plan), Int(1));
    plan = std::make_unique<LogicalScalarAggNode>(std::move(plan),
                                                  AggKind::kCount, nullptr);
    return Apply(std::move(plan));
  };
  auto baseline = EvalPerDeptRow(*Optimize(build(), NoRules()).expr);
  OptimizedQuery q = Optimize(build(), OnlyRule(kRuleColumnPruning));
  EXPECT_EQ(q.logical_plan.find("Filter"), std::string::npos)
      << q.logical_plan;
  EXPECT_EQ(EvalPerDeptRow(*q.expr), baseline);
  EXPECT_EQ(baseline, (std::vector<std::string>{"3", "3"}));
}

// ---------------------------------------------------------------------------
// subplan-dedup.
// ---------------------------------------------------------------------------

TEST_F(OptimizerFixture, SubplanDedupAliasesIdenticalApplies) {
  // Two structurally identical correlated counts (a template inlined twice).
  auto one = [this] {
    return CountEmpWhere(
        Bin(RelOp::kAnd, CorrPredicate(),
            Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000))));
  };
  auto concat = std::make_unique<XmlConcatExpr>();
  concat->children.push_back(one());
  concat->children.push_back(one());

  OptimizedQuery q = Optimize(std::move(concat), OnlyRule(kRuleSubplanDedup));
  const RuleTrace* t = FindTrace(q, kRuleSubplanDedup);
  ASSERT_NE(t, nullptr);
  EXPECT_LT(t->nodes_after, t->nodes_before);  // shared plans count once
  // Both lowered subqueries alias one physical plan object.
  const auto& xc = static_cast<const XmlConcatExpr&>(*q.expr);
  ASSERT_EQ(xc.children.size(), 2u);
  const auto& s0 = static_cast<const ScalarSubqueryExpr&>(*xc.children[0]);
  const auto& s1 = static_cast<const ScalarSubqueryExpr&>(*xc.children[1]);
  EXPECT_EQ(s0.plan.get(), s1.plan.get());
}

TEST_F(OptimizerFixture, SubplanDedupDeclinesOnDifferentPredicates) {
  auto concat = std::make_unique<XmlConcatExpr>();
  concat->children.push_back(CountEmpWhere(
      Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(2000))));
  concat->children.push_back(CountEmpWhere(
      Bin(RelOp::kGt, Col(0, 3, "emp.sal"), Int(3000))));

  OptimizedQuery q = Optimize(std::move(concat), OnlyRule(kRuleSubplanDedup));
  const auto& xc = static_cast<const XmlConcatExpr&>(*q.expr);
  const auto& s0 = static_cast<const ScalarSubqueryExpr&>(*xc.children[0]);
  const auto& s1 = static_cast<const ScalarSubqueryExpr&>(*xc.children[1]);
  EXPECT_NE(s0.plan.get(), s1.plan.get());
}

// ---------------------------------------------------------------------------
// Golden two-level EXPLAIN snapshots (ExplainPrepared).
// ---------------------------------------------------------------------------

// The paper's Table-8-style XQuery over the dept_emp publishing view: a
// value predicate on the indexed sal column inside a FLWOR.
TEST(ExplainGoldenTest, Table8WorkloadTwoLevelExplain) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "deptfarm", 4).ok());
  auto prepared = db.PrepareQuery(
      xsltmark::FamilyViewName("deptfarm"),
      "for $e in ./dept/employees/emp[sal > 2000] return "
      "<who>{fn:string($e/ename)}</who>");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  std::string explain = ExplainPrepared(**prepared);
  SCOPED_TRACE(explain);
  EXPECT_NE(explain.find("path: sql-rewritten"), std::string::npos);
  EXPECT_NE(explain.find("logical plan:"), std::string::npos);
  EXPECT_NE(explain.find("physical plan:"), std::string::npos);
  // The logical level keeps the paper's operator vocabulary...
  EXPECT_NE(explain.find("XMLAgg"), std::string::npos);
  EXPECT_NE(explain.find("IndexScan(emp.sal > 2000)"), std::string::npos);
  // ...and each rule reports a trace line, fired or declined.
  EXPECT_NE(explain.find("rule predicate-pushdown: "), std::string::npos);
  EXPECT_NE(explain.find("rule join-lowering: "), std::string::npos);
  EXPECT_NE(explain.find("rule index-range-scan: "), std::string::npos);
  EXPECT_NE(explain.find("rule constant-fold: "), std::string::npos);
  EXPECT_NE(explain.find("rule column-pruning: "), std::string::npos);
  EXPECT_NE(explain.find("rule join-access-path: "), std::string::npos);
  EXPECT_NE(explain.find("rule structural-join: "), std::string::npos);
  EXPECT_NE(explain.find("rule join-order: "), std::string::npos);
  EXPECT_NE(explain.find("rule subplan-dedup: "), std::string::npos);
}

TEST(ExplainGoldenTest, DbOneRowGoldenSnapshot) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 32).ok());
  const xsltmark::BenchCase* c = xsltmark::FindCase("dbonerow");
  ASSERT_NE(c, nullptr);
  auto prepared =
      db.PrepareTransform(xsltmark::FamilyViewName("db"), c->stylesheet);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(ExplainPrepared(**prepared), R"(path: sql-rewritten
logical plan:
XMLElement("out", (SELECT
  XMLAgg(ORDER BY doc_order)
    Project(XMLElement("hit", person.firstname || person.lastname), person.id)
      Filter(person.docid = mark_doc.docid)
        IndexScan(person.id >= 9 <= 9)
))
rule predicate-pushdown: 19 -> 19 nodes
rule join-lowering: 19 -> 19 nodes
rule index-range-scan: 19 -> 15 nodes
rule constant-fold: 15 -> 15 nodes
rule column-pruning: 15 -> 15 nodes
rule join-access-path: 15 -> 15 nodes
rule structural-join: 15 -> 15 nodes
rule join-order: 15 -> 15 nodes
rule subplan-dedup: 15 -> 15 nodes
physical plan:
XMLElement("out", (SELECT
  XMLAgg(ORDER BY doc_order) [est_rows=1 cost=31]
    Project(XMLElement("hit", person.firstname || person.lastname), person.id) [est_rows=3 cost=28]
      Filter(person.docid = mark_doc.docid) [est_rows=3 cost=25]
        IndexRangeScan(person.id >= 9 <= 9) [est_rows=10 cost=15]
))
parallel: eligible operators rel:scan, rel:xmlagg
)");
}

TEST(ExplainGoldenTest, DisabledRulesLeaveNoTraceAndNoIndex) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 32).ok());
  const xsltmark::BenchCase* c = xsltmark::FindCase("dbonerow");
  ASSERT_NE(c, nullptr);
  ExecOptions o;
  o.optimizer = rel::OptimizerOptions{false, false, false, false, false,
                                      false, false, false, false};
  o.use_plan_cache = false;
  ExecStats disabled_stats;
  auto disabled = db.TransformView(xsltmark::FamilyViewName("db"),
                                   c->stylesheet, o, &disabled_stats);
  ASSERT_TRUE(disabled.ok()) << disabled.status().ToString();
  EXPECT_TRUE(disabled_stats.opt_trace.empty());
  EXPECT_FALSE(disabled_stats.used_index);
  EXPECT_EQ(disabled_stats.predicates_pushed, 0);

  // The rules are pure optimizations: byte-identical output with them on.
  ExecStats enabled_stats;
  auto enabled = db.TransformView(xsltmark::FamilyViewName("db"),
                                  c->stylesheet, {}, &enabled_stats);
  ASSERT_TRUE(enabled.ok());
  EXPECT_TRUE(enabled_stats.used_index);
  EXPECT_EQ(enabled_stats.opt_trace.size(), 9u);
  EXPECT_EQ(*disabled, *enabled);
}

// The join-access-path rule must flip hash -> index-NL when the catalog
// statistics say the probe (left) side is selective. The cost difference is
// hash - indexNL = R - L*log2(R) (per-probe match work cancels), so the flip
// lever is L: an equality filter on the left estimates L = rows/ndv from the
// stats, and raising the column's NDV shrinks L until the per-probe B+tree
// descent beats the one-time build scan.
TEST(JoinAccessPathFlipTest, StatsFlipHashToIndexNl) {
  Catalog catalog;
  auto dept = catalog.CreateTable(
      "dept", Schema({{"deptno", DataType::kInt},
                      {"dname", DataType::kString}}));
  ASSERT_TRUE(dept.ok());
  auto emp = catalog.CreateTable(
      "emp", Schema({{"empno", DataType::kInt},
                     {"deptno", DataType::kInt}}));
  ASSERT_TRUE(emp.ok());
  for (int d = 0; d < 5; ++d) {
    ASSERT_TRUE((*dept)->Insert({Datum(int64_t{d}),
                                 Datum("d" + std::to_string(d))})
                    .ok());
  }
  for (int e = 0; e < 20; ++e) {
    ASSERT_TRUE(
        (*emp)->Insert({Datum(int64_t{e}), Datum(int64_t{e % 5})}).ok());
  }
  ASSERT_TRUE((*emp)->CreateIndex("deptno").ok());

  // for each dept with dname = 'd0': COUNT(emp where emp.deptno = dept.deptno)
  // — the nested-apply shape join-lowering unnests into a group join.
  auto build = [&]() -> RelExprPtr {
    LogicalPlanPtr inner = std::make_unique<LogicalScanNode>(*emp);
    inner = std::make_unique<LogicalFilterNode>(
        std::move(inner),
        Bin(RelOp::kEq, Col(0, 1, "emp.deptno"), Col(1, 0, "dept.deptno")));
    inner = std::make_unique<LogicalScalarAggNode>(std::move(inner),
                                                   AggKind::kCount, nullptr);
    LogicalPlanPtr outer = std::make_unique<LogicalScanNode>(*dept);
    outer = std::make_unique<LogicalFilterNode>(
        std::move(outer),
        Bin(RelOp::kEq, Col(0, 1, "dept.dname"), Str("d0")));
    outer = std::make_unique<LogicalScalarAggNode>(
        std::move(outer), AggKind::kSum, Apply(std::move(inner)));
    return Apply(std::move(outer));
  };
  auto optimize = [&](const char* trace) -> std::string {
    SCOPED_TRACE(trace);
    Optimizer optimizer(OptimizerOptions(), &catalog);
    auto q = optimizer.Run(build());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    if (!q.ok()) return "<error>";
    EXPECT_EQ(q->joins_lowered, 1);
    EXPECT_EQ(q->joins.size(), 1u);
    return q->joins.empty() ? "<none>" : q->joins[0].strategy;
  };

  {
    // NDV 1: the dname filter keeps all 5 dept rows — 5 probes amortize one
    // 20-row hash build better than 5 index descents with their matches.
    TableStats ts;
    ts.row_count = 5;
    ts.columns["dname"].ndv = 1;
    catalog.UpdateTableStats("dept", ts);
    EXPECT_EQ(optimize("ndv=1 keeps every probe row"), "hash");
  }
  {
    // NDV 5: ~1 probe row survives; one B+tree descent beats the build scan.
    TableStats ts;
    ts.row_count = 5;
    ts.columns["dname"].ndv = 5;
    catalog.UpdateTableStats("dept", ts);
    EXPECT_EQ(optimize("ndv=5 leaves one probe row"), "index-nl");
  }
}

}  // namespace
}  // namespace xdb::rel
