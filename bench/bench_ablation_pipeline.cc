// Ablation: where does the rewrite win come from? Runs 'dbonerow' through
// every pipeline stage combination DESIGN.md calls out:
//
//   functional            XSLTVM over the materialized DOM (plan C, baseline)
//   straightforward       the [9] translation: XQuery functions + dispatch
//                         chains, evaluated over the materialized DOM
//   inline_noSQL          partial-evaluation inline XQuery, still evaluated
//                         over the materialized DOM (plan B)
//   sql_noindex           full SQL/XML rewrite, index selection disabled
//   sql_full              full SQL/XML rewrite with B-tree index selection
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xdb::bench {
namespace {

constexpr int kScale = 8000;

const xsltmark::BenchCase& DbOneRow() {
  const auto* c = xsltmark::FindCase("dbonerow");
  if (c == nullptr) abort();
  return *c;
}

void Run(benchmark::State& state, const ExecOptions& options) {
  XmlDb* db = GetDb("db", kScale);
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView("db_view", DbOneRow().stylesheet, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(ExecutionPathName(stats.path)) +
                 (stats.used_index ? "+index" : ""));
}

void BM_Pipeline_Functional(benchmark::State& state) {
  Run(state, NoRewriteArm());
}

void BM_Pipeline_Straightforward(benchmark::State& state) {
  // The [9] baseline: force the straightforward translation and evaluate the
  // XQuery functionally (no SQL stage: it cannot translate function-heavy
  // queries anyway).
  ExecOptions o;
  o.xslt.force_straightforward = true;
  o.enable_sql_rewrite = false;
  Run(state, o);
}

void BM_Pipeline_InlineNoSql(benchmark::State& state) {
  ExecOptions o;
  o.enable_sql_rewrite = false;
  Run(state, o);
}

void BM_Pipeline_SqlNoIndex(benchmark::State& state) {
  ExecOptions o;
  o.optimizer.enable_index_selection = false;
  Run(state, o);
}

void BM_Pipeline_SqlFull(benchmark::State& state) { Run(state, RewriteArm()); }

BENCHMARK(BM_Pipeline_Functional)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pipeline_Straightforward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pipeline_InlineNoSql)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pipeline_SqlNoIndex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pipeline_SqlFull)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xdb::bench

XDB_BENCH_MAIN();
