// Parser for the XQuery subset (see ast.h). Cursor-based recursive descent:
// direct element constructors switch the lexical mode, which a token-stream
// lexer cannot express cleanly.
#ifndef XDB_XQUERY_PARSER_H_
#define XDB_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace xdb::xquery {

/// Parses a full query (prolog + body).
Result<Query> ParseQuery(std::string_view text);

/// Parses a single expression (no prolog).
Result<QExprPtr> ParseExpression(std::string_view text);

}  // namespace xdb::xquery

#endif  // XDB_XQUERY_PARSER_H_
