// Attribute value templates (XSLT 1.0 §7.6.2): literal attribute values with
// embedded {XPath} expressions, "{{"/"}}" escaping to literal braces.
#ifndef XDB_XSLT_AVT_H_
#define XDB_XSLT_AVT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"

namespace xdb::xslt {

/// \brief A compiled attribute value template.
class Avt {
 public:
  struct Part {
    std::string literal;   // used when expr is null
    xpath::ExprPtr expr;   // used when non-null
  };

  static Result<Avt> Parse(std::string_view text);

  /// Evaluates all parts and concatenates.
  Result<std::string> Evaluate(const xpath::Evaluator& evaluator,
                               const xpath::EvalContext& ctx) const;

  /// True when the AVT is a single literal with no expressions.
  bool IsConstant() const;
  /// The constant value (valid only when IsConstant()).
  std::string ConstantValue() const;

  const std::vector<Part>& parts() const { return parts_; }

 private:
  std::vector<Part> parts_;
};

}  // namespace xdb::xslt

#endif  // XDB_XSLT_AVT_H_
