#include "rel/catalog.h"

#include <algorithm>
#include <utility>

namespace xdb::rel {

Catalog::NotificationBatch::NotificationBatch(Catalog* catalog)
    : catalog_(catalog) {
  std::lock_guard<std::mutex> lock(catalog_->notify_mu_);
  ++catalog_->batch_depth_;
}

Catalog::NotificationBatch::~NotificationBatch() { catalog_->CloseBatch(); }

void Catalog::CloseBatch() {
  std::vector<PendingEvent> to_fire;
  {
    std::lock_guard<std::mutex> lock(notify_mu_);
    if (--batch_depth_ > 0) return;  // inner batch: outermost close fires
    to_fire.swap(pending_);
  }
  // Fired with no lock held: listeners may re-enter the catalog.
  for (const PendingEvent& e : to_fire) Dispatch(e);
}

bool Catalog::EnqueueIfBatched(PendingEvent event) {
  std::lock_guard<std::mutex> lock(notify_mu_);
  if (batch_depth_ == 0) return false;
  // A bulk load announces the same table once per append batch; collapse
  // the consecutive duplicates so listeners see one event per table.
  if (!pending_.empty() && pending_.back() == event) return true;
  pending_.push_back(std::move(event));
  return true;
}

std::vector<DdlListener*> Catalog::ListenersSnapshot() const {
  std::lock_guard<std::mutex> lock(notify_mu_);
  return listeners_;
}

void Catalog::Dispatch(const PendingEvent& event) {
  using Kind = PendingEvent::Kind;
  for (DdlListener* l : ListenersSnapshot()) {
    switch (event.kind) {
      case Kind::kTableCreated:
        l->OnTableCreated(event.name);
        break;
      case Kind::kIndexCreated:
        l->OnIndexCreated(event.name, event.column);
        break;
      case Kind::kViewCreated:
        l->OnViewCreated(event.name);
        break;
      case Kind::kRowsInserted:
        l->OnRowsInserted(event.name);
        break;
      case Kind::kTableLoaded:
        l->OnTableLoaded(event.name);
        break;
    }
  }
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  Table* raw = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (tables_.count(name) > 0) {
      return Status::InvalidArgument("table '" + name + "' already exists");
    }
    auto table = std::make_unique<Table>(name, std::move(schema));
    raw = table.get();
    raw->set_ddl_listener(this);
    tables_[name] = std::move(table);
  }
  OnTableCreated(name);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (tables_.count(name) == 0) {
      return Status::NotFound("no table '" + name + "'");
    }
  }
  // Notify before erasing: listeners may still dereference the table while
  // deciding what to invalidate. Deliberately synchronous even inside a
  // NotificationBatch (see OnTableDropped).
  OnTableDropped(name);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  tables_.erase(it);
  stats_.erase(name);
  return Status::OK();
}

std::vector<Table*> Catalog::AllTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(table.get());
  return out;
}

std::vector<const XmlView*> Catalog::AllViews() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<const XmlView*> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

bool Catalog::HasView(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return views_.count(name) > 0;
}

void Catalog::UpdateTableStats(const std::string& table, TableStats stats) {
  auto snapshot = std::make_shared<const TableStats>(std::move(stats));
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_[table] = std::move(snapshot);
}

Status Catalog::AnalyzeTable(const std::string& table) {
  XDB_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  UpdateTableStats(table, ComputeTableStats(*t));
  return Status::OK();
}

std::shared_ptr<const TableStats> Catalog::GetTableStats(
    const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = stats_.find(table);
  return it == stats_.end() ? nullptr : it->second;
}

Result<XmlView*> Catalog::CreatePublishingView(const std::string& name,
                                               const std::string& base_table,
                                               std::unique_ptr<PublishSpec> spec,
                                               const std::string& xml_column) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (views_.count(name) > 0) {
      return Status::InvalidArgument("view '" + name + "' already exists");
    }
  }
  auto view = std::make_unique<XmlView>();
  view->name = name;
  view->xml_column = xml_column;
  view->base_table = base_table;
  // Compile outside the catalog lock: BuildPublishExpr re-enters the catalog
  // (GetTable on the base + every joined detail table).
  XDB_ASSIGN_OR_RETURN(view->publish_expr,
                       BuildPublishExpr(*spec, *this, base_table));
  XDB_ASSIGN_OR_RETURN(PublishInfo info, DerivePublishStructure(*spec));
  view->info = std::make_unique<PublishInfo>(std::move(info));
  view->publish = std::move(spec);
  XmlView* raw = view.get();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = views_.emplace(name, std::move(view));
    if (!inserted) {
      return Status::InvalidArgument("view '" + name + "' already exists");
    }
  }
  OnViewCreated(name);
  return raw;
}

Result<XmlView*> Catalog::CreateXsltView(const std::string& name,
                                         const std::string& upstream_view,
                                         std::string_view stylesheet_text,
                                         const std::string& xml_column) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (views_.count(name) > 0) {
      return Status::InvalidArgument("view '" + name + "' already exists");
    }
    if (views_.count(upstream_view) == 0) {
      return Status::NotFound("no view '" + upstream_view + "'");
    }
  }
  auto view = std::make_unique<XmlView>();
  view->name = name;
  view->xml_column = xml_column;
  view->upstream_view = upstream_view;
  view->stylesheet_text = std::string(stylesheet_text);
  XDB_ASSIGN_OR_RETURN(auto parsed, xslt::Stylesheet::Parse(stylesheet_text));
  view->stylesheet = std::shared_ptr<const xslt::Stylesheet>(std::move(parsed));
  XDB_ASSIGN_OR_RETURN(auto compiled,
                       xslt::CompiledStylesheet::Compile(*view->stylesheet));
  view->compiled_stylesheet =
      std::shared_ptr<const xslt::CompiledStylesheet>(std::move(compiled));
  XmlView* raw = view.get();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = views_.emplace(name, std::move(view));
    if (!inserted) {
      return Status::InvalidArgument("view '" + name + "' already exists");
    }
  }
  OnViewCreated(name);
  return raw;
}

Status Catalog::DropView(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("no view '" + name + "'");
  views_.erase(it);
  return Status::OK();
}

Result<const XmlView*> Catalog::GetView(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("no view '" + name + "'");
  return it->second.get();
}

void Catalog::AddDdlListener(DdlListener* listener) {
  std::lock_guard<std::mutex> lock(notify_mu_);
  listeners_.push_back(listener);
}

void Catalog::RemoveDdlListener(DdlListener* listener) {
  std::lock_guard<std::mutex> lock(notify_mu_);
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void Catalog::OnTableCreated(const std::string& table) {
  PendingEvent e{PendingEvent::Kind::kTableCreated, table, {}};
  if (!EnqueueIfBatched(e)) Dispatch(e);
}

void Catalog::OnIndexCreated(const std::string& table,
                             const std::string& column) {
  PendingEvent e{PendingEvent::Kind::kIndexCreated, table, column};
  if (!EnqueueIfBatched(e)) Dispatch(e);
}

void Catalog::OnViewCreated(const std::string& view) {
  PendingEvent e{PendingEvent::Kind::kViewCreated, view, {}};
  if (!EnqueueIfBatched(e)) Dispatch(e);
}

void Catalog::OnRowsInserted(const std::string& table) {
  PendingEvent e{PendingEvent::Kind::kRowsInserted, table, {}};
  if (!EnqueueIfBatched(e)) Dispatch(e);
}

void Catalog::OnTableLoaded(const std::string& table) {
  PendingEvent e{PendingEvent::Kind::kTableLoaded, table, {}};
  if (!EnqueueIfBatched(e)) Dispatch(e);
}

void Catalog::OnTableDropped(const std::string& table) {
  // Never deferred: listeners caching Table* must invalidate before the
  // object is destroyed, and a batched drop would fire after the erase.
  for (DdlListener* l : ListenersSnapshot()) l->OnTableDropped(table);
}

}  // namespace xdb::rel
