#include "core/xmldb.h"

#include <chrono>
#include <cmath>
#include <functional>

#include <algorithm>
#include <set>

#include "common/faultpoints.h"
#include "common/governor.h"
#include "core/row_executor.h"
#include "rel/snapshot.h"
#include "rewrite/compose.h"
#include "rewrite/static_type.h"
#include "schema/structure.h"
#include "schema/xsd_parser.h"
#include "shred/view_gen.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xslt/vm.h"

namespace xdb {

using rel::Datum;
using rel::ExecCtx;
using rel::Table;
using rel::XmlView;

const char* ExecutionPathName(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::kSqlRewritten:
      return "sql-rewritten";
    case ExecutionPath::kXQueryRewritten:
      return "xquery-rewritten";
    case ExecutionPath::kFunctional:
      return "functional";
  }
  return "?";  // out-of-range cast from untrusted int
}

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Copies the plan-template half of the stats (the runtime half — cache_hit,
// prepare_ns, execute_ns, threads_used — is owned by Prepare*/Execute).
void CopyPlanTemplate(const core::PreparedTransform& prepared, ExecStats* stats) {
  stats->path = prepared.path;
  stats->xslt_report = prepared.xslt_report;
  stats->used_index = prepared.used_index;
  stats->predicates_pushed = prepared.predicates_pushed;
  stats->xquery_text = prepared.xquery_text;
  stats->sql_text = prepared.sql_text;
  stats->logical_plan = prepared.logical_plan;
  stats->opt_trace = prepared.opt_trace;
  stats->fallback_reason = prepared.fallback_reason;
  stats->joins = prepared.joins;
  stats->joins_lowered = prepared.joins_lowered;
}

// Runs the logical-plan optimizer over a rewrite result and installs the
// lowered plan (plus the EXPLAIN/stats artifacts) as the prepared plan A.
Status InstallSqlPlan(rewrite::SqlRewriteResult sql, const ExecOptions& options,
                      const rel::Catalog& catalog,
                      core::PreparedTransform* prepared) {
  rel::Optimizer optimizer(options.optimizer, &catalog);
  XDB_ASSIGN_OR_RETURN(rel::OptimizedQuery opt,
                       optimizer.Run(std::move(sql.expr)));
  prepared->path = ExecutionPath::kSqlRewritten;
  prepared->used_index = opt.used_index;
  prepared->predicates_pushed = opt.predicates_pushed;
  prepared->logical_plan = std::move(opt.logical_plan);
  prepared->opt_trace = std::move(opt.trace);
  prepared->joins = std::move(opt.joins);
  prepared->joins_lowered = opt.joins_lowered;
  // A costed join priced the hash-vs-index-NL choice from table statistics;
  // an insert moves those, so such plans must not outlive it in the cache.
  prepared->depends_on_stats = !prepared->joins.empty();
  prepared->sql_text = opt.expr->ToSql();
  prepared->sql_expr = std::shared_ptr<const rel::RelExpr>(std::move(opt.expr));
  return Status::OK();
}

std::string SerializeDatum(const Datum& d) {
  if (d.type() != rel::DataType::kXml || d.AsXml() == nullptr) return d.ToString();
  xml::Node* n = d.AsXml();
  if (n->local_name() == rel::kFragmentName ||
      n->type() == xml::NodeType::kDocument) {
    return xml::SerializeAll(n->children());
  }
  return xml::Serialize(n);
}

// Gives `value` a document root to evaluate against, without copying when
// possible. A detached arena-local value (the per-row publish result) is
// spliced under the arena's own root node — same document, so a plain
// AppendChild — and detached again on destruction, leaving the arena root
// empty for the next consumer. Anything else (stored XML, attached nodes,
// occupied arena root) is deep-copied into a private wrapper document, the
// pre-splice behaviour.
class DocRootView {
 public:
  DocRootView(const Datum& in, xml::Document* arena,
              governor::BudgetScope* budget)
      : arena_(arena) {
    xml::Node* source = in.AsXml();
    if (source->type() == xml::NodeType::kDocument) {
      root_ = source;
      return;
    }
    bool fragment = source->local_name() == rel::kFragmentName;
    if (arena != nullptr && source->document() == arena &&
        source->parent() == nullptr && arena->root()->children().empty()) {
      if (fragment) {
        for (xml::Node* c : arena->DetachChildren(source)) {
          arena->root()->AppendChild(c);
        }
      } else {
        arena->root()->AppendChild(source);
      }
      root_ = arena->root();
      spliced_ = true;
      return;
    }
    wrapper_ = std::make_unique<xml::Document>();
    wrapper_->set_budget(budget);
    if (fragment) {
      for (xml::Node* c : source->children()) {
        wrapper_->root()->AppendChild(wrapper_->ImportNode(c));
      }
    } else {
      wrapper_->root()->AppendChild(wrapper_->ImportNode(source));
    }
    root_ = wrapper_->root();
  }

  ~DocRootView() {
    if (spliced_) arena_->DetachChildren(arena_->root());
  }

  xml::Node* root() const { return root_; }

 private:
  xml::Document* arena_;
  std::unique_ptr<xml::Document> wrapper_;
  xml::Node* root_ = nullptr;
  bool spliced_ = false;
};

// Applies a compiled stylesheet to an XMLType value (functional path).
Result<Datum> ApplyStylesheet(const xslt::CompiledStylesheet& compiled,
                              const Datum& in, xml::Document* arena,
                              governor::BudgetScope* budget,
                              const core::ParallelPolicy* parallel) {
  if (in.type() != rel::DataType::kXml || in.AsXml() == nullptr) {
    return Status::TypeError("XMLTransform input is not XMLType");
  }
  DocRootView source(in, arena, budget);
  xslt::Vm vm(compiled);
  XDB_ASSIGN_OR_RETURN(auto result_doc,
                       vm.Transform(source.root(), {}, budget, parallel));
  // The result document is exclusively ours: absorb it into the arena and
  // splice its children under the fragment instead of deep-copying.
  xml::Node* frag = arena->CreateElement(rel::kFragmentName);
  arena->AbsorbChildren(result_doc.get(), result_doc->root(), frag);
  return Datum(frag);
}

// Evaluates a parsed XQuery against an XMLType value (plan B).
Result<std::string> ApplyXQuery(const xquery::Query& query, const Datum& in,
                                xml::Document* arena,
                                governor::BudgetScope* budget,
                                const core::ParallelPolicy* parallel) {
  DocRootView ctx(in, arena, budget);
  xquery::QueryEvaluator qe;
  XDB_ASSIGN_OR_RETURN(
      auto doc, qe.EvaluateToDocument(query, ctx.root(), budget, parallel));
  return xml::Serialize(doc->root());
}

// Resolves ExecOptions into a configured budget (-1 fields fall back to the
// XDB_TIMEOUT_MS / XDB_MEM_BUDGET env defaults). Returns true when any limit
// or token ended up active.
bool ConfigureBudget(const ExecOptions& options, governor::ExecBudget* budget) {
  budget->set_timeout_ms(options.timeout_ms >= 0
                             ? options.timeout_ms
                             : governor::EnvDefaultTimeoutMs());
  budget->set_mem_limit_bytes(
      options.mem_budget_bytes >= 0
          ? static_cast<uint64_t>(options.mem_budget_bytes)
          : governor::EnvDefaultMemBudgetBytes());
  budget->set_output_limit_bytes(options.output_budget_bytes);
  budget->set_tick_limit(options.tick_budget);
  budget->set_cancel_token(options.cancel);
  budget->set_max_template_depth(options.max_template_depth);
  return budget->active();
}

// One single-statement WAL batch (DDL): begin, log, commit — aborting (which
// scrubs the partial batch from the log) on any failure so the next
// statement can open its own batch.
Status CommitWalBatch(wal::Manager* wal, const std::function<Status()>& log) {
  XDB_RETURN_NOT_OK(wal->BeginBatch().status());
  Status st = log();
  if (!st.ok()) {
    wal->Abort();
    return st;
  }
  return wal->Commit();
}

}  // namespace

XmlDb::XmlDb() { catalog_.AddDdlListener(&plan_cache_); }

XmlDb::~XmlDb() { catalog_.RemoveDdlListener(&plan_cache_); }

Status XmlDb::Insert(const std::string& table, rel::Row row) {
  XDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Status XmlDb::CreateIndex(const std::string& table, const std::string& column) {
  XDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  XDB_RETURN_NOT_OK(t->CreateIndex(column));
  if (wal_ == nullptr) return Status::OK();
  // Logged after the build succeeds: replay re-creates the index (skipping
  // it when the checkpoint's manifest already did). A failed commit leaves
  // the in-memory index ahead of the log until the next checkpoint — an
  // acceptable divergence, since indexes never change query results.
  return CommitWalBatch(wal_.get(),
                        [&] { return wal_->LogCreateIndex(table, column); });
}

Result<XmlView*> XmlDb::CreateXsltView(const std::string& name,
                                       const std::string& upstream_view,
                                       std::string_view stylesheet_text,
                                       const std::string& xml_column) {
  XDB_ASSIGN_OR_RETURN(XmlView * view,
                       catalog_.CreateXsltView(name, upstream_view,
                                               stylesheet_text, xml_column));
  if (wal_ != nullptr) {
    Status st = CommitWalBatch(wal_.get(), [&] {
      return wal_->LogCreateXsltView(name, upstream_view, xml_column,
                                     std::string(stylesheet_text));
    });
    if (!st.ok()) {
      // Roll the registration back: nothing can have compiled against the
      // view yet (the statement has not returned).
      (void)catalog_.DropView(name);
      return st;
    }
  }
  return view;
}

Status XmlDb::DropTable(const std::string& name) {
  XDB_RETURN_NOT_OK(catalog_.GetTable(name).status());
  if (wal_ != nullptr) {
    // Log ahead of the drop: a logged-but-unapplied drop is re-applied at
    // replay (idempotently), while an applied-but-unlogged drop would
    // resurrect the table after a crash.
    XDB_RETURN_NOT_OK(CommitWalBatch(
        wal_.get(), [&] { return wal_->LogDropTable(name); }));
  }
  return catalog_.DropTable(name);
}

Result<const XmlView*> XmlDb::ResolveChain(
    const XmlView* view, std::vector<const XmlView*>* xslt_views) const {
  const XmlView* cur = view;
  std::vector<const XmlView*> reversed;
  while (cur->is_xslt()) {
    reversed.push_back(cur);
    XDB_ASSIGN_OR_RETURN(cur, catalog_.GetView(cur->upstream_view));
  }
  if (!cur->is_publishing()) {
    return Status::Internal("view chain does not end in a publishing view");
  }
  // Application order: innermost (closest to the publishing view) first.
  xslt_views->assign(reversed.rbegin(), reversed.rend());
  return cur;
}

Result<Datum> XmlDb::ViewValueForRow(const XmlView* view, int64_t row_id,
                                     ExecCtx* ctx) {
  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(view, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  rel::TableRead base_read(base, ctx->snapshot);
  const rel::Row& row = base_read.row(row_id);
  ctx->rows.push_back(&row);
  auto value = pub->publish_expr->Eval(*ctx);
  ctx->rows.pop_back();
  XDB_RETURN_NOT_OK(value.status());
  Datum v = value.MoveValue();
  for (const XmlView* xv : xslt_views) {
    XDB_ASSIGN_OR_RETURN(v, ApplyStylesheet(*xv->compiled_stylesheet, v,
                                            ctx->arena, ctx->budget,
                                            ctx->parallel));
  }
  return v;
}

// ---------------------------------------------------------------------------
// Prepare: build (or fetch) the plan.
// ---------------------------------------------------------------------------

namespace {

// Every table a publishing spec touches: the base table plus the detail
// table of each kNested node, recursively. These are the plan's DDL
// invalidation targets.
void CollectSpecTables(const rel::PublishSpec& spec,
                       std::vector<std::string>* out) {
  if (spec.kind == rel::PublishSpec::Kind::kNested) {
    out->push_back(spec.child_table);
    if (spec.row_element != nullptr) CollectSpecTables(*spec.row_element, out);
  }
  for (const auto& child : spec.children) {
    CollectSpecTables(*child, out);
  }
}

std::vector<std::string> ReferencedTables(const XmlView& pub) {
  std::vector<std::string> tables{pub.base_table};
  if (pub.publish != nullptr) CollectSpecTables(*pub.publish, &tables);
  return tables;
}

}  // namespace

Result<std::shared_ptr<const core::PreparedTransform>> XmlDb::BuildTransformPlan(
    const std::string& view, std::string_view stylesheet_text,
    const ExecOptions& options) {
  auto prepared = std::make_shared<core::PreparedTransform>();
  prepared->kind = core::PreparedKind::kTransform;
  prepared->view_name = view;

  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  XDB_ASSIGN_OR_RETURN(auto parsed, xslt::Stylesheet::Parse(stylesheet_text));
  prepared->stylesheet =
      std::shared_ptr<const xslt::Stylesheet>(std::move(parsed));
  XDB_ASSIGN_OR_RETURN(auto compiled,
                       xslt::CompiledStylesheet::Compile(*prepared->stylesheet));
  prepared->compiled =
      std::shared_ptr<const xslt::CompiledStylesheet>(std::move(compiled));

  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  prepared->view = v;
  prepared->pub = pub;
  prepared->base = base;
  prepared->base_table = pub->base_table;
  prepared->referenced_tables = ReferencedTables(*pub);

  // ---- rewrite pipeline -----------------------------------------------------
  if (options.enable_rewrite && xslt_views.size() <= 1) {
    // Resolve the effective query: either the user stylesheet rewritten over
    // the publishing structure directly, or — for an XSLT view chain (§3.2) —
    // the upstream stylesheet rewritten first, its result structure derived
    // by static typing, the user stylesheet rewritten against *that*, and
    // both queries composed.
    Result<xquery::Query> query = Status::Internal("unset");
    if (xslt_views.empty()) {
      query = rewrite::RewriteXsltToXQuery(*prepared->compiled,
                                           &pub->info->structure, options.xslt,
                                           &prepared->xslt_report);
    } else {
      rewrite::RewriteReport upstream_report;
      auto q1 = rewrite::RewriteXsltToXQuery(
          *xslt_views[0]->compiled_stylesheet, &pub->info->structure,
          options.xslt, &upstream_report);
      if (!q1.ok()) {
        query = q1.status();
      } else {
        auto inferred =
            rewrite::InferResultStructure(*q1, pub->info->structure);
        if (!inferred.ok()) {
          query = inferred.status();
        } else {
          auto q2 = rewrite::RewriteXsltToXQuery(*prepared->compiled, &*inferred,
                                                 options.xslt,
                                                 &prepared->xslt_report);
          if (!q2.ok()) {
            query = q2.status();
          } else {
            query = rewrite::ComposeQueries(*q1, *q2);
          }
        }
      }
    }
    if (query.ok()) {
      prepared->xquery_text = query->ToString();
      if (options.enable_sql_rewrite) {
        auto sql = rewrite::RewriteXQueryToSql(*query, *pub, catalog_);
        Status install = sql.ok()
                             ? InstallSqlPlan(sql.MoveValue(), options,
                                              catalog_, prepared.get())
                             : sql.status();
        if (install.ok()) {
          return std::shared_ptr<const core::PreparedTransform>(prepared);
        }
        prepared->fallback_reason = install.message();
      }
      // Plan B: rewritten XQuery over the materialized *publishing* value
      // (for view chains, the composed query re-applies the upstream
      // transformation itself).
      prepared->path = ExecutionPath::kXQueryRewritten;
      prepared->query =
          std::make_shared<const xquery::Query>(query.MoveValue());
      return std::shared_ptr<const core::PreparedTransform>(prepared);
    }
    prepared->fallback_reason = query.status().message();
  } else if (options.enable_rewrite) {
    prepared->fallback_reason =
        "multi-level XSLT view chains are evaluated functionally";
  }

  // ---- plan C: functional (the paper's "no rewrite") --------------------------
  prepared->path = ExecutionPath::kFunctional;
  return std::shared_ptr<const core::PreparedTransform>(prepared);
}

Result<std::shared_ptr<const core::PreparedTransform>> XmlDb::BuildQueryPlan(
    const std::string& view, std::string_view xquery_text,
    const ExecOptions& options) {
  auto prepared = std::make_shared<core::PreparedTransform>();
  prepared->kind = core::PreparedKind::kQuery;
  prepared->view_name = view;

  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  XDB_ASSIGN_OR_RETURN(xquery::Query user_query,
                       xquery::ParseQuery(xquery_text));

  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  prepared->view = v;
  prepared->pub = pub;
  prepared->base = base;
  prepared->base_table = pub->base_table;
  prepared->referenced_tables = ReferencedTables(*pub);

  if (options.enable_rewrite && xslt_views.size() <= 1) {
    // Compose through a single XSLT view (Example 2), or use the user query
    // directly over a publishing view.
    Status compose_status = Status::OK();
    std::unique_ptr<xquery::Query> composed;
    if (xslt_views.empty()) {
      composed = std::make_unique<xquery::Query>();
      for (const auto& decl : user_query.variables) {
        composed->variables.push_back(
            xquery::VarDecl{decl.name, decl.expr->Clone()});
      }
      for (const auto& f : user_query.functions) {
        xquery::FunctionDecl nf;
        nf.name = f.name;
        nf.params = f.params;
        nf.body = f.body->Clone();
        composed->functions.push_back(std::move(nf));
      }
      composed->body = user_query.body->Clone();
    } else {
      auto view_query = rewrite::RewriteXsltToXQuery(
          *xslt_views[0]->compiled_stylesheet, &pub->info->structure,
          options.xslt, &prepared->xslt_report);
      if (view_query.ok()) {
        auto c = rewrite::ComposeQueries(*view_query, user_query);
        if (c.ok()) {
          composed = std::make_unique<xquery::Query>(c.MoveValue());
        } else {
          compose_status = c.status();
        }
      } else {
        compose_status = view_query.status();
      }
    }
    if (composed != nullptr) {
      prepared->xquery_text = composed->ToString();
      if (options.enable_sql_rewrite) {
        auto sql = rewrite::RewriteXQueryToSql(*composed, *pub, catalog_);
        Status install = sql.ok()
                             ? InstallSqlPlan(sql.MoveValue(), options,
                                              catalog_, prepared.get())
                             : sql.status();
        if (install.ok()) {
          return std::shared_ptr<const core::PreparedTransform>(prepared);
        }
        prepared->fallback_reason = install.message();
      }
      // Plan B: composed XQuery over the publishing view's value.
      prepared->path = ExecutionPath::kXQueryRewritten;
      prepared->query =
          std::shared_ptr<const xquery::Query>(std::move(composed));
      return std::shared_ptr<const core::PreparedTransform>(prepared);
    }
    prepared->fallback_reason = compose_status.message();
  } else if (options.enable_rewrite) {
    prepared->fallback_reason = "multi-level XSLT view chains are evaluated "
                                "functionally";
  }

  // Functional: user XQuery over the fully materialized view value.
  prepared->path = ExecutionPath::kFunctional;
  prepared->query =
      std::make_shared<const xquery::Query>(std::move(user_query));
  return std::shared_ptr<const core::PreparedTransform>(prepared);
}

Result<std::shared_ptr<const core::PreparedTransform>> XmlDb::PrepareTransform(
    const std::string& view, std::string_view stylesheet_text,
    const ExecOptions& options, ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats();
  auto start = std::chrono::steady_clock::now();

  core::PlanKey key{view, core::Fnv1aHash(stylesheet_text),
                    core::OptionsFingerprint(options),
                    core::PreparedKind::kTransform,
                    options.snapshot != nullptr ? options.snapshot->epoch()
                                                : 0};
  std::shared_ptr<const core::PreparedTransform> prepared;
  if (options.use_plan_cache) prepared = plan_cache_.Lookup(key);
  if (prepared != nullptr) {
    stats->cache_hit = true;
  } else {
    XDB_ASSIGN_OR_RETURN(prepared,
                         BuildTransformPlan(view, stylesheet_text, options));
    if (options.use_plan_cache) {
      XDB_FAULT_POINT("plan_cache.install");
      plan_cache_.Insert(key, prepared);
    }
  }
  CopyPlanTemplate(*prepared, stats);
  stats->prepare_ns = ElapsedNs(start);
  return std::shared_ptr<const core::PreparedTransform>(prepared);
}

Result<std::shared_ptr<const core::PreparedTransform>> XmlDb::PrepareQuery(
    const std::string& view, std::string_view xquery_text,
    const ExecOptions& options, ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats();
  auto start = std::chrono::steady_clock::now();

  core::PlanKey key{view, core::Fnv1aHash(xquery_text),
                    core::OptionsFingerprint(options),
                    core::PreparedKind::kQuery,
                    options.snapshot != nullptr ? options.snapshot->epoch()
                                                : 0};
  std::shared_ptr<const core::PreparedTransform> prepared;
  if (options.use_plan_cache) prepared = plan_cache_.Lookup(key);
  if (prepared != nullptr) {
    stats->cache_hit = true;
  } else {
    XDB_ASSIGN_OR_RETURN(prepared, BuildQueryPlan(view, xquery_text, options));
    if (options.use_plan_cache) {
      XDB_FAULT_POINT("plan_cache.install");
      plan_cache_.Insert(key, prepared);
    }
  }
  CopyPlanTemplate(*prepared, stats);
  stats->prepare_ns = ElapsedNs(start);
  return std::shared_ptr<const core::PreparedTransform>(prepared);
}

// ---------------------------------------------------------------------------
// Execute: the per-row loop (shared by plans A, B and C; parallelized).
// ---------------------------------------------------------------------------

Result<std::string> XmlDb::EvalPreparedRow(
    const core::PreparedTransform& prepared, int64_t row_id, ExecCtx* ctx) {
  switch (prepared.path) {
    case ExecutionPath::kSqlRewritten: {
      rel::TableRead base_read(prepared.base, ctx->snapshot);
      const rel::Row& row = base_read.row(row_id);
      ctx->rows.push_back(&row);
      auto d = prepared.sql_expr->Eval(*ctx);
      ctx->rows.pop_back();
      XDB_RETURN_NOT_OK(d.status());
      return SerializeDatum(*d);
    }
    case ExecutionPath::kXQueryRewritten: {
      // The (rewritten/composed) query navigates from the *publishing* value.
      rel::TableRead base_read(prepared.base, ctx->snapshot);
      const rel::Row& row = base_read.row(row_id);
      ctx->rows.push_back(&row);
      auto value = prepared.pub->publish_expr->Eval(*ctx);
      ctx->rows.pop_back();
      XDB_RETURN_NOT_OK(value.status());
      return ApplyXQuery(*prepared.query, *value, ctx->arena, ctx->budget,
                         ctx->parallel);
    }
    case ExecutionPath::kFunctional: {
      XDB_ASSIGN_OR_RETURN(Datum value,
                           ViewValueForRow(prepared.view, row_id, ctx));
      if (prepared.kind == core::PreparedKind::kTransform) {
        XDB_ASSIGN_OR_RETURN(
            Datum result, ApplyStylesheet(*prepared.compiled, value, ctx->arena,
                                          ctx->budget, ctx->parallel));
        return SerializeDatum(result);
      }
      return ApplyXQuery(*prepared.query, value, ctx->arena, ctx->budget,
                         ctx->parallel);
    }
  }
  return Status::Internal("unknown execution path");
}

Result<std::vector<std::string>> XmlDb::Execute(
    const core::PreparedTransform& prepared, const ExecOptions& options,
    ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  CopyPlanTemplate(prepared, stats);
  auto start = std::chrono::steady_clock::now();

  // The budget (when any limit or token is configured) is shared by every
  // worker thread; each per-row body opens its own amortizing BudgetScope
  // over it. Ungoverned executions pass a null scope, which reduces every
  // engine hook to a single pointer test.
  governor::ExecBudget budget;
  governor::ExecBudget* shared =
      ConfigureBudget(options, &budget) ? &budget : nullptr;

  // Intra-query parallel policy: individual operators (apply-templates /
  // for-each fan-out, partitioned scans, XMLAgg merge, FLWOR return loops)
  // fork onto the shared pool. Always safe to hand to the engines even when
  // the row loop itself is parallel: ShouldFork() refuses inside a parallel
  // region, so the two levels never compound.
  core::ParallelStatsCollector pstats;
  core::ParallelPolicy policy;
  policy.threads = options.threads > 0 ? options.threads
                                       : core::TaskScheduler::DefaultThreads();
  if (options.min_parallel_chunk > 0) {
    policy.min_fanout = 2 * options.min_parallel_chunk;
  }
  policy.cancel = options.cancel;
  policy.stats = &pstats;
  const core::ParallelPolicy* pp =
      options.parallel && core::TaskScheduler::ParallelEnabled() &&
              policy.enabled()
          ? &policy
          : nullptr;

  // Row count is read at execute time: a cached plan sees rows inserted
  // after it was prepared (structure-derived plans survive inserts). Under
  // a pinned snapshot the count comes from the frozen version instead, so
  // a racing load can neither add nor remove rows from this execution.
  const size_t n =
      rel::TableRead(prepared.base, options.snapshot).row_count();
  stats->snapshot_epoch =
      options.snapshot != nullptr ? options.snapshot->epoch() : 0;
  std::vector<std::string> out(n);
  // One collector for every group join across all rows and threads (the
  // counters are atomics); summed into ExecStats after the loop.
  rel::JoinRuntimeStats jstats;
  std::function<Status(size_t)> body = [&](size_t i) -> Status {
    // One arena + ExecCtx per row keeps rows independent (and the loop
    // embarrassingly parallel); results land in their row's slot so output
    // order is deterministic at any thread count. The scope is declared
    // before the arena: the arena releases its tracked bytes through the
    // scope on unwind, so the scope must outlive it.
    governor::BudgetScope scope(shared);
    xml::Document arena;
    arena.set_budget(&scope);
    ExecCtx ctx;
    ctx.arena = &arena;
    ctx.budget = &scope;
    ctx.parallel = pp;
    ctx.join_stats = &jstats;
    ctx.snapshot = options.snapshot;
    XDB_RETURN_NOT_OK(scope.CheckNow());
    XDB_ASSIGN_OR_RETURN(
        out[i], EvalPreparedRow(prepared, static_cast<int64_t>(i), &ctx));
    return scope.ChargeOutput(out[i].size());
  };
  int threads_used = 1;
  Status s = core::RowExecutor::Global().ParallelFor(
      n, body, options.threads, &threads_used, options.cancel);
  stats->threads_used = threads_used;
  stats->execute_ns = ElapsedNs(start);
  stats->join_build_rows = jstats.build_rows.load(std::memory_order_relaxed);
  stats->join_probe_rows = jstats.probe_rows.load(std::memory_order_relaxed);
  stats->join_match_rows = jstats.match_rows.load(std::memory_order_relaxed);
  stats->structural_joins =
      jstats.structural_joins.load(std::memory_order_relaxed);
  stats->structural_est_rows =
      jstats.structural_est_rows.load(std::memory_order_relaxed);
  stats->structural_match_rows =
      jstats.structural_match_rows.load(std::memory_order_relaxed);
  stats->op_parallel = pstats.Snapshot();
  for (const core::OpParallelStats& op : stats->op_parallel) {
    stats->parallel_tasks += op.parallel_tasks;
    stats->partitions += op.partitions;
    if (op.threads_used > stats->threads_used) {
      stats->threads_used = op.threads_used;
    }
  }
  if (shared != nullptr) {
    stats->timed_out = budget.timed_out();
    stats->cancelled =
        budget.was_cancelled() || s.code() == StatusCode::kCancelled;
    stats->mem_peak_bytes = budget.mem_peak_bytes();
    stats->ticks = budget.ticks();
  } else if (s.code() == StatusCode::kCancelled) {
    stats->cancelled = true;
  }
  XDB_RETURN_NOT_OK(s);
  return out;
}

// ---------------------------------------------------------------------------
// One-shot entry points: thin prepare-then-execute wrappers.
// ---------------------------------------------------------------------------

Result<std::vector<std::string>> XmlDb::TransformView(
    const std::string& view, std::string_view stylesheet_text,
    const ExecOptions& options, ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  XDB_ASSIGN_OR_RETURN(auto prepared,
                       PrepareTransform(view, stylesheet_text, options, stats));
  return Execute(*prepared, options, stats);
}

Result<std::vector<std::string>> XmlDb::QueryView(const std::string& view,
                                                  std::string_view xquery_text,
                                                  const ExecOptions& options,
                                                  ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  XDB_ASSIGN_OR_RETURN(auto prepared,
                       PrepareQuery(view, xquery_text, options, stats));
  return Execute(*prepared, options, stats);
}

std::string ExplainPrepared(const core::PreparedTransform& prepared) {
  std::string out = "path: ";
  out += ExecutionPathName(prepared.path);
  out += "\n";
  if (!prepared.fallback_reason.empty()) {
    out += "fallback: " + prepared.fallback_reason + "\n";
  }
  if (!prepared.logical_plan.empty()) {
    out += "logical plan:\n" + prepared.logical_plan + "\n";
  }
  for (const rel::RuleTrace& t : prepared.opt_trace) {
    out += "rule " + t.rule + ": " + std::to_string(t.nodes_before) + " -> " +
           std::to_string(t.nodes_after) + " nodes\n";
  }
  for (const rel::JoinChoice& j : prepared.joins) {
    out += "join strategy: " + j.strategy +
           " (est_build_rows=" + std::to_string(llround(j.est_build_rows)) +
           " est_probe_rows=" + std::to_string(llround(j.est_probe_rows)) +
           " est_match_rows=" + std::to_string(llround(j.est_match_rows)) +
           ")\n";
  }
  if (!prepared.sql_text.empty()) {
    out += "physical plan:\n" + prepared.sql_text + "\n";
  }
  // Which operators of this plan can fork onto the shared pool at execute
  // time (gated by ExecOptions::parallel / XDB_PARALLEL / thread count, so
  // eligibility — a plan property — is what EXPLAIN reports).
  out += "parallel: ";
  switch (prepared.path) {
    case ExecutionPath::kSqlRewritten:
      out += "eligible operators rel:scan, rel:xmlagg";
      if (!prepared.joins.empty()) out += ", rel:join-probe";
      break;
    case ExecutionPath::kXQueryRewritten:
      out += "eligible operators xquery:flwor";
      break;
    case ExecutionPath::kFunctional:
      out += prepared.kind == core::PreparedKind::kTransform
                 ? "eligible operators xslt:apply-templates, xslt:for-each"
                 : "eligible operators xquery:flwor";
      break;
  }
  out += "\n";
  return out;
}

Status XmlDb::RegisterShreddedSchema(const std::string& view_name,
                                     const schema::StructuralInfo& structure,
                                     const shred::ShredOptions& options) {
  if (shredded_.count(view_name) > 0) {
    return Status::InvalidArgument("shredded schema '" + view_name +
                                   "' is already registered");
  }
  XDB_ASSIGN_OR_RETURN(
      shred::ShredMapping mapping,
      shred::ShredMapping::Derive(structure, view_name, options));
  auto entry =
      std::make_unique<ShreddedSchema>(std::move(mapping), &catalog_);
  XDB_RETURN_NOT_OK(entry->loader.CreateTables());
  // From here on the tables exist but shredded_ is not yet updated: any
  // failure must drop them again, or a corrected retry under the same
  // view_name would die on CreateTable "already exists" with no way to
  // clean up.
  auto drop_tables = [&] {
    for (const auto& t : entry->mapping.tables()) {
      (void)catalog_.DropTable(t->name);
    }
  };
  Result<std::unique_ptr<rel::PublishSpec>> spec =
      shred::GeneratePublishSpec(entry->mapping);
  if (!spec.ok()) {
    drop_tables();
    return spec.status();
  }
  Status view_st = [&]() -> Status {
    XDB_FAULT_POINT("shred.register_view");
    return catalog_
        .CreatePublishingView(view_name, entry->mapping.root_table()->name,
                              std::move(*spec), "xml_content")
        .status();
  }();
  if (!view_st.ok()) {
    drop_tables();
    return view_st;
  }
  ShreddedSchema* raw = entry.get();
  shredded_[view_name] = std::move(entry);
  if (wal_ != nullptr) {
    // Logged only on the live path: recovery replays through this method
    // with wal_ still unattached, so nothing re-logs. On failure the whole
    // registration unwinds (tables, view, entry) exactly like the earlier
    // error paths — the WAL batch itself was already scrubbed by Abort.
    Status wal_st = CommitWalBatch(wal_.get(), [&] {
      return wal_->LogRegisterSchema(
          view_name, schema::SerializeStructuralInfo(raw->mapping.structure()),
          raw->mapping.batch_rows(), raw->mapping.nominated_indexes());
    });
    if (!wal_st.ok()) {
      std::vector<std::string> table_names;
      for (const auto& t : raw->mapping.tables()) {
        table_names.push_back(t->name);
      }
      shredded_.erase(view_name);
      (void)catalog_.DropView(view_name);
      for (const std::string& name : table_names) {
        (void)catalog_.DropTable(name);
      }
      return wal_st;
    }
    raw->loader.set_wal(wal_.get());
  }
  return Status::OK();
}

Status XmlDb::RegisterShreddedSchemaFromXsd(const std::string& view_name,
                                            std::string_view xsd_text,
                                            const shred::ShredOptions& options) {
  XDB_ASSIGN_OR_RETURN(schema::StructuralInfo structure,
                       schema::ParseXsd(xsd_text));
  return RegisterShreddedSchema(view_name, structure, options);
}

Result<XmlDb::ShreddedSchema*> XmlDb::GetShredded(
    const std::string& view_name) {
  auto it = shredded_.find(view_name);
  if (it == shredded_.end()) {
    return Status::NotFound("no shredded schema registered as '" + view_name +
                            "'");
  }
  return it->second.get();
}

Result<shred::LoadStats> XmlDb::LoadDocument(const std::string& view_name,
                                             std::string_view xml_text) {
  XDB_ASSIGN_OR_RETURN(ShreddedSchema * entry, GetShredded(view_name));
  if (wal_ == nullptr) return entry->loader.LoadText(xml_text);
  return DurableLoad(entry, [&] { return entry->loader.LoadText(xml_text); });
}

Result<shred::LoadStats> XmlDb::LoadParsedDocument(const std::string& view_name,
                                                   const xml::Node* node) {
  XDB_ASSIGN_OR_RETURN(ShreddedSchema * entry, GetShredded(view_name));
  if (wal_ == nullptr) return entry->loader.LoadParsed(node);
  return DurableLoad(entry, [&] { return entry->loader.LoadParsed(node); });
}

Result<shred::LoadStats> XmlDb::DurableLoad(
    ShreddedSchema* entry,
    const std::function<Result<shred::LoadStats>()>& load) {
  wal::WalMetrics before = wal_->metrics();
  std::vector<std::pair<Table*, size_t>> marks;
  marks.reserve(entry->mapping.tables().size());
  for (const auto& t : entry->mapping.tables()) {
    XDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(t->name));
    marks.emplace_back(table, table->row_count());
  }
  XDB_RETURN_NOT_OK(wal_->BeginBatch().status());
  Result<shred::LoadStats> loaded = load();
  if (!loaded.ok()) {
    // The loader rolled its tables back already; scrub the log to match.
    wal_->Abort();
    return loaded.status();
  }
  Status commit = wal_->Commit();
  if (!commit.ok()) {
    // Commit scrubbed the batch from the log — undo the in-memory load too
    // (rows, loader cursors, stats accumulators), so memory, the log, and
    // what a post-crash recovery would rebuild all agree.
    for (auto& [table, row_count] : marks) {
      (void)table->TruncateTo(row_count);
    }
    (void)entry->loader.SyncWithTables();
    return commit;
  }
  shred::LoadStats stats = loaded.MoveValue();
  wal::WalMetrics after = wal_->metrics();
  stats.wal_bytes = after.wal_bytes - before.wal_bytes;
  stats.wal_fsyncs = after.fsyncs - before.fsyncs;
  stats.commit_latency_us =
      static_cast<int64_t>(after.commit_latency_us - before.commit_latency_us);
  // The load is durable and visible; a checkpoint failure must not fail it.
  if (wal_->ShouldCheckpoint()) auto_checkpoint_ = Checkpoint();
  return stats;
}

const shred::ShredMapping* XmlDb::shredded_mapping(
    const std::string& view_name) const {
  auto it = shredded_.find(view_name);
  return it != shredded_.end() ? &it->second->mapping : nullptr;
}

// ---------------------------------------------------------------------------
// Durability: recovery bridge, OpenDurable, Checkpoint.

/// Adapts recovery's catalog operations onto XmlDb. Replayed registrations
/// run through the public RegisterShreddedSchema with wal_ still unattached,
/// so nothing re-logs.
class XmlDb::RecoveryBridge : public wal::RecoveryHooks {
 public:
  explicit RecoveryBridge(XmlDb* db) : db_(db) {}

  Status RegisterSchema(const wal::Record& record) override {
    XDB_ASSIGN_OR_RETURN(schema::StructuralInfo structure,
                         schema::ParseStructuralInfo(record.text));
    shred::ShredOptions options;
    options.value_indexes = record.value_indexes;
    options.batch_rows = record.batch_rows == 0
                             ? size_t{1024}
                             : static_cast<size_t>(record.batch_rows);
    return db_->RegisterShreddedSchema(record.view, structure, options);
  }

  Status CreateXsltView(const wal::Record& record) override {
    return db_->catalog_
        .CreateXsltView(record.view, record.upstream, record.text,
                        record.xml_column)
        .status();
  }

  Status CreateTable(const wal::Record& record) override {
    XDB_ASSIGN_OR_RETURN(Table * table,
                         db_->catalog_.CreateTable(record.table, record.schema));
    for (const std::string& column : record.value_indexes) {
      XDB_RETURN_NOT_OK(table->CreateIndex(column));
    }
    return Status::OK();
  }

  Status DropTable(const std::string& table) override {
    return db_->catalog_.DropTable(table);
  }

  void PublishStats(const std::string& table, rel::TableStats stats) override {
    db_->catalog_.UpdateTableStats(table, std::move(stats));
  }

  bool HasView(const std::string& view) const override {
    return db_->catalog_.HasView(view);
  }

  Table* FindTable(const std::string& table) const override {
    auto result = db_->catalog_.GetTable(table);
    return result.ok() ? *result : nullptr;
  }

 private:
  XmlDb* db_;
};

Status XmlDb::OpenDurable(const wal::DurabilityOptions& options) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("database is already durable");
  }
  XDB_RETURN_NOT_OK(wal::EnsureDataDir(options.data_dir));
  RecoveryBridge hooks(this);
  last_recovery_ = wal::RecoveryReport();
  XDB_RETURN_NOT_OK(
      wal::RunRecovery(options.data_dir, &hooks, &last_recovery_));
  XDB_ASSIGN_OR_RETURN(
      wal_, wal::Manager::Open(options, last_recovery_.next_lsn,
                               last_recovery_.next_batch_id,
                               last_recovery_.committed_batches));
  // Point every recovered loader at its restored tables and at the log.
  for (auto& [name, entry] : shredded_) {
    XDB_RETURN_NOT_OK(entry->loader.SyncWithTables());
    entry->loader.set_wal(wal_.get());
  }
  return Status::OK();
}

Status XmlDb::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("Checkpoint on a non-durable database");
  }
  XDB_ASSIGN_OR_RETURN(std::vector<wal::Record> body, BuildCheckpointBody());
  return wal_->WriteCheckpoint(std::move(body));
}

Result<std::vector<wal::Record>> XmlDb::BuildCheckpointBody() {
  std::vector<wal::Record> body;
  std::set<std::string> shredded_tables;
  std::set<std::string> serialized_views;

  // 1. Shredded schemas: one register record per schema re-creates the
  // mapped tables, their lineage/value indexes and the publishing view.
  for (const auto& [view_name, entry] : shredded_) {
    wal::Record r;
    r.type = wal::RecordType::kRegisterSchema;
    r.view = view_name;
    r.text = schema::SerializeStructuralInfo(entry->mapping.structure());
    r.batch_rows = entry->mapping.batch_rows();
    r.value_indexes = entry->mapping.nominated_indexes();
    body.push_back(std::move(r));
    serialized_views.insert(view_name);
    for (const auto& t : entry->mapping.tables()) {
      shredded_tables.insert(t->name);
    }
  }

  // 2. Plain tables (created outside any shredded mapping): schema plus the
  // full index manifest in one record.
  std::vector<Table*> tables = catalog_.AllTables();
  for (Table* table : tables) {
    if (shredded_tables.count(table->name()) > 0) continue;
    wal::Record r;
    r.type = wal::RecordType::kCreateTable;
    r.table = table->name();
    r.schema = table->schema();
    r.value_indexes = table->IndexedColumns();
    body.push_back(std::move(r));
  }

  // 3. Every table's rows, chunked, from a pinned version — one consistent
  // cut, exactly what a session publish freezes. For shredded tables also
  // re-list the indexes: replay skips the ones the register record already
  // built and adds any ad-hoc CreateIndex beyond them. Stats snapshots ride
  // along so the optimizer costs against recovered numbers immediately.
  for (Table* table : tables) {
    rel::TableVersion version = table->CaptureVersion();
    constexpr size_t kRowsPerRecord = 1024;
    for (size_t begin = 0; begin < version.row_count; begin += kRowsPerRecord) {
      size_t end = std::min(begin + kRowsPerRecord, version.row_count);
      wal::Record r;
      r.type = wal::RecordType::kRowBatch;
      r.table = table->name();
      r.first_rowid = begin;
      r.rows.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        r.rows.push_back(version.row(static_cast<int64_t>(i)));
      }
      body.push_back(std::move(r));
    }
    if (shredded_tables.count(table->name()) > 0) {
      for (const std::string& column : table->IndexedColumns()) {
        wal::Record r;
        r.type = wal::RecordType::kCreateIndex;
        r.table = table->name();
        r.column = column;
        body.push_back(std::move(r));
      }
    }
    auto stats = catalog_.GetTableStats(table->name());
    if (stats != nullptr) {
      wal::Record r;
      r.type = wal::RecordType::kStats;
      r.table = table->name();
      r.stats = *stats;
      body.push_back(std::move(r));
    }
  }

  // 4. XSLT views whose upstream chain is itself serialized. Hand-built
  // publishing views are not durable (documented limitation), so an XSLT
  // view stacked on one is skipped too. Iterate to a fixpoint so chains
  // serialize regardless of name order.
  std::vector<const XmlView*> views = catalog_.AllViews();
  bool progress = true;
  while (progress) {
    progress = false;
    for (const XmlView* view : views) {
      if (!view->is_xslt() || serialized_views.count(view->name) > 0) continue;
      if (serialized_views.count(view->upstream_view) == 0) continue;
      wal::Record r;
      r.type = wal::RecordType::kCreateXsltView;
      r.view = view->name;
      r.upstream = view->upstream_view;
      r.xml_column = view->xml_column;
      r.text = view->stylesheet_text;
      body.push_back(std::move(r));
      serialized_views.insert(view->name);
      progress = true;
    }
  }
  return body;
}

Result<std::vector<std::string>> XmlDb::MaterializeView(const std::string& view) {
  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  const size_t n = base->row_count();
  std::vector<std::string> out(n);
  core::ParallelPolicy policy;
  policy.threads = core::TaskScheduler::DefaultThreads();
  const core::ParallelPolicy* pp =
      core::TaskScheduler::ParallelEnabled() && policy.enabled() ? &policy
                                                                 : nullptr;
  std::function<Status(size_t)> body = [&](size_t i) -> Status {
    xml::Document arena;
    ExecCtx ctx;
    ctx.arena = &arena;
    ctx.parallel = pp;
    XDB_ASSIGN_OR_RETURN(Datum d,
                         ViewValueForRow(v, static_cast<int64_t>(i), &ctx));
    out[i] = SerializeDatum(d);
    return Status::OK();
  };
  XDB_RETURN_NOT_OK(core::RowExecutor::Global().ParallelFor(n, body));
  return out;
}

}  // namespace xdb
