#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace xdb::server {

AdmissionController::AdmissionController(size_t max_concurrent,
                                         size_t max_queue)
    : max_concurrent_(std::max<size_t>(1, max_concurrent)),
      max_queue_(max_queue) {}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Acquire(
    const governor::CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("cancelled before admission");
  }
  // Fast path: a free slot and nobody queued ahead.
  if (running_ < max_concurrent_ && queue_.empty()) {
    ++running_;
    return Ticket(this);
  }
  if (queue_.size() >= max_queue_) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) + "/" +
        std::to_string(max_queue_) + " waiting, " +
        std::to_string(running_) + " running)");
  }
  Waiter self;
  queue_.push_back(&self);
  auto it = std::prev(queue_.end());
  // The cancel token has no wake-up hook, so poll it on a short period;
  // admissions themselves are signalled and wake immediately.
  while (!self.admitted) {
    cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (self.admitted) break;
    if (cancel != nullptr && cancel->cancelled()) {
      queue_.erase(it);
      return Status::Cancelled("cancelled while queued for admission");
    }
  }
  // Release() transferred the slot (running_ stayed up on its behalf).
  return Ticket(this);
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    // Hand the slot straight to the head waiter: running_ is unchanged.
    Waiter* next = queue_.front();
    queue_.pop_front();
    next->admitted = true;
    cv_.notify_all();
    return;
  }
  --running_;
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace xdb::server
