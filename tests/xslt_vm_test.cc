#include <gtest/gtest.h>

#include "schema/sample_doc.h"
#include "xpath/parser.h"
#include "schema/structure.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xslt/interpreter.h"
#include "xslt/vm.h"

namespace xdb::xslt {
namespace {

std::string Wrap(std::string_view body) {
  return std::string(
             "<xsl:stylesheet version=\"1.0\" "
             "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">") +
         std::string(body) + "</xsl:stylesheet>";
}

std::string VmTransform(std::string_view stylesheet, std::string_view input) {
  auto ss = Stylesheet::Parse(stylesheet);
  EXPECT_TRUE(ss.ok()) << ss.status().ToString();
  auto compiled = CompiledStylesheet::Compile(**ss);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto doc = xml::ParseDocument(input);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  Vm vm(**compiled);
  auto out = vm.Transform((*doc)->root());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "<vm error>";
  return xml::Serialize((*out)->root());
}

// Differential harness: VM output must equal interpreter output.
void ExpectSameAsInterpreter(std::string_view stylesheet, std::string_view input) {
  auto ss = Stylesheet::Parse(stylesheet);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  auto doc = xml::ParseDocument(input);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  Interpreter interp(**ss);
  auto iout = interp.Transform((*doc)->root());
  ASSERT_TRUE(iout.ok()) << iout.status().ToString();

  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Vm vm(**compiled);
  auto vout = vm.Transform((*doc)->root());
  ASSERT_TRUE(vout.ok()) << vout.status().ToString();

  EXPECT_EQ(xml::Serialize((*vout)->root()), xml::Serialize((*iout)->root()));
}

TEST(VmTest, CompileCountsSites) {
  auto ss = Stylesheet::Parse(Wrap(
      "<xsl:template match=\"/\"><xsl:apply-templates/>"
      "<xsl:call-template name=\"n\"/></xsl:template>"
      "<xsl:template name=\"n\"><xsl:apply-templates select=\"x\"/>"
      "</xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ((*compiled)->site_count(), 3);
  EXPECT_EQ((*compiled)->templates().size(), 2u);
}

TEST(VmTest, BasicTransform) {
  EXPECT_EQ(VmTransform(Wrap("<xsl:template match=\"/\"><out><xsl:value-of "
                             "select=\"//b\"/></out></xsl:template>"),
                        "<a><b>42</b></a>"),
            "<out>42</out>");
}

struct DiffCase {
  const char* name;
  const char* stylesheet_body;
  const char* input;
};

class VmDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(VmDifferentialTest, MatchesInterpreter) {
  const DiffCase& c = GetParam();
  ExpectSameAsInterpreter(Wrap(c.stylesheet_body), c.input);
}

const DiffCase kDiffCases[] = {
    {"builtins", "", "<a><b>1</b><c>2</c></a>"},
    {"value_of",
     "<xsl:template match=\"/\"><r><xsl:value-of select=\"count(//x)\"/></r>"
     "</xsl:template>",
     "<a><x/><x/><y><x/></y></a>"},
    {"predicates",
     "<xsl:template match=\"employees\">"
     "<xsl:apply-templates select=\"emp[sal &gt; 2000]\"/></xsl:template>"
     "<xsl:template match=\"emp\"><e><xsl:value-of select=\"ename\"/></e>"
     "</xsl:template><xsl:template match=\"text()\"/>",
     "<employees><emp><ename>A</ename><sal>2500</sal></emp>"
     "<emp><ename>B</ename><sal>1000</sal></emp></employees>"},
    {"for_each_sort",
     "<xsl:template match=\"/\"><xsl:for-each select=\"//n\">"
     "<xsl:sort select=\".\" data-type=\"number\" order=\"descending\"/>"
     "<v><xsl:value-of select=\".\"/></v></xsl:for-each></xsl:template>",
     "<r><n>3</n><n>10</n><n>7</n></r>"},
    {"choose",
     "<xsl:template match=\"n\"><xsl:choose>"
     "<xsl:when test=\". &gt; 5\">big</xsl:when>"
     "<xsl:when test=\". &gt; 2\">mid</xsl:when>"
     "<xsl:otherwise>small</xsl:otherwise></xsl:choose>,</xsl:template>"
     "<xsl:template match=\"text()\"/>",
     "<r><n>1</n><n>4</n><n>9</n></r>"},
    {"variables_params",
     "<xsl:template match=\"/\"><xsl:variable name=\"x\" select=\"7\"/>"
     "<xsl:call-template name=\"t\"><xsl:with-param name=\"y\" select=\"$x\"/>"
     "</xsl:call-template></xsl:template>"
     "<xsl:template name=\"t\"><xsl:param name=\"y\" select=\"0\"/>"
     "<o><xsl:value-of select=\"$y * 2\"/></o></xsl:template>",
     "<r/>"},
    {"copy_structures",
     "<xsl:template match=\"*\"><xsl:copy><xsl:apply-templates/></xsl:copy>"
     "</xsl:template>"
     "<xsl:template match=\"text()\"><xsl:value-of select=\".\"/></xsl:template>",
     "<a><b x=\"1\">t<c/></b></a>"},
    {"copy_of",
     "<xsl:template match=\"/\"><xsl:copy-of select=\"//keep\"/></xsl:template>",
     "<r><keep a=\"1\"><s/></keep><drop/><keep/></r>"},
    {"modes",
     "<xsl:template match=\"/\"><xsl:apply-templates select=\"//x\"/>"
     "<xsl:apply-templates select=\"//x\" mode=\"m\"/></xsl:template>"
     "<xsl:template match=\"x\">a</xsl:template>"
     "<xsl:template match=\"x\" mode=\"m\">b</xsl:template>",
     "<r><x/><x/></r>"},
    {"avts_and_element",
     "<xsl:template match=\"item\"><xsl:element name=\"e{@n}\">"
     "<xsl:attribute name=\"v\"><xsl:value-of select=\".\"/></xsl:attribute>"
     "</xsl:element></xsl:template><xsl:template match=\"text()\"/>",
     "<r><item n=\"1\">a</item><item n=\"2\">b</item></r>"},
    {"recursive_named",
     "<xsl:template match=\"/\"><xsl:call-template name=\"c\">"
     "<xsl:with-param name=\"n\" select=\"4\"/></xsl:call-template>"
     "</xsl:template>"
     "<xsl:template name=\"c\"><xsl:param name=\"n\"/>"
     "<xsl:if test=\"$n &gt; 0\">*<xsl:call-template name=\"c\">"
     "<xsl:with-param name=\"n\" select=\"$n - 1\"/></xsl:call-template>"
     "</xsl:if></xsl:template>",
     "<r/>"},
    {"priorities",
     "<xsl:template match=\"*\">[any]</xsl:template>"
     "<xsl:template match=\"b\">[b]</xsl:template>"
     "<xsl:template match=\"r/b\" priority=\"-3\">[rb]</xsl:template>",
     "<r><a/><b/></r>"},
    {"number_instruction",
     "<xsl:template match=\"i\"><xsl:number/>.</xsl:template>"
     "<xsl:template match=\"text()\"/>",
     "<r><i/><i/><j/><i/></r>"},
    {"comment_pi_output",
     "<xsl:template match=\"/\"><xsl:comment>c</xsl:comment>"
     "<xsl:processing-instruction name=\"p\">d</xsl:processing-instruction>"
     "</xsl:template>",
     "<r/>"},
    {"rtf_variable",
     "<xsl:template match=\"/\">"
     "<xsl:variable name=\"f\"><a>1</a><b>2</b></xsl:variable>"
     "<s><xsl:value-of select=\"$f\"/></s><c><xsl:copy-of select=\"$f\"/></c>"
     "</xsl:template>",
     "<r/>"},
    {"union_pattern",
     "<xsl:template match=\"a | b\">hit;</xsl:template>"
     "<xsl:template match=\"text()\"/>",
     "<r><a/><c/><b/></r>"},
};

INSTANTIATE_TEST_SUITE_P(AllCases, VmDifferentialTest,
                         ::testing::ValuesIn(kDiffCases),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Trace mode
// ---------------------------------------------------------------------------

/// Collects raw trace events for inspection.
class RecordingListener : public TraceListener {
 public:
  struct Dispatch {
    int site;
    std::string node_name;
    std::vector<int> candidates;
    bool builtin_fallback;
  };
  std::vector<Dispatch> dispatches;
  std::vector<int> activations;
  int recursion_events = 0;

  void OnDispatch(int site_id, xml::Node* node, const std::string&,
                  const std::vector<Stylesheet::StructuralMatch>& candidates,
                  bool builtin_fallback) override {
    Dispatch d;
    d.site = site_id;
    d.node_name = node->is_element() ? node->local_name() : "#" ;
    for (const auto& c : candidates) d.candidates.push_back(c.index);
    d.builtin_fallback = builtin_fallback;
    dispatches.push_back(std::move(d));
  }
  void OnActivationBegin(int idx, xml::Node*) override {
    activations.push_back(idx);
  }
  void OnActivationEnd(int) override {}
  void OnRecursion(int, xml::Node*) override { ++recursion_events; }
};

schema::StructuralInfo DeptStructure() {
  schema::StructureBuilder b;
  auto* dept = b.Element("dept");
  b.AddText(b.AddChild(dept, "dname"));
  b.AddText(b.AddChild(dept, "loc"));
  auto* employees = b.AddChild(dept, "employees");
  auto* emp = b.AddChild(employees, "emp", 0, -1);
  b.AddText(b.AddChild(emp, "empno"));
  b.AddText(b.AddChild(emp, "ename"));
  b.AddText(b.AddChild(emp, "sal"));
  return b.Build(dept);
}

const char* kPaperBody =
    "<xsl:template match=\"dept\"><H1>X</H1><xsl:apply-templates/>"
    "</xsl:template>"
    "<xsl:template match=\"dname\"><H2><xsl:value-of select=\".\"/></H2>"
    "</xsl:template>"
    "<xsl:template match=\"loc\"><H2><xsl:value-of select=\".\"/></H2>"
    "</xsl:template>"
    "<xsl:template match=\"employees\">"
    "<xsl:apply-templates select=\"emp[sal &gt; 2000]\"/></xsl:template>"
    "<xsl:template match=\"emp\"><tr/></xsl:template>"
    "<xsl:template match=\"text()\"><xsl:value-of select=\".\"/></xsl:template>";

TEST(VmTraceTest, PaperExampleTraceActivations) {
  auto ss = Stylesheet::Parse(Wrap(kPaperBody));
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());

  schema::StructuralInfo info = DeptStructure();
  auto sample = schema::GenerateSampleDocument(info);

  Vm vm(**compiled);
  RecordingListener listener;
  ASSERT_TRUE(vm.TraceRun(sample->root(), &listener).ok());

  // Sites: 0 = <apply-templates/> in dept, 1 = select="emp[sal>2000]".
  // The dept children dispatch must cover dname, loc, employees.
  std::set<std::string> dept_children;
  for (const auto& d : listener.dispatches) {
    if (d.site == 0) dept_children.insert(d.node_name);
  }
  EXPECT_TRUE(dept_children.count("dname"));
  EXPECT_TRUE(dept_children.count("loc"));
  EXPECT_TRUE(dept_children.count("employees"));

  // The predicate select still reaches emp (predicate assumed true).
  bool emp_dispatched = false;
  for (const auto& d : listener.dispatches) {
    if (d.site == 1 && d.node_name == "emp") emp_dispatched = true;
  }
  EXPECT_TRUE(emp_dispatched);
  EXPECT_EQ(listener.recursion_events, 0);
}

TEST(VmTraceTest, ConditionalCandidatesKeptUntilUnconditional) {
  // Table 18: predicate template + unconditional template for same pattern.
  // Both default to priority 0.5, where XSLT's recovery rule would let the
  // later (unconditional) template shadow the predicated one; the paper's
  // scenario requires the predicated template to win when its predicate
  // holds, so it carries an explicit higher priority.
  auto ss = Stylesheet::Parse(Wrap(
      "<xsl:template match=\"emp/empno[. = 3456]\" priority=\"1\">A"
      "</xsl:template>"
      "<xsl:template match=\"emp/empno\">B</xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());

  schema::StructureBuilder b;
  auto* emp = b.Element("emp");
  b.AddText(b.AddChild(emp, "empno"));
  auto sample = schema::GenerateSampleDocument(b.Build(emp));

  Vm vm(**compiled);
  RecordingListener listener;
  ASSERT_TRUE(vm.TraceRun(sample->root(), &listener).ok());

  bool found = false;
  for (const auto& d : listener.dispatches) {
    if (d.node_name == "empno") {
      found = true;
      // Both candidates, best (predicated, index 0) first, then index 1;
      // no builtin fallback because the second is unconditional.
      ASSERT_EQ(d.candidates.size(), 2u);
      EXPECT_EQ(d.candidates[0], 0);
      EXPECT_EQ(d.candidates[1], 1);
      EXPECT_FALSE(d.builtin_fallback);
    }
  }
  EXPECT_TRUE(found);
}

TEST(VmTraceTest, IfAndChooseBranchesAllExplored) {
  auto ss = Stylesheet::Parse(Wrap(
      "<xsl:template match=\"r\">"
      "<xsl:if test=\"x = 'never'\"><xsl:call-template name=\"a\"/></xsl:if>"
      "<xsl:choose><xsl:when test=\"false()\">"
      "<xsl:call-template name=\"b\"/></xsl:when>"
      "<xsl:otherwise><xsl:call-template name=\"c\"/></xsl:otherwise>"
      "</xsl:choose></xsl:template>"
      "<xsl:template name=\"a\">a</xsl:template>"
      "<xsl:template name=\"b\">b</xsl:template>"
      "<xsl:template name=\"c\">c</xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());

  schema::StructureBuilder b;
  auto* r = b.Element("r");
  b.AddText(b.AddChild(r, "x"));
  auto sample = schema::GenerateSampleDocument(b.Build(r));

  Vm vm(**compiled);
  RecordingListener listener;
  ASSERT_TRUE(vm.TraceRun(sample->root(), &listener).ok());
  // All three named templates activated (1=a, 2=b, 3=c).
  std::set<int> activated(listener.activations.begin(), listener.activations.end());
  EXPECT_TRUE(activated.count(1));
  EXPECT_TRUE(activated.count(2));
  EXPECT_TRUE(activated.count(3));
}

TEST(VmTraceTest, RecursiveTemplateDetected) {
  auto ss = Stylesheet::Parse(Wrap(
      "<xsl:template match=\"section\"><s><xsl:apply-templates "
      "select=\"section\"/></s></xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());

  schema::StructureBuilder b;
  auto* section = b.Element("section");
  b.AddRecursiveChild(section, section);
  auto sample = schema::GenerateSampleDocument(b.Build(section));

  Vm vm(**compiled);
  RecordingListener listener;
  ASSERT_TRUE(vm.TraceRun(sample->root(), &listener).ok());
  EXPECT_GE(listener.recursion_events, 1);
}

TEST(VmTraceTest, NamedTemplateRecursionGuard) {
  auto ss = Stylesheet::Parse(Wrap(
      "<xsl:template match=\"/\"><xsl:call-template name=\"loop\"/>"
      "</xsl:template>"
      "<xsl:template name=\"loop\"><xsl:call-template name=\"loop\"/>"
      "</xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());

  auto doc = xml::ParseDocument("<r/>");
  Vm vm(**compiled);
  RecordingListener listener;
  // Trace terminates (no infinite loop) and records the recursion.
  ASSERT_TRUE(vm.TraceRun((*doc)->root(), &listener).ok());
  EXPECT_GE(listener.recursion_events, 1);
}

TEST(StripPredicatesTest, RemovesAllPredicates) {
  auto check = [](const char* in, const char* expected) {
    auto e = xpath::ParseXPath(in);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(StripPredicates(**e)->ToString(), expected) << in;
  };
  check("emp[sal > 2000]", "emp");
  check("a/b[1]/c[@x]", "a/b/c");
  check("//x[y]", "//x");
  check("$v[2]/w", "$v/w");
  check("a | b[1]", "a | b");
  check("count(emp[sal > 10])", "count(emp[sal > 10])");  // inside fn args kept
}

}  // namespace
}  // namespace xdb::xslt
