# Empty dependencies file for example_dept_report.
# This may be replaced when dependencies are built.
