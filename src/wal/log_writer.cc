#include "wal/log_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/faultpoints.h"
#include "wal/format.h"

namespace xdb::wal {

namespace {

Status IoError(const std::string& context) {
  return Status::Internal(context + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("wal write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path,
                                                   uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open wal '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = IoError("stat wal '" + path + "'");
    ::close(fd);
    return err;
  }
  // Drop any torn tail recovery identified (or, for a fresh writer over an
  // unrecovered file, nothing — callers pass the scanned good prefix).
  if (static_cast<uint64_t>(st.st_size) > offset &&
      ::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    Status err = IoError("truncate wal tail '" + path + "'");
    ::close(fd);
    return err;
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    Status err = IoError("seek wal '" + path + "'");
    ::close(fd);
    return err;
  }
  return std::unique_ptr<LogWriter>(new LogWriter(fd, path, offset));
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogWriter::AppendFrame(std::string_view payload) {
  std::string frame = EncodeFrame(payload);
  Status st = [&]() -> Status {
    if (fault::Enabled()) {
      // Split the write so an injected fault (fail or crash) lands between
      // the two halves: the on-disk state is then a genuinely torn frame,
      // exactly what a power failure mid-write leaves behind.
      size_t half = frame.size() / 2;
      XDB_RETURN_NOT_OK(WriteAll(fd_, frame.data(), half));
      XDB_FAULT_POINT("wal.append");
      return WriteAll(fd_, frame.data() + half, frame.size() - half);
    }
    return WriteAll(fd_, frame.data(), frame.size());
  }();
  if (!st.ok()) {
    // Self-heal: drop the partial frame so the next append starts on a
    // clean boundary. Best effort — if this fails too, the reader's CRC
    // scan still stops at the torn frame.
    (void)::ftruncate(fd_, static_cast<off_t>(offset_));
    (void)::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET);
    return st;
  }
  offset_ += frame.size();
  return Status::OK();
}

Status LogWriter::Sync() {
  XDB_FAULT_POINT("wal.fsync");
  if (::fsync(fd_) != 0) return IoError("wal fsync");
  return Status::OK();
}

Status LogWriter::Reset() {
  XDB_FAULT_POINT("wal.truncate");
  if (::ftruncate(fd_, 0) != 0) return IoError("wal reset");
  if (::lseek(fd_, 0, SEEK_SET) < 0) return IoError("wal reset seek");
  offset_ = 0;
  if (::fsync(fd_) != 0) return IoError("wal reset fsync");
  return Status::OK();
}

Status LogWriter::TruncateTo(uint64_t offset) {
  if (offset > offset_) {
    return Status::Internal("wal truncate past the write offset");
  }
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    return IoError("wal truncate");
  }
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    return IoError("wal truncate seek");
  }
  offset_ = offset;
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return IoError("open dir '" + dir + "'");
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = IoError("fsync dir '" + dir + "'");
  ::close(fd);
  return st;
}

}  // namespace xdb::wal
