// Tests for the schema-driven shredding subsystem (src/shred): mapping
// derivation rules, DOM shredding, publishing-view generation, bulk loading
// through XmlDb, and the shred -> publish round-trip contract.
#include <gtest/gtest.h>

#include "core/xmldb.h"
#include "schema/sample_doc.h"
#include "shred/bulk_loader.h"
#include "shred/mapping.h"
#include "shred/shredder.h"
#include "shred/view_gen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xdb {
namespace {

using schema::StructureBuilder;
using shred::ShredMapping;
using shred::ShredOptions;

// dept(deptno=...) { dname, loc, employees { emp* { empno, ename, sal } } }
schema::StructuralInfo DeptStructure() {
  StructureBuilder b;
  auto* dept = b.Element("dept");
  dept->attributes.push_back("deptno");
  b.AddText(b.AddChild(dept, "dname"));
  b.AddText(b.AddChild(dept, "loc", 0, 1));  // optional leaf
  auto* employees = b.AddChild(dept, "employees");
  auto* emp = b.AddChild(employees, "emp", 0, -1);
  b.AddText(b.AddChild(emp, "empno"));
  b.AddText(b.AddChild(emp, "ename"));
  b.AddText(b.AddChild(emp, "sal"));
  return b.Build(dept);
}

constexpr const char* kDeptDoc =
    "<dept deptno=\"10\"><dname>ACCOUNTING</dname><loc>NEW YORK</loc>"
    "<employees>"
    "<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>"
    "<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>"
    "</employees></dept>";

TEST(ShredMappingTest, DeptDerivesThreeTablesWithLineage) {
  auto m = ShredMapping::Derive(DeptStructure(), "d");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->tables().size(), 3u);
  // Root first, then depth-first: dept, employees, emp.
  EXPECT_EQ(m->tables()[0]->name, "d_dept");
  EXPECT_EQ(m->tables()[1]->name, "d_employees");
  EXPECT_EQ(m->tables()[2]->name, "d_emp");
  EXPECT_TRUE(m->tables()[0]->is_root);

  // dept: lineage + interval encoding + attribute + two inlined singleton
  // leaves.
  const shred::ShredTable& dept = *m->tables()[0];
  ASSERT_EQ(dept.columns.size(), 9u);
  EXPECT_EQ(dept.columns[0].name, "rowid");
  EXPECT_EQ(dept.columns[1].name, "parent_rowid");
  EXPECT_TRUE(dept.columns[1].nullable);  // root has no parent
  EXPECT_EQ(dept.columns[2].name, "ord");
  EXPECT_EQ(dept.columns[3].name, "start");
  EXPECT_EQ(dept.columns[4].name, "end");
  EXPECT_EQ(dept.columns[5].name, "level");
  EXPECT_EQ(dept.columns[6].name, "a_deptno");
  EXPECT_EQ(dept.columns[7].name, "v_dname");
  EXPECT_FALSE(dept.columns[7].nullable);  // required singleton
  EXPECT_EQ(dept.columns[8].name, "v_loc");
  EXPECT_TRUE(dept.columns[8].nullable);  // optional singleton

  // emp repeats -> own table; its leaves inline there.
  const shred::ShredTable& emp = *m->tables()[2];
  ASSERT_EQ(emp.columns.size(), 9u);
  EXPECT_EQ(emp.columns[6].name, "v_empno");
  EXPECT_EQ(emp.columns[8].name, "v_sal");
}

TEST(ShredMappingTest, AcceptsRecursiveContentModels) {
  // doc { section* { title, section* (recursive) } } — the recursive edge
  // stores occurrences back into the target's own table (keyed by lineage +
  // interval), so derivation yields one table for `doc` and one for
  // `section`, never expanding the recursion.
  StructureBuilder b;
  auto* doc = b.Element("doc");
  auto* sec = b.AddChild(doc, "section", 0, -1);
  b.AddText(b.AddChild(sec, "title"));
  b.AddRecursiveChild(sec, sec);
  auto m = ShredMapping::Derive(b.Build(doc), "t");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->tables().size(), 2u);
  EXPECT_EQ(m->tables()[1]->name, "t_section");
  EXPECT_GE(m->tables()[1]->ColumnIndex("start"), 0);
  EXPECT_GE(m->tables()[1]->ColumnIndex("end"), 0);
  EXPECT_GE(m->tables()[1]->ColumnIndex("level"), 0);
}

TEST(ShredMappingTest, RejectsStructuresOutsideTheSubset) {
  {  // recursion to the document root element (phantom documents otherwise)
    StructureBuilder b;
    auto* sec = b.Element("section");
    b.AddText(b.AddChild(sec, "title"));
    b.AddRecursiveChild(sec, sec);
    auto m = ShredMapping::Derive(b.Build(sec), "t");
    EXPECT_EQ(m.status().code(), StatusCode::kNotImplemented);
  }
  {  // mixed content
    StructureBuilder b;
    auto* p = b.Element("p");
    p->has_text = true;
    b.AddChild(p, "b");
    auto m = ShredMapping::Derive(b.Build(p), "t");
    EXPECT_EQ(m.status().code(), StatusCode::kNotImplemented);
  }
  {  // duplicate child slot names
    StructureBuilder b;
    auto* r = b.Element("r");
    b.AddChild(r, "x");
    b.AddChild(r, "x");
    auto m = ShredMapping::Derive(b.Build(r), "t");
    EXPECT_EQ(m.status().code(), StatusCode::kNotImplemented);
  }
  {  // fragment root
    StructureBuilder b;
    auto* frag = b.Element(std::string(schema::kFragmentRootName));
    b.AddChild(frag, "a");
    auto m = ShredMapping::Derive(b.Build(frag), "t");
    EXPECT_EQ(m.status().code(), StatusCode::kNotImplemented);
  }
}

TEST(ShredMappingTest, ChoiceGroupGetsDiscriminatorAndNullableBranches) {
  StructureBuilder b;
  auto* pay = b.Element("payment");
  pay->group = schema::ModelGroup::kChoice;
  b.AddText(b.AddChild(pay, "cash"));
  b.AddText(b.AddChild(pay, "card"));
  auto m = ShredMapping::Derive(b.Build(pay), "t");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  const shred::ShredTable& t = *m->root_table();
  int branch = t.ColumnIndex("branch");
  ASSERT_GE(branch, 0);
  EXPECT_EQ(t.columns[static_cast<size_t>(branch)].kind,
            shred::ShredColumn::Kind::kDiscriminator);
  EXPECT_TRUE(t.columns[static_cast<size_t>(t.ColumnIndex("v_cash"))].nullable);
  EXPECT_TRUE(t.columns[static_cast<size_t>(t.ColumnIndex("v_card"))].nullable);
}

TEST(ShredMappingTest, ValueIndexPathsResolveToColumns) {
  ShredOptions options;
  options.value_indexes = {"emp/sal", "dept/@deptno", "dname/text()"};
  auto bad = ShredMapping::Derive(DeptStructure(), "d", options);
  // dname inlines into dept, so "dname/text()" cannot resolve to a table.
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  options.value_indexes = {"emp/sal", "dept/@deptno"};
  auto m = ShredMapping::Derive(DeptStructure(), "d", options);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->value_indexes().size(), 2u);
  EXPECT_EQ(m->value_indexes()[0], std::make_pair(std::string("d_emp"),
                                                  std::string("v_sal")));
  EXPECT_EQ(m->value_indexes()[1], std::make_pair(std::string("d_dept"),
                                                  std::string("a_deptno")));
}

TEST(ShredderTest, LineageAndOrdColumns) {
  auto m = ShredMapping::Derive(DeptStructure(), "d");
  ASSERT_TRUE(m.ok());
  auto doc = xml::ParseDocument(kDeptDoc);
  ASSERT_TRUE(doc.ok());
  shred::Shredder shredder(&*m, /*first_rowid=*/100);
  auto batch = shredder.Shred((*doc)->root(), /*next_document_ord=*/0);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->rows.size(), 3u);
  ASSERT_EQ(batch->rows[0].size(), 1u);  // one dept
  ASSERT_EQ(batch->rows[1].size(), 1u);  // one employees
  ASSERT_EQ(batch->rows[2].size(), 2u);  // two emps
  EXPECT_EQ(batch->elements, 12u);       // dept,dname,loc,employees + 2*4
  // Rowids are globally unique starting at 100; parent links line up.
  const rel::Row& dept = batch->rows[0][0];
  const rel::Row& employees = batch->rows[1][0];
  EXPECT_EQ(dept[0].AsInt(), 100);
  EXPECT_TRUE(dept[1].is_null());
  EXPECT_EQ(employees[1].AsInt(), dept[0].AsInt());
  EXPECT_EQ(batch->rows[2][0][1].AsInt(), employees[0].AsInt());
  EXPECT_EQ(batch->rows[2][0][2].AsInt(), 0);  // ord within slot
  EXPECT_EQ(batch->rows[2][1][2].AsInt(), 1);
  EXPECT_EQ(batch->rows[2][1][7].AsString(), "MILLER");  // v_ename
  EXPECT_EQ(shredder.next_rowid(), 104);
  // Interval encoding: stored rows are dept(0,7,0), employees(1,6,1),
  // emp(2,3,2), emp(4,5,2) — children strictly inside the parent, siblings
  // disjoint, level = parent level + 1.
  EXPECT_EQ(dept[3].AsInt(), 0);
  EXPECT_EQ(dept[4].AsInt(), 7);
  EXPECT_EQ(dept[5].AsInt(), 0);
  EXPECT_EQ(employees[3].AsInt(), 1);
  EXPECT_EQ(employees[4].AsInt(), 6);
  EXPECT_EQ(employees[5].AsInt(), 1);
  EXPECT_EQ(batch->rows[2][0][3].AsInt(), 2);
  EXPECT_EQ(batch->rows[2][0][4].AsInt(), 3);
  EXPECT_EQ(batch->rows[2][1][3].AsInt(), 4);
  EXPECT_EQ(batch->rows[2][1][4].AsInt(), 5);
  EXPECT_EQ(batch->rows[2][1][5].AsInt(), 2);
}

TEST(ShredderTest, RejectsDocumentsOutsideTheDeclaredShape) {
  auto m = ShredMapping::Derive(DeptStructure(), "d");
  ASSERT_TRUE(m.ok());
  shred::Shredder shredder(&*m);
  auto expect_bad = [&](const char* xml) {
    auto doc = xml::ParseDocument(xml);
    ASSERT_TRUE(doc.ok());
    auto batch = shredder.Shred((*doc)->root(), 0);
    EXPECT_FALSE(batch.ok()) << xml;
    EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  };
  expect_bad("<branch/>");                               // wrong root
  expect_bad("<dept><dname>A</dname><boss/></dept>");    // undeclared child
  expect_bad("<dept><loc>X</loc></dept>");               // missing required
  expect_bad("<dept x=\"1\"><dname>A</dname></dept>");   // undeclared attr
  expect_bad("<dept><dname>A</dname>oops</dept>");       // undeclared text
  // A failed document must not leak rowids.
  EXPECT_EQ(shredder.next_rowid(), 0);
}

// Registers DeptStructure as a shredded schema and loads kDeptDoc.
class ShreddedDbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ShredOptions options;
    options.value_indexes = {"emp/sal"};
    ASSERT_TRUE(
        db_.RegisterShreddedSchema("dept_emp", DeptStructure(), options).ok());
    auto stats = db_.LoadDocument("dept_emp", kDeptDoc);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->documents, 1);
    EXPECT_EQ(stats->rows, 4u);
    EXPECT_GT(stats->bytes, 0u);
  }

  XmlDb db_;
};

TEST_F(ShreddedDbFixture, PublishingViewReconstructsTheDocument) {
  auto rows = db_.MaterializeView("dept_emp");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], kDeptDoc);
}

TEST_F(ShreddedDbFixture, RoundTripMatchesCanonicalForm) {
  const shred::ShredMapping* mapping = db_.shredded_mapping("dept_emp");
  ASSERT_NE(mapping, nullptr);
  auto doc = xml::ParseDocument(kDeptDoc);
  ASSERT_TRUE(doc.ok());
  auto canonical = shred::CanonicalizeDocument(*mapping, (*doc)->root());
  ASSERT_TRUE(canonical.ok()) << canonical.status().ToString();
  auto rows = db_.MaterializeView("dept_emp");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], *canonical);
}

TEST_F(ShreddedDbFixture, LoadsCreateLineageAndValueIndexes) {
  auto emp = db_.catalog()->GetTable("dept_emp_emp");
  ASSERT_TRUE(emp.ok());
  EXPECT_TRUE((*emp)->HasIndex("parent_rowid"));
  EXPECT_TRUE((*emp)->HasIndex("v_sal"));
  auto dept = db_.catalog()->GetTable("dept_emp_dept");
  ASSERT_TRUE(dept.ok());
  EXPECT_FALSE((*dept)->HasIndex("parent_rowid"));  // root table
}

TEST_F(ShreddedDbFixture, SecondDocumentBecomesSecondViewRow) {
  const char* second =
      "<dept deptno=\"40\"><dname>OPERATIONS</dname>"
      "<employees></employees></dept>";
  auto stats = db_.LoadDocument("dept_emp", second);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->documents, 2);
  auto rows = db_.MaterializeView("dept_emp");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], kDeptDoc);
  // The optional <loc> was absent and the guarded publish omits it; the
  // empty <employees> aggregates zero rows.
  EXPECT_EQ((*rows)[1],
            "<dept deptno=\"40\"><dname>OPERATIONS</dname>"
            "<employees/></dept>");
}

TEST_F(ShreddedDbFixture, TransformOverDeepNestingAgreesWithFunctional) {
  // employees/emp crosses two nested scopes (employees is table-worthy in the
  // shredded mapping), which the XQuery->SQL stage does not translate yet —
  // the pipeline must fall back to plan B and still produce the same answer.
  const char* stylesheet =
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"dept\"><rich><xsl:apply-templates "
      "select=\"employees/emp[sal &gt; 2000]\"/></rich></xsl:template>"
      "<xsl:template match=\"emp\"><e><xsl:value-of select=\"ename\"/></e>"
      "</xsl:template>"
      "<xsl:template match=\"text()\"/>"
      "</xsl:stylesheet>";
  ExecStats stats;
  auto out = db_.TransformView("dept_emp", stylesheet, {}, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], "<rich><e>CLARK</e></rich>");
  EXPECT_EQ(stats.path, ExecutionPath::kXQueryRewritten)
      << stats.fallback_reason;

  ExecOptions functional;
  functional.enable_rewrite = false;
  auto ref = db_.TransformView("dept_emp", stylesheet, functional);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(*out, *ref);
}

// The Figure-2 workload shape: one repeating element directly under the
// root, leaf children inlined. This is the shape where the shredded view
// reaches plan A with an index probe, exactly like the hand-built view.
TEST(ShreddedSchemaTest, Figure2ShapeReachesPlanAWithIndexProbe) {
  XmlDb db;
  StructureBuilder b;
  auto* table = b.Element("table");
  auto* row = b.AddChild(table, "row", 0, -1);
  for (const char* leaf : {"id", "firstname", "lastname", "city", "zip"}) {
    b.AddText(b.AddChild(row, leaf));
  }
  ShredOptions options;
  options.value_indexes = {"row/id"};
  ASSERT_TRUE(db.RegisterShreddedSchema("t", b.Build(table), options).ok());

  std::string doc = "<table>";
  for (int i = 1; i <= 20; ++i) {
    std::string n = std::to_string(i);
    doc += "<row><id>" + n + "</id><firstname>F" + n +
           "</firstname><lastname>L" + n + "</lastname><city>C" + n +
           "</city><zip>" + std::to_string(90000 + i) + "</zip></row>";
  }
  doc += "</table>";
  ASSERT_TRUE(db.LoadDocument("t", doc).ok());

  const char* stylesheet =
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"table\"><out><xsl:apply-templates "
      "select=\"row[id = 9]\"/></out></xsl:template>"
      "<xsl:template match=\"row\"><hit><xsl:value-of select=\"lastname\"/>"
      "</hit></xsl:template>"
      "<xsl:template match=\"text()\"/>"
      "</xsl:stylesheet>";
  ExecStats stats;
  auto out = db.TransformView("t", stylesheet, {}, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0], "<out><hit>L9</hit></out>");
  EXPECT_EQ(stats.path, ExecutionPath::kSqlRewritten)
      << stats.fallback_reason;
  EXPECT_TRUE(stats.used_index) << stats.sql_text;

  ExecOptions functional;
  functional.enable_rewrite = false;
  auto ref = db.TransformView("t", stylesheet, functional);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(*out, *ref);
}

TEST_F(ShreddedDbFixture, FailedLoadLeavesTablesUntouched) {
  auto emp = db_.catalog()->GetTable("dept_emp_emp");
  ASSERT_TRUE(emp.ok());
  size_t before = (*emp)->row_count();
  auto stats = db_.LoadDocument("dept_emp", "<dept><bogus/></dept>");
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ((*emp)->row_count(), before);
  auto rows = db_.MaterializeView("dept_emp");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(ShreddedSchemaTest, ChoiceRoundTripKeepsPresentBranch) {
  XmlDb db;
  StructureBuilder b;
  auto* order = b.Element("order");
  b.AddText(b.AddChild(order, "oid"));
  auto* pay = b.AddChild(order, "payment");
  pay->group = schema::ModelGroup::kChoice;
  b.AddText(b.AddChild(pay, "cash"));
  auto* card = b.AddChild(pay, "card");
  card->attributes.push_back("issuer");
  b.AddText(b.AddChild(card, "number"));
  ASSERT_TRUE(db.RegisterShreddedSchema("orders", b.Build(order)).ok());

  const char* cash_doc =
      "<order><oid>1</oid><payment><cash>30</cash></payment></order>";
  const char* card_doc =
      "<order><oid>2</oid><payment><card issuer=\"V\">"
      "<number>4111</number></card></payment></order>";
  ASSERT_TRUE(db.LoadDocument("orders", cash_doc).ok());
  ASSERT_TRUE(db.LoadDocument("orders", card_doc).ok());

  auto rows = db.MaterializeView("orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], cash_doc);
  EXPECT_EQ((*rows)[1], card_doc);

  // The discriminator records the branch taken.
  auto pay_table = db.catalog()->GetTable("orders_payment");
  ASSERT_TRUE(pay_table.ok());
  const shred::ShredMapping* mapping = db.shredded_mapping("orders");
  ASSERT_NE(mapping, nullptr);
  int branch = -1;
  for (const auto& t : mapping->tables()) {
    if (t->name == "orders_payment") branch = t->ColumnIndex("branch");
  }
  ASSERT_GE(branch, 0);
  EXPECT_EQ((*pay_table)->row(0)[static_cast<size_t>(branch)].AsString(),
            "cash");
  EXPECT_EQ((*pay_table)->row(1)[static_cast<size_t>(branch)].AsString(),
            "card");
}

TEST(ShreddedSchemaTest, RecursiveSchemaRoundTrips) {
  XmlDb db;
  StructureBuilder b;
  auto* doc = b.Element("doc");
  auto* sec = b.AddChild(doc, "section", 0, -1);
  sec->attributes.push_back("id");
  b.AddText(b.AddChild(sec, "title"));
  b.AddRecursiveChild(sec, sec);
  ASSERT_TRUE(db.RegisterShreddedSchema("r", b.Build(doc)).ok());
  const char* nested =
      "<doc>"
      "<section id=\"1\"><title>A</title>"
      "<section id=\"1.1\"><title>B</title>"
      "<section id=\"1.1.1\"><title>C</title></section>"
      "</section>"
      "<section id=\"1.2\"><title>D</title></section>"
      "</section>"
      "<section id=\"2\"><title>E</title></section>"
      "</doc>";
  ASSERT_TRUE(db.LoadDocument("r", nested).ok());
  // All five sections land in one self-referencing table.
  auto sec_table = db.catalog()->GetTable("r_section");
  ASSERT_TRUE(sec_table.ok());
  EXPECT_EQ((*sec_table)->row_count(), 5u);
  auto rows = db.MaterializeView("r");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], nested);
}

TEST(ShredValidationTest, RejectsOutOfOrderSequenceContent) {
  // Sequence groups prescribe sibling order: a document with <loc> before
  // <dname> must be rejected, not silently reordered to declaration order.
  XmlDb db;
  ASSERT_TRUE(db.RegisterShreddedSchema("d", DeptStructure()).ok());
  auto stats = db.LoadDocument(
      "d",
      "<dept deptno=\"10\"><loc>NEW YORK</loc><dname>ACCOUNTING</dname>"
      "<employees/></dept>");
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("sequence order"),
            std::string::npos)
      << stats.status().ToString();
  // The canonicalizer shares the matcher, so it rejects the same document.
  auto m = ShredMapping::Derive(DeptStructure(), "d");
  ASSERT_TRUE(m.ok());
  auto doc = xml::ParseDocument(
      "<dept deptno=\"10\"><loc>NEW YORK</loc><dname>ACCOUNTING</dname>"
      "<employees/></dept>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(shred::CanonicalizeDocument(*m, (*doc)->root()).ok());
  // Repeats within one slot are still fine (they are in declared order).
  ASSERT_TRUE(db.LoadDocument("d", kDeptDoc).ok());
}

TEST(ShreddedSchemaTest, FailedRegistrationLeavesNoTablesAndRetrySucceeds) {
  XmlDb db;
  // Occupy one of the mapping's table names so registration fails after the
  // root table was already created.
  ASSERT_TRUE(
      db.CreateTable("w_employees", rel::Schema({{"x", rel::DataType::kInt}}))
          .ok());
  Status st = db.RegisterShreddedSchema("w", DeptStructure());
  ASSERT_FALSE(st.ok());
  // The failed attempt dropped the tables it had created...
  EXPECT_FALSE(db.catalog()->GetTable("w_dept").ok());
  EXPECT_FALSE(db.catalog()->GetTable("w_emp").ok());
  // ...so clearing the conflict lets a retry under the same name succeed.
  ASSERT_TRUE(db.catalog()->DropTable("w_employees").ok());
  ASSERT_TRUE(db.RegisterShreddedSchema("w", DeptStructure()).ok());
  ASSERT_TRUE(db.LoadDocument("w", kDeptDoc).ok());
  auto rows = db.MaterializeView("w");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], kDeptDoc);
}

TEST(ShreddedSchemaTest, ViewNameCollisionDropsCreatedTables) {
  // Late failure path: every table exists, but the publishing view name is
  // taken by a view outside the shredded registry.
  XmlDb db;
  ASSERT_TRUE(db.RegisterShreddedSchema("a", DeptStructure()).ok());
  const char* identity =
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"/\"><xsl:copy-of select=\".\"/></xsl:template>"
      "</xsl:stylesheet>";
  ASSERT_TRUE(db.CreateXsltView("b", "a", identity, "xml_content").ok());
  Status st = db.RegisterShreddedSchema("b", DeptStructure());
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(db.catalog()->GetTable("b_dept").ok());
  EXPECT_FALSE(db.catalog()->GetTable("b_employees").ok());
  EXPECT_FALSE(db.catalog()->GetTable("b_emp").ok());
}

TEST(ShreddedSchemaTest, RegisterFromXsdText) {
  XmlDb db;
  const char* xsd =
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
      "<xs:element name=\"lib\"><xs:complexType><xs:sequence>"
      "<xs:element name=\"book\" minOccurs=\"0\" maxOccurs=\"unbounded\">"
      "<xs:complexType><xs:sequence>"
      "<xs:element name=\"title\" type=\"xs:string\"/>"
      "</xs:sequence><xs:attribute name=\"isbn\"/></xs:complexType>"
      "</xs:element>"
      "</xs:sequence></xs:complexType></xs:element>"
      "</xs:schema>";
  ASSERT_TRUE(db.RegisterShreddedSchemaFromXsd("lib", xsd).ok());
  const char* doc =
      "<lib><book isbn=\"1\"><title>A</title></book>"
      "<book isbn=\"2\"><title>B</title></book></lib>";
  ASSERT_TRUE(db.LoadDocument("lib", doc).ok());
  auto rows = db.MaterializeView("lib");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], doc);
}

TEST(ShredCanonicalizeTest, DropsAnnotationsCommentsAndReordersAllGroups) {
  StructureBuilder b;
  auto* r = b.Element("r");
  r->group = schema::ModelGroup::kAll;
  b.AddText(b.AddChild(r, "a"));
  b.AddText(b.AddChild(r, "b"));
  auto m = ShredMapping::Derive(b.Build(r), "t");
  ASSERT_TRUE(m.ok());
  // <all> children out of declared order, plus noise to strip: an xdbs:*
  // annotation attribute (as GenerateSampleDocument emits), a comment and a
  // PI. Built via the DOM API because the annotation prefix is unbound.
  xml::Document doc;
  xml::Node* r_elem = doc.CreateElement("r");
  doc.root()->AppendChild(r_elem);
  r_elem->SetAttribute("xdbs:group", "all");
  r_elem->AppendChild(doc.CreateComment("note"));
  xml::Node* b_elem = doc.CreateElement("b");
  b_elem->AppendChild(doc.CreateText("2"));
  r_elem->AppendChild(b_elem);
  r_elem->AppendChild(doc.CreateProcessingInstruction("pi", "data"));
  xml::Node* a_elem = doc.CreateElement("a");
  a_elem->AppendChild(doc.CreateText("1"));
  r_elem->AppendChild(a_elem);
  auto canon = shred::CanonicalizeDocument(*m, doc.root());
  ASSERT_TRUE(canon.ok()) << canon.status().ToString();
  EXPECT_EQ(*canon, "<r><a>1</a><b>2</b></r>");
}

}  // namespace
}  // namespace xdb
