// Tests for the N-way differential harness (src/difftest), plus the
// differential sweep and conformance-corpus runs themselves. DESIGN.md §9
// documents the architecture; every seed here flows through
// difftest::TestSeed / difftest::BaseSeed so XDB_SEED replays a failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "difftest/canonical.h"
#include "difftest/concurrent.h"
#include "difftest/corpus.h"
#include "difftest/generator.h"
#include "difftest/oracle.h"
#include "difftest/reducer.h"
#include "difftest/seed.h"
#include "xslt/interpreter.h"
#include "xslt/stylesheet.h"
#include "xslt/vm.h"
#include "xml/parser.h"

namespace xdb::difftest {
namespace {

// ---------------------------------------------------------------------------
// Canonicalization: the comparator itself must erase exactly the right noise
// ---------------------------------------------------------------------------

std::string Canon(std::string_view fragment) {
  auto r = CanonicalizeXml(fragment);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::string();
}

TEST(CanonicalizeTest, AttributeOrderIsNormalized) {
  EXPECT_EQ(Canon("<a b=\"1\" a=\"2\" c=\"3\"/>"),
            Canon("<a c=\"3\" a=\"2\" b=\"1\"/>"));
}

TEST(CanonicalizeTest, AttributeValuesStayDistinct) {
  EXPECT_NE(Canon("<a k=\"1\"/>"), Canon("<a k=\"2\"/>"));
}

TEST(CanonicalizeTest, AdjacentTextIsCoalesced) {
  // A correct engine may emit "ab" as one text node or two; after
  // canonicalization both forms compare equal. Comment removal here is only
  // the tool used to create genuinely adjacent text nodes in the input.
  EXPECT_EQ(Canon("<a>ab</a>"), Canon("<a>ab</a>"));
  EXPECT_EQ(Canon("<a></a>"), Canon("<a/>"));
}

TEST(CanonicalizeTest, WhitespaceIsSignificant) {
  EXPECT_NE(Canon("<a> x </a>"), Canon("<a>x</a>"));
  EXPECT_NE(Canon("<a>x y</a>"), Canon("<a>x  y</a>"));
}

TEST(CanonicalizeTest, NumericLexicalFormsStayDistinct) {
  // "1" vs "1.0" is exactly the kind of engine bug the oracle must see.
  EXPECT_NE(Canon("<n>1</n>"), Canon("<n>1.0</n>"));
  EXPECT_NE(Canon("<a v=\"1\"/>"), Canon("<a v=\"1.0\"/>"));
}

TEST(CanonicalizeTest, NamespacePrefixesArePreserved) {
  EXPECT_NE(Canon("<p:a xmlns:p=\"urn:u\"/>"), Canon("<q:a xmlns:q=\"urn:u\"/>"));
}

TEST(CanonicalizeTest, CommentsAndPisArePreserved) {
  EXPECT_NE(Canon("<a><!--x--></a>"), Canon("<a/>"));
  EXPECT_NE(Canon("<a><!--x--></a>"), Canon("<a><!--y--></a>"));
  EXPECT_NE(Canon("<a><?pi d?></a>"), Canon("<a/>"));
}

TEST(CanonicalizeTest, BareTextAndFragmentsWork) {
  EXPECT_EQ(Canon("plain text"), "plain text");
  EXPECT_EQ(Canon("<a/><b/>"), "<a/><b/>");
  EXPECT_EQ(Canon(""), "");
}

TEST(CanonicalizeTest, MalformedInputIsAParseError) {
  auto r = CanonicalizeXml("<a><b></a>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Seed plumbing
// ---------------------------------------------------------------------------

TEST(SeedTest, TestSeedIsIdentityWithoutOverride) {
  if (SeedOverridden()) GTEST_SKIP() << "XDB_SEED set in environment";
  EXPECT_EQ(TestSeed(0), 0u);
  EXPECT_EQ(TestSeed(7), 7u);
  EXPECT_EQ(BaseSeed(), 1u);
}

TEST(SeedTest, ReproCommandNamesSeedAndTest) {
  std::string repro = ReproCommand(42, "DiffTest.DifferentialSweep");
  EXPECT_NE(repro.find("XDB_SEED=42"), std::string::npos) << repro;
  EXPECT_NE(repro.find("XDB_DIFF_SEEDS=1"), std::string::npos) << repro;
  EXPECT_NE(repro.find("ctest"), std::string::npos) << repro;
  EXPECT_NE(repro.find("DiffTest.DifferentialSweep"), std::string::npos) << repro;
}

// ---------------------------------------------------------------------------
// Generator: every case is usable (parses, loads, matches its structure)
// ---------------------------------------------------------------------------

TEST(GeneratorTest, CasesAreDeterministic) {
  GeneratedCase a = GenerateCase(12345);
  GeneratedCase b = GenerateCase(12345);
  EXPECT_EQ(a.documents, b.documents);
  EXPECT_EQ(a.stylesheet, b.stylesheet);
  EXPECT_EQ(a.reject_candidate, b.reject_candidate);
}

TEST(GeneratorTest, CasesAreValidAndRejectFractionIsInjected) {
  int reject_candidates = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    GeneratedCase c = GenerateCase(TestSeed(i));
    ASSERT_FALSE(c.documents.empty());
    auto ss = xslt::Stylesheet::Parse(c.stylesheet);
    ASSERT_TRUE(ss.ok()) << "seed " << c.seed << ": " << ss.status().ToString()
                         << "\n" << c.stylesheet;
    for (const std::string& doc : c.documents) {
      ASSERT_TRUE(xml::ParseDocument(doc).ok()) << "seed " << c.seed;
    }
    if (c.reject_candidate) ++reject_candidates;
    // The oracle is the real validity check: load + canonicalize must work.
    OracleReport report = RunCase(c);
    ASSERT_NE(report.outcome, OracleReport::Outcome::kInvalid)
        << "seed " << c.seed << ": " << report.detail;
  }
  // With reject_fraction = 0.15 over 40 seeds, at least one injection is
  // overwhelmingly likely; zero would mean the knob is dead.
  EXPECT_GT(reject_candidates, 0);
}

// ---------------------------------------------------------------------------
// The differential sweep: XDB_DIFF_SEEDS cases through all four engines
// ---------------------------------------------------------------------------

TEST(DiffTest, DifferentialSweep) {
  const int n = SweepSeedCount();
  int agreed = 0, rejected = 0;
  for (int i = 0; i < n; ++i) {
    // Case seed = BaseSeed() + i, so the printed repro (XDB_SEED=<case seed>
    // XDB_DIFF_SEEDS=1) re-runs exactly the failing case.
    GeneratedCase c = GenerateCase(BaseSeed() + static_cast<uint64_t>(i));
    OracleReport report = RunCase(c);
    ASSERT_NE(report.outcome, OracleReport::Outcome::kDiverged)
        << report.detail;
    ASSERT_NE(report.outcome, OracleReport::Outcome::kInvalid)
        << "generator produced an unusable case\n" << report.detail << "\n"
        << report.repro;
    if (report.outcome == OracleReport::Outcome::kAgreed) ++agreed;
    if (report.outcome == OracleReport::Outcome::kRejected) ++rejected;
  }
  std::printf("[difftest] sweep: %d seeds, %d agreed, %d cleanly rejected\n",
              n, agreed, rejected);
  EXPECT_EQ(agreed + rejected, n);
  // Both regimes must actually be exercised on a full-size sweep.
  if (n >= 50) {
    EXPECT_GT(agreed, 0);
    EXPECT_GT(rejected, 0);
  }
}

// ---------------------------------------------------------------------------
// Concurrent session sweep: N pinned sessions race background loads
// ---------------------------------------------------------------------------

TEST(DiffTest, ConcurrentSessionSweep) {
  // Engine-level agreement for these seeds is DifferentialSweep's job; this
  // sweep layers the session harness on top: 8 sessions re-execute each
  // case against a pinned epoch while loads commit and publish, and every
  // output must be byte-identical to the pre-load serial reference.
  const int n = SweepSeedCount();
  ConcurrentOptions opts;
  opts.sessions = 8;
  int agreed = 0;
  uint64_t epochs_published = 0;
  for (int i = 0; i < n; ++i) {
    GeneratedCase c = GenerateCase(BaseSeed() + static_cast<uint64_t>(i));
    ConcurrentReport report = RunConcurrentCase(c, opts);
    ASSERT_NE(report.outcome, ConcurrentReport::Outcome::kDiverged)
        << report.detail;
    ASSERT_NE(report.outcome, ConcurrentReport::Outcome::kInvalid)
        << report.detail << "\n" << report.repro;
    // Loads really published (isolation was tested, not vacuously true),
    // and dropping every pin reclaimed all retired epochs.
    ASSERT_GT(report.final_epoch, report.pinned_epoch) << report.repro;
    ASSERT_EQ(report.live_epochs_after, 1u) << report.repro;
    epochs_published += report.final_epoch - report.pinned_epoch;
    ++agreed;
  }
  std::printf(
      "[difftest] concurrent sweep: %d seeds x %d sessions, %d agreed, "
      "%llu epochs published\n",
      n, opts.sessions, agreed,
      static_cast<unsigned long long>(epochs_published));
}

// ---------------------------------------------------------------------------
// Correlated-structure sweep: join lowering on vs off, all four engines
// ---------------------------------------------------------------------------

TEST(DiffTest, CorrelatedJoinLoweringSweep) {
  // Correlated cases (doc -> parent* -> child*, nested for-each) run twice
  // per seed: once with the optimizer's join-lowering enabled and once with
  // it disabled through XDB_DISABLE_OPT_RULES. Within each run all four
  // engines must agree; across the runs the shredded engine's output must be
  // byte-identical — the group join is a pure plan transformation.
  const char* saved = std::getenv("XDB_DISABLE_OPT_RULES");
  std::string saved_value = saved != nullptr ? saved : "";
  const int n = SweepSeedCount();
  GenOptions gen;
  gen.correlated = true;
  gen.reject_fraction = 0.0;  // keep every seed on the rewrite path
  OracleOptions oracle;
  oracle.repro_regex = "DiffTest.CorrelatedJoinLoweringSweep";
  int sql_path = 0;
  for (int i = 0; i < n; ++i) {
    GeneratedCase c =
        GenerateCase(BaseSeed() + static_cast<uint64_t>(i), gen);
    unsetenv("XDB_DISABLE_OPT_RULES");
    OracleReport on = RunCase(c, oracle);
    setenv("XDB_DISABLE_OPT_RULES", "join-lowering,join-access-path,join-order",
           1);
    OracleReport off = RunCase(c, oracle);
    unsetenv("XDB_DISABLE_OPT_RULES");
    for (const OracleReport* r : {&on, &off}) {
      ASSERT_NE(r->outcome, OracleReport::Outcome::kDiverged) << r->detail
                                                              << "\n"
                                                              << r->repro;
      ASSERT_NE(r->outcome, OracleReport::Outcome::kInvalid)
          << r->detail << "\n" << r->repro;
    }
    ASSERT_EQ(on.engines[kShreddedSql].canonical,
              off.engines[kShreddedSql].canonical)
        << "join lowering changed the shredded output\n" << on.repro;
    if (on.shredded_path == ExecutionPath::kSqlRewritten) ++sql_path;
  }
  if (saved != nullptr) {
    setenv("XDB_DISABLE_OPT_RULES", saved_value.c_str(), 1);
  }
  std::printf("[difftest] correlated sweep: %d seeds, %d on plan A\n", n,
              sql_path);
  // The mode exists to exercise lowered joins: most cases must reach plan A.
  if (n >= 50) {
    EXPECT_GT(sql_path, n / 2);
  }
}

// ---------------------------------------------------------------------------
// Recursive-structure sweep: structural-join pricing on vs off, four engines
// ---------------------------------------------------------------------------

TEST(DiffTest, RecursiveStructuralSweep) {
  // Recursive cases (self- or mutually-recursive content models, `.//x` and
  // ancestor:: stylesheets) run twice per seed: once with the structural-join
  // pricing rule enabled and once with it disabled through
  // XDB_DISABLE_OPT_RULES (interval range scan vs full interval scan). Within
  // each run all four engines must agree; across the runs the shredded
  // engine's output must be byte-identical — the access-path choice is a pure
  // plan transformation.
  const char* saved = std::getenv("XDB_DISABLE_OPT_RULES");
  std::string saved_value = saved != nullptr ? saved : "";
  const int n = SweepSeedCount();
  GenOptions gen;
  gen.recursive = true;
  gen.reject_fraction = 0.0;  // keep every seed on the rewrite path
  OracleOptions oracle;
  oracle.repro_regex = "DiffTest.RecursiveStructuralSweep";
  int sql_path = 0;
  for (int i = 0; i < n; ++i) {
    GeneratedCase c =
        GenerateCase(BaseSeed() + static_cast<uint64_t>(i), gen);
    unsetenv("XDB_DISABLE_OPT_RULES");
    OracleReport on = RunCase(c, oracle);
    setenv("XDB_DISABLE_OPT_RULES", "structural-join", 1);
    OracleReport off = RunCase(c, oracle);
    unsetenv("XDB_DISABLE_OPT_RULES");
    for (const OracleReport* r : {&on, &off}) {
      ASSERT_NE(r->outcome, OracleReport::Outcome::kDiverged) << r->detail
                                                              << "\n"
                                                              << r->repro;
      ASSERT_NE(r->outcome, OracleReport::Outcome::kInvalid)
          << r->detail << "\n" << r->repro;
    }
    ASSERT_EQ(on.engines[kShreddedSql].canonical,
              off.engines[kShreddedSql].canonical)
        << "structural-join pricing changed the shredded output\n" << on.repro;
    if (on.shredded_path == ExecutionPath::kSqlRewritten) ++sql_path;
  }
  if (saved != nullptr) {
    setenv("XDB_DISABLE_OPT_RULES", saved_value.c_str(), 1);
  }
  std::printf("[difftest] recursive sweep: %d seeds, %d on plan A\n", n,
              sql_path);
  // The mode exists to exercise interval joins: most cases must reach plan A.
  if (n >= 50) {
    EXPECT_GT(sql_path, n / 2);
  }
}

// ---------------------------------------------------------------------------
// Harness self-test: a seeded divergence is caught, reduced, and reported
// ---------------------------------------------------------------------------

TEST(DiffTest, SabotageIsCaughtAndReducedToMinimalRepro) {
  // Find a case where the VM runs cleanly, then corrupt its output.
  OracleOptions sabotage;
  sabotage.sabotage_engine = kVm;
  sabotage.repro_regex = "DiffTest.SabotageIsCaughtAndReducedToMinimalRepro";

  GeneratedCase victim;
  bool found = false;
  for (uint64_t i = 0; i < 50 && !found; ++i) {
    GeneratedCase c = GenerateCase(TestSeed(i));
    OracleReport clean = RunCase(c);
    if (clean.outcome != OracleReport::Outcome::kAgreed) continue;
    victim = CloneCase(c);
    found = true;
  }
  ASSERT_TRUE(found) << "no agreeing case in 50 seeds";

  // 1. Caught: the corrupted engine diverges, named in the report.
  OracleReport report = RunCase(victim, sabotage);
  ASSERT_EQ(report.outcome, OracleReport::Outcome::kDiverged);
  EXPECT_NE(report.detail.find("vm"), std::string::npos) << report.detail;
  EXPECT_NE(report.detail.find("XDB_SEED="), std::string::npos)
      << report.detail;

  // 2. Reduced: to a minimal document/stylesheet pair.
  auto reduced = ReduceCase(victim, sabotage);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  ASSERT_TRUE(reduced->report.diverged());
  ASSERT_FALSE(reduced->reduced.documents.empty());
  for (const std::string& doc : reduced->reduced.documents) {
    EXPECT_LE(CountElements(doc), 5) << doc;
  }
  EXPECT_LE(CountTemplates(reduced->reduced.stylesheet), 3)
      << reduced->reduced.stylesheet;

  // 3. Reported: with a copy-paste repro command.
  EXPECT_NE(reduced->report.repro.find("XDB_SEED="), std::string::npos);
  EXPECT_NE(reduced->report.repro.find("ctest"), std::string::npos);
  std::printf("[difftest] sabotage reduced in %d oracle runs to %d elements / "
              "%d templates\n",
              reduced->oracle_runs,
              CountElements(reduced->reduced.documents[0]),
              CountTemplates(reduced->reduced.stylesheet));
}

TEST(DiffTest, ReduceRejectsNonDivergingCase) {
  GeneratedCase c = GenerateCase(TestSeed(3));
  auto r = ReduceCase(c, {});
  if (RunCase(c).outcome == OracleReport::Outcome::kDiverged) {
    FAIL() << "seed unexpectedly diverges on its own";
  }
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Error-path differential: engines must fail with the same status code
// ---------------------------------------------------------------------------

TEST(DiffTest, RunawayRecursionFailsIdenticallyInBothFunctionalEngines) {
  // Non-terminating apply-templates: both functional engines must trip the
  // shared template-depth cap with the same status code.
  const char* bomb =
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"a\"><xsl:apply-templates select=\".\"/>"
      "</xsl:template></xsl:stylesheet>";
  auto ss = xslt::Stylesheet::Parse(bomb);
  ASSERT_TRUE(ss.ok());
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());
  auto doc = xml::ParseDocument("<a/>");
  ASSERT_TRUE(doc.ok());

  xslt::Interpreter interp(**ss);
  auto iout = interp.Transform((*doc)->root());
  ASSERT_FALSE(iout.ok());

  xslt::Vm vm(**compiled);
  auto vout = vm.Transform((*doc)->root());
  ASSERT_FALSE(vout.ok());

  EXPECT_EQ(iout.status().code(), vout.status().code())
      << "interpreter: " << iout.status().ToString()
      << "\nvm: " << vout.status().ToString();
}

// ---------------------------------------------------------------------------
// Conformance corpus: xsltmark + examples through all four paths
// ---------------------------------------------------------------------------

TEST(DiffTest, ConformanceCorpusAgreesOnAllFourPaths) {
  int sql_hits = 0;
  std::vector<CorpusCase> corpus = ConformanceCorpus();
  ASSERT_GE(corpus.size(), 43u);
  for (const CorpusCase& c : corpus) {
    auto r = RunFourWay(c);
    ASSERT_TRUE(r.ok()) << c.name << ": " << r.status().ToString();
    EXPECT_TRUE(r->agreed) << r->detail;
    EXPECT_GT(r->rows, 0) << c.name;
    if (r->sql_path == ExecutionPath::kSqlRewritten) ++sql_hits;
  }
  // The corpus must actually drive the SQL path, not just fall back.
  EXPECT_GT(sql_hits, 10);
}

TEST(DiffTest, StructuralCorpusStaysOnShreddedSqlPath) {
  // The `structural/` cases exist to pin the interval-join pipeline: each
  // `//`/ancestor:: stylesheet must be accepted by the SQL rewrite (no plan-B
  // fallback), engage an index, and open at least one structural join —
  // while still agreeing with the other three engines byte-for-byte.
  int structural = 0;
  for (const CorpusCase& c : ConformanceCorpus()) {
    if (c.name.rfind("structural/", 0) != 0) continue;
    ++structural;
    auto r = RunFourWay(c);
    ASSERT_TRUE(r.ok()) << c.name << ": " << r.status().ToString();
    EXPECT_TRUE(r->agreed) << r->detail;
    EXPECT_EQ(r->sql_path, ExecutionPath::kSqlRewritten) << c.name;
    EXPECT_TRUE(r->sql_used_index) << c.name;
    EXPECT_GE(r->sql_structural_joins, 1u) << c.name;
  }
  EXPECT_EQ(structural, 3);
}

}  // namespace
}  // namespace xdb::difftest
