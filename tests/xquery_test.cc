#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace xdb::xquery {
namespace {

std::string RunQ(std::string_view query, std::string_view input_xml) {
  auto q = ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) return "<parse error>";
  std::unique_ptr<xml::Document> doc;
  xml::Node* ctx = nullptr;
  if (!input_xml.empty()) {
    auto d = xml::ParseDocument(input_xml);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    if (!d.ok()) return "<doc error>";
    doc = d.MoveValue();
    ctx = doc->root();
  }
  QueryEvaluator ev;
  auto out = ev.EvaluateToDocument(*q, ctx);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "<eval error: " + out.status().ToString() + ">";
  return xml::Serialize((*out)->root());
}

constexpr std::string_view kDept =
    "<dept>"
    "<dname>ACCOUNTING</dname>"
    "<loc>NEW YORK</loc>"
    "<employees>"
    "<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>"
    "<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>"
    "<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>"
    "</employees>"
    "</dept>";

TEST(XQueryParserTest, BasicForms) {
  EXPECT_TRUE(ParseQuery("1 + 2").ok());
  EXPECT_TRUE(ParseQuery("for $x in //a return $x").ok());
  EXPECT_TRUE(ParseQuery("let $x := 5 return $x * 2").ok());
  EXPECT_TRUE(ParseQuery("if (1 = 1) then 'y' else 'n'").ok());
  EXPECT_TRUE(ParseQuery("<a b=\"1\">{2}</a>").ok());
  EXPECT_TRUE(ParseQuery("(1, 2, 3)").ok());
  EXPECT_TRUE(ParseQuery("declare variable $v := .; $v/a").ok());
  EXPECT_TRUE(
      ParseQuery("declare function local:f($x) { $x + 1 }; local:f(2)").ok());
  EXPECT_TRUE(ParseQuery("$x instance of element(emp)").ok());
  EXPECT_TRUE(ParseQuery("(: comment (: nested :) :) 42").ok());
}

TEST(XQueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("for $x in").ok());
  EXPECT_FALSE(ParseQuery("let $x = 5 return $x").ok());  // '=' not ':='
  EXPECT_FALSE(ParseQuery("<a>").ok());
  EXPECT_FALSE(ParseQuery("<a></b>").ok());
  EXPECT_FALSE(ParseQuery("if (1) then 2").ok());  // missing else
  EXPECT_FALSE(ParseQuery("1 +").ok());
  EXPECT_FALSE(ParseQuery("declare variable $v := 1").ok());  // missing ';'
}

TEST(XQueryEvalTest, ArithmeticAndComparison) {
  EXPECT_EQ(RunQ("1 + 2 * 3", ""), "7");
  EXPECT_EQ(RunQ("if (2 > 1) then 'yes' else 'no'", ""), "yes");
  EXPECT_EQ(RunQ("10 mod 3", ""), "1");
}

TEST(XQueryEvalTest, Sequences) {
  EXPECT_EQ(RunQ("(1, 2, 3)", ""), "1 2 3");
  EXPECT_EQ(RunQ("()", ""), "");
  EXPECT_EQ(RunQ("(\"a\", \"b\")", ""), "a b");
}

TEST(XQueryEvalTest, PathsOverInput) {
  EXPECT_EQ(RunQ("string(/dept/dname)", kDept), "ACCOUNTING");
  EXPECT_EQ(RunQ("count(//emp)", kDept), "3");
  EXPECT_EQ(RunQ("//emp[sal > 2000]/ename", kDept),
            "<ename>CLARK</ename><ename>SMITH</ename>");
}

TEST(XQueryEvalTest, Flwor) {
  EXPECT_EQ(RunQ("for $e in //emp return <n>{fn:string($e/ename)}</n>", kDept),
            "<n>CLARK</n><n>MILLER</n><n>SMITH</n>");
  EXPECT_EQ(RunQ("for $e in //emp where $e/sal > 2000 return <n>{fn:string($e/"
                "ename)}</n>",
                kDept),
            "<n>CLARK</n><n>SMITH</n>");
  EXPECT_EQ(RunQ("let $hi := //emp[sal > 2000] return count($hi)", kDept), "2");
}

TEST(XQueryEvalTest, FlworOrderBy) {
  EXPECT_EQ(RunQ("for $e in //emp order by $e/sal return <s>{fn:string($e/sal)}"
                "</s>",
                kDept),
            "<s>1300</s><s>2450</s><s>4900</s>");
  EXPECT_EQ(RunQ("for $e in //emp order by $e/ename descending return "
                "<n>{fn:string($e/ename)}</n>",
                kDept),
            "<n>SMITH</n><n>MILLER</n><n>CLARK</n>");
}

TEST(XQueryEvalTest, NestedFlworClauses) {
  EXPECT_EQ(RunQ("for $x in (1, 2) for $y in (10, 20) return $x + $y", ""),
            "11 21 12 22");
  EXPECT_EQ(RunQ("for $x in (1, 2) let $d := $x * 10 return $d", ""), "10 20");
}

TEST(XQueryEvalTest, ElementConstruction) {
  EXPECT_EQ(RunQ("<r a=\"x{1+1}y\"><c>{3}</c></r>", ""),
            "<r a=\"x2y\"><c>3</c></r>");
  EXPECT_EQ(RunQ("<H2>Department name: {fn:string(/dept/dname)}</H2>", kDept),
            "<H2>Department name: ACCOUNTING</H2>");
  // Constructed element copies selected nodes.
  EXPECT_EQ(RunQ("<wrap>{//emp[1]/ename}</wrap>", kDept),
            "<wrap><ename>CLARK</ename></wrap>");
}

TEST(XQueryEvalTest, AttributeConstructor) {
  EXPECT_EQ(RunQ("<t>{attribute border { 2 }}</t>", ""), "<t border=\"2\"/>");
}

TEST(XQueryEvalTest, InstanceOf) {
  EXPECT_EQ(RunQ("for $n in /dept/node() return if ($n instance of "
                "element(dname)) then 'D' else 'x'",
                kDept),
            "D x x");
  EXPECT_EQ(RunQ("/dept/dname/text() instance of text()", kDept), "true");
  EXPECT_EQ(RunQ("/dept/dname instance of element()", kDept), "true");
}

TEST(XQueryEvalTest, UserFunctions) {
  EXPECT_EQ(RunQ("declare function local:dbl($x) { $x * 2 }; local:dbl(21)", ""),
            "42");
  EXPECT_EQ(
      RunQ("declare function local:fact($n) { if ($n <= 1) then 1 else $n * "
          "local:fact($n - 1) }; local:fact(5)",
          ""),
      "120");
  EXPECT_EQ(RunQ("declare function local:tag($e) { <t>{fn:string($e)}</t> }; "
                "for $x in //ename return local:tag($x)",
                kDept),
            "<t>CLARK</t><t>MILLER</t><t>SMITH</t>");
}

TEST(XQueryEvalTest, InfiniteRecursionCaught) {
  auto q = ParseQuery("declare function local:f($x) { local:f($x) }; local:f(1)");
  ASSERT_TRUE(q.ok());
  QueryEvaluator ev;
  xml::Document doc;
  auto out = ev.Evaluate(*q, doc.root(), &doc);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(XQueryEvalTest, DeclaredVariables) {
  EXPECT_EQ(RunQ("declare variable $var000 := .; fn:string($var000/dept/loc)",
                kDept),
            "NEW YORK");
  EXPECT_EQ(RunQ("declare variable $a := 2; declare variable $b := $a * 3; $b",
                ""),
            "6");
}

TEST(XQueryEvalTest, StringFunctions) {
  EXPECT_EQ(RunQ("fn:concat(\"a\", \"b\", \"c\")", ""), "abc");
  EXPECT_EQ(RunQ("fn:string-join(for $t in //ename return fn:string($t), \",\")",
                kDept),
            "CLARK,MILLER,SMITH");
  EXPECT_EQ(RunQ("fn:string-join(//ename, \"-\")", kDept), "CLARK-MILLER-SMITH");
  EXPECT_EQ(RunQ("fn:exists(//emp)", kDept), "true");
  EXPECT_EQ(RunQ("fn:exists(//nosuch)", kDept), "false");
  EXPECT_EQ(RunQ("sum(//sal)", kDept), "8650");
}

// Table 21 of the paper: compact built-in-only XQuery.
TEST(XQueryEvalTest, PaperTable21CompactQuery) {
  std::string out = RunQ(
      "declare variable $var000 := .;\n"
      "(: builtin template :)\n"
      "fn:string-join(\n"
      "  for $var002 in $var000//text()\n"
      "  return fn:string($var002), \" \")",
      kDept);
  EXPECT_EQ(out, "ACCOUNTING NEW YORK 7782 CLARK 2450 7934 MILLER 1300 7954 "
                 "SMITH 4900");
}

// The shape of the paper's Table 8 rewritten query (hand-checked subset).
TEST(XQueryEvalTest, PaperTable8StyleQuery) {
  const char* query = R"q(
declare variable $var000 := .;
(
let $var002 := $var000/dept
return
  (: <xsl:template match="dept"> :)
  (
  <H1>HIGHLY PAID DEPT EMPLOYEES</H1>,
  (
  let $var003 := $var002/dname
  return <H2>{fn:concat("Department name: ", fn:string($var003))}</H2>,
  let $var003 := $var002/loc
  return <H2>{fn:concat("Department location: ", fn:string($var003))}</H2>,
  let $var003 := $var002/employees
  return
    (
    <H2>Employees Table</H2>,
    <table border="2">{
      <td><b>EmpNo</b></td>,
      <td><b>Name</b></td>,
      <td><b>Weekly Salary</b></td>,
      (
      for $var005 in ($var003/emp[sal > 2000])
      return
        <tr>
        <td>{fn:string($var005/empno)}</td>
        <td>{fn:string($var005/ename)}</td>
        <td>{fn:string($var005/sal)}</td>
        </tr>
      )
    }</table>
    )
  )
  )
)
)q";
  std::string out = RunQ(query, kDept);
  EXPECT_NE(out.find("<H1>HIGHLY PAID DEPT EMPLOYEES</H1>"), std::string::npos);
  EXPECT_NE(out.find("<H2>Department name: ACCOUNTING</H2>"), std::string::npos);
  EXPECT_NE(out.find("<table border=\"2\">"), std::string::npos);
  EXPECT_NE(out.find("<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>"),
            std::string::npos);
  EXPECT_NE(out.find("<tr><td>7954</td><td>SMITH</td><td>4900</td></tr>"),
            std::string::npos);
  // MILLER (sal 1300) filtered out.
  EXPECT_EQ(out.find("MILLER"), std::string::npos);
}

// Table 10: XQuery over the XSLT view result.
TEST(XQueryEvalTest, PaperTable10Query) {
  const char* input =
      "<root><table><tr><td>1</td></tr><tr><td>2</td></tr></table></root>";
  EXPECT_EQ(RunQ("for $tr in ./root/table/tr return $tr", input),
            "<tr><td>1</td></tr><tr><td>2</td></tr>");
}

TEST(XQueryAstTest, PrettyPrintRoundTrip) {
  // ToString output must re-parse to an equivalent query.
  const char* queries[] = {
      "for $e in //emp where $e/sal > 2000 order by $e/sal descending return "
      "<n>{fn:string($e/ename)}</n>",
      "let $x := (1, 2) return count($x)",
      "declare variable $v := .; declare function local:f($a, $b) { $a + $b "
      "}; local:f(1, 2)",
      "<a x=\"{1}\" y=\"lit\"><b/>{2 + 3}</a>",
      "if (//x) then <y/> else ()",
      "$n instance of element(emp)",
  };
  for (const char* q : queries) {
    auto p1 = ParseQuery(q);
    ASSERT_TRUE(p1.ok()) << q << ": " << p1.status().ToString();
    std::string printed = p1->ToString();
    auto p2 = ParseQuery(printed);
    ASSERT_TRUE(p2.ok()) << "re-parse failed for:\n" << printed
                         << "\nerror: " << p2.status().ToString();
    EXPECT_EQ(p2->ToString(), printed) << "unstable print for " << q;
  }
}

}  // namespace
}  // namespace xdb::xquery
