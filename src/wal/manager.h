// WAL manager: the writer-side API the engine logs through. One Manager
// owns one data directory:
//
//   <XDB_DATA_DIR>/wal.log             frame log (truncated at checkpoints)
//   <XDB_DATA_DIR>/checkpoint.xck      last complete checkpoint
//   <XDB_DATA_DIR>/checkpoint.xck.tmp  in-flight checkpoint (ignored/
//                                      deleted by recovery)
//
// Mutations group into batches (one document load, one DDL statement):
// BeginBatch / Log* / Commit. Commit appends the kCommit record and — per
// the sync mode — fsyncs before returning, which is the durability point
// the session layer orders *before* publishing the new epoch: a published
// epoch is always durable (XDB_WAL_SYNC=always), durable within the group
// commit window (=batch), or best-effort (=off).
//
// Checkpoints follow the classic tmp + rename protocol: write every record
// to checkpoint.xck.tmp, fsync it, rename over checkpoint.xck, fsync the
// directory, then truncate the log. A crash between any two steps leaves
// either the old checkpoint + full log or the new checkpoint (+ a log tail
// whose records the header's LSN watermark makes idempotent to replay).
//
// Thread safety: none. Callers serialize all writer-side calls exactly as
// they already serialize catalog mutations (the session writer lock).
#ifndef XDB_WAL_MANAGER_H_
#define XDB_WAL_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/format.h"
#include "wal/log_writer.h"

namespace xdb::wal {

enum class SyncMode {
  kOff,     ///< never fsync (durability up to the OS page cache)
  kBatch,   ///< group commit: fsync at most once per window
  kAlways,  ///< fsync every commit
};

const char* SyncModeName(SyncMode m);
bool ParseSyncMode(const std::string& text, SyncMode* mode);

/// mkdir -p for the data directory (each missing path component in turn).
Status EnsureDataDir(const std::string& dir);

struct DurabilityOptions {
  std::string data_dir;  ///< required; created if absent
  SyncMode sync = SyncMode::kBatch;
  /// Auto-checkpoint once the log exceeds this many bytes (0 = manual
  /// checkpoints only).
  uint64_t checkpoint_bytes = 16ull << 20;
  /// kBatch group-commit window: a commit fsyncs only when the last fsync
  /// is at least this old, so a burst of loads shares one fsync per window.
  int64_t group_window_us = 1000;

  /// Reads XDB_DATA_DIR, XDB_WAL_SYNC (always|batch|off) and
  /// XDB_CHECKPOINT_BYTES ("64K"/"16M"/... — governor::ParseByteSize).
  /// data_dir stays empty when XDB_DATA_DIR is unset.
  static DurabilityOptions FromEnv();
};

/// Writer-side counters (cumulative since Open).
struct WalMetrics {
  uint64_t wal_bytes = 0;           ///< frame bytes appended to the log
  uint64_t fsyncs = 0;              ///< log + checkpoint fsyncs issued
  uint64_t commits = 0;             ///< batches committed
  uint64_t commit_latency_us = 0;   ///< total Commit() wall time
  uint64_t checkpoints = 0;
};

class Manager {
 public:
  /// Opens the log for appending. `next_lsn`/`next_batch_id`/`commits` come
  /// from recovery (1/1/0 for a fresh directory); the log file's current
  /// size must already be a clean frame boundary (recovery truncates torn
  /// tails before this).
  static Result<std::unique_ptr<Manager>> Open(const DurabilityOptions& options,
                                               uint64_t next_lsn,
                                               uint64_t next_batch_id,
                                               uint64_t commits);

  // -- batch lifecycle (one open batch at a time) ---------------------------

  /// Appends kBatchBegin; returns the batch id.
  Result<uint64_t> BeginBatch();
  Status LogRowBatch(const std::string& table, uint64_t first_rowid,
                     const std::vector<rel::Row>& rows);
  Status LogCreateIndex(const std::string& table, const std::string& column);
  Status LogRegisterSchema(const std::string& view,
                           const std::string& structure_blob,
                           uint64_t batch_rows,
                           const std::vector<std::string>& value_indexes);
  Status LogCreateXsltView(const std::string& view, const std::string& upstream,
                           const std::string& xml_column,
                           const std::string& stylesheet);
  Status LogDropTable(const std::string& table);
  Status LogStats(const std::string& table, const rel::TableStats& stats);

  /// Appends kCommit and applies the sync policy. After an OK return the
  /// batch is durable (to the configured degree) and the caller may publish.
  /// On failure the whole batch is scrubbed from the log (truncated back to
  /// its begin offset): the commit record may already be half-durable, and
  /// a caller rolling back in memory must not leave a batch on disk that a
  /// later crash would replay as committed.
  Status Commit();
  /// Scrubs the open batch from the log (falling back to an appended kAbort
  /// record when the truncate fails — recovery also rolls back batches
  /// whose commit is simply missing) and closes the batch.
  void Abort();
  bool in_batch() const { return in_batch_; }

  // -- checkpointing --------------------------------------------------------

  /// True once the log has outgrown options().checkpoint_bytes.
  bool ShouldCheckpoint() const;

  /// Writes `body` (already-built records; LSNs are assigned here) between
  /// a header and footer via the tmp+rename protocol, then truncates the
  /// log. The header's watermark covers every LSN assigned so far.
  Status WriteCheckpoint(std::vector<Record> body);

  const DurabilityOptions& options() const { return options_; }
  WalMetrics metrics() const { return metrics_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t commits() const { return commits_; }
  uint64_t wal_size() const { return writer_->size(); }

  static std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
  static std::string CheckpointPath(const std::string& dir) {
    return dir + "/checkpoint.xck";
  }
  static std::string CheckpointTmpPath(const std::string& dir) {
    return dir + "/checkpoint.xck.tmp";
  }

 private:
  Manager(DurabilityOptions options, std::unique_ptr<LogWriter> writer,
          uint64_t next_lsn, uint64_t next_batch_id, uint64_t commits)
      : options_(std::move(options)),
        writer_(std::move(writer)),
        next_lsn_(next_lsn),
        next_batch_id_(next_batch_id),
        commits_(commits) {}

  /// Stamps the next LSN + current batch id and appends the record.
  Status Append(Record record);
  Status SyncLog();

  DurabilityOptions options_;
  std::unique_ptr<LogWriter> writer_;
  uint64_t next_lsn_ = 1;
  uint64_t next_batch_id_ = 1;
  uint64_t commits_ = 0;
  bool in_batch_ = false;
  uint64_t batch_id_ = 0;
  uint64_t batch_start_offset_ = 0;  // log size when the open batch began
  int64_t last_sync_us_ = 0;  // kBatch: steady-clock stamp of the last fsync
  WalMetrics metrics_;
};

}  // namespace xdb::wal

#endif  // XDB_WAL_MANAGER_H_
