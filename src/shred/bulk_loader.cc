#include "shred/bulk_loader.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/faultpoints.h"
#include "xml/parser.h"

namespace xdb::shred {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status BulkLoader::CreateTables() {
  std::vector<std::string> created;
  created.reserve(mapping_->tables().size());
  Status st = Status::OK();
  for (const auto& t : mapping_->tables()) {
    st = [&]() -> Status {
      XDB_FAULT_POINT("shred.create_table");
      return catalog_->CreateTable(t->name, t->RelSchema()).status();
    }();
    if (!st.ok()) break;
    created.push_back(t->name);
  }
  // Empty initial indexes so the very first prepared transform already sees
  // the index-nested-loop access path; AppendRows maintains them
  // incrementally from then on.
  if (st.ok()) st = CreateIndexes();
  if (!st.ok()) {
    for (const std::string& name : created) {
      (void)catalog_->DropTable(name);
    }
  }
  return st;
}

Result<LoadStats> BulkLoader::LoadText(std::string_view xml_text) {
  LoadStats stats;
  stats.bytes = xml_text.size();
  int64_t t0 = NowNs();
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> doc,
                       xml::ParseDocument(xml_text));
  stats.parse_ns = NowNs() - t0;
  XDB_ASSIGN_OR_RETURN(LoadStats loaded, LoadParsed(doc->root()));
  loaded.bytes = stats.bytes;
  loaded.parse_ns = stats.parse_ns;
  return loaded;
}

Result<LoadStats> BulkLoader::LoadParsed(const xml::Node* node) {
  LoadStats stats;
  int64_t t0 = NowNs();
  XDB_ASSIGN_OR_RETURN(ShredBatch batch,
                       shredder_.Shred(node, documents_loaded_));
  stats.shred_ns = NowNs() - t0;
  stats.elements = batch.elements;
  // Snapshot per-table row counts so a mid-batch failure rolls every table
  // back to its pre-load state (a retry then starts without duplicates).
  std::vector<std::pair<rel::Table*, size_t>> marks;
  marks.reserve(mapping_->tables().size());
  for (const auto& t : mapping_->tables()) {
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(t->name));
    marks.emplace_back(table, table->row_count());
  }
  // Publish-then-notify: AppendRows fires OnRowsInserted per flushed chunk,
  // which used to reach listeners while sibling tables of the same document
  // were still mid-load. Batch every event until the load (or its rollback)
  // has fully published, then fire them in order.
  rel::Catalog::NotificationBatch batch_guard(catalog_);
  Status insert_st = InsertBatch(std::move(batch), &stats);
  if (!insert_st.ok()) {
    for (auto& [table, row_count] : marks) {
      (void)table->TruncateTo(row_count);
    }
    return insert_st;
  }
  documents_loaded_ += 1;
  stats.documents = documents_loaded_;
  // Fold the appended rows into the incremental statistics and publish the
  // snapshots before announcing the load, so plans re-prepared by the
  // invalidation below already cost against fresh numbers.
  PublishStats(marks);
  // Indexes were maintained in place by AppendRows; announce the completed
  // load so cached plans over these tables are invalidated (plain inserts
  // deliberately don't do that — see DdlListener::OnTableLoaded).
  for (const auto& t : mapping_->tables()) {
    catalog_->OnTableLoaded(t->name);
  }
  return stats;
}

void BulkLoader::PublishStats(
    const std::vector<std::pair<rel::Table*, size_t>>& loaded_marks) {
  for (const auto& [table, pre_load_rows] : loaded_marks) {
    auto it = stats_builders_.find(table->name());
    if (it == stats_builders_.end()) {
      it = stats_builders_
               .emplace(table->name(), rel::StatsBuilder(&table->schema()))
               .first;
      // A builder created mid-life (after crash recovery restored rows this
      // loader never saw) must first fold the pre-existing rows, or the
      // published NDV/min/max would describe only the newest load.
      if (pre_load_rows > 0) it->second.AddRows(*table, 0, pre_load_rows);
    }
    it->second.AddRows(*table, pre_load_rows, table->row_count());
    rel::TableStats snapshot = it->second.Snapshot();
    if (wal_ != nullptr) {
      (void)wal_->LogStats(table->name(), snapshot);
    }
    catalog_->UpdateTableStats(table->name(), std::move(snapshot));
  }
}

Status BulkLoader::SyncWithTables() {
  XDB_ASSIGN_OR_RETURN(rel::Table * root,
                       catalog_->GetTable(mapping_->root_table()->name));
  documents_loaded_ = static_cast<int64_t>(root->row_count());
  int64_t max_rowid = -1;
  int64_t max_pos = -1;
  for (const auto& t : mapping_->tables()) {
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(t->name));
    int rowid_col = t->ColumnIndex(kRowIdColumn);
    int end_col = t->ColumnIndex(kEndColumn);
    if (rowid_col < 0) continue;
    for (size_t i = 0; i < table->row_count(); ++i) {
      const rel::Row& row = table->row(static_cast<int64_t>(i));
      const rel::Datum& d = row[static_cast<size_t>(rowid_col)];
      if (d.type() == rel::DataType::kInt && d.AsInt() > max_rowid) {
        max_rowid = d.AsInt();
      }
      if (end_col >= 0) {
        const rel::Datum& e = row[static_cast<size_t>(end_col)];
        if (e.type() == rel::DataType::kInt && e.AsInt() > max_pos) {
          max_pos = e.AsInt();
        }
      }
    }
  }
  shredder_.set_next_rowid(max_rowid + 1);
  shredder_.set_next_pos(max_pos + 1);
  // The incremental accumulators may have folded rows that no longer exist
  // (a rolled-back commit) or may never have seen the recovered rows. Drop
  // them (they reseed from the tables on the next load) and republish
  // full-scan snapshots so the catalog's stats match the rows.
  stats_builders_.clear();
  for (const auto& t : mapping_->tables()) {
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(t->name));
    if (table->row_count() > 0 || catalog_->GetTableStats(t->name) != nullptr) {
      catalog_->UpdateTableStats(t->name, rel::ComputeTableStats(*table));
    }
  }
  return Status::OK();
}

Status BulkLoader::InsertBatch(ShredBatch batch, LoadStats* stats) {
  int64_t t0 = NowNs();
  size_t batch_rows = mapping_->batch_rows();
  for (size_t ti = 0; ti < batch.rows.size(); ++ti) {
    std::vector<rel::Row>& rows = batch.rows[ti];
    if (rows.empty()) continue;
    XDB_ASSIGN_OR_RETURN(rel::Table * table,
                         catalog_->GetTable(mapping_->tables()[ti]->name));
    stats->rows += rows.size();
    // Flush in mapping-sized chunks: bounds peak copy footprint and mirrors
    // how an array-insert loader would page rows to the engine.
    for (size_t begin = 0; begin < rows.size(); begin += batch_rows) {
      XDB_FAULT_POINT("shred.append_rows");
      size_t end = std::min(begin + batch_rows, rows.size());
      std::vector<rel::Row> chunk(
          std::make_move_iterator(rows.begin() + static_cast<long>(begin)),
          std::make_move_iterator(rows.begin() + static_cast<long>(end)));
      // Write-ahead: the chunk's log record (keyed by its position, the
      // replay idempotence anchor) must be on disk-bound media before the
      // in-memory append — a crash after the append but before the log
      // would lose committed-looking rows.
      if (wal_ != nullptr) {
        XDB_RETURN_NOT_OK(
            wal_->LogRowBatch(table->name(), table->row_count(), chunk));
      }
      XDB_RETURN_NOT_OK(table->AppendRows(std::move(chunk)));
    }
  }
  stats->insert_ns += NowNs() - t0;
  return Status::OK();
}

Status BulkLoader::CreateIndexes() {
  for (const auto& t : mapping_->tables()) {
    if (t->is_root) continue;
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(t->name));
    if (table->HasIndex(std::string(kParentRowIdColumn))) continue;
    XDB_FAULT_POINT("shred.index_build");
    XDB_RETURN_NOT_OK(
        table->CreateIndex(std::string(kParentRowIdColumn)));
  }
  // Every shred table (root included) carries a B+tree on `start`: the
  // structural-join operators answer descendant/ancestor axes with range
  // scans over it, and key order doubles as document order.
  for (const auto& t : mapping_->tables()) {
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(t->name));
    if (table->HasIndex(std::string(kStartColumn))) continue;
    XDB_FAULT_POINT("shred.index_build");
    XDB_RETURN_NOT_OK(table->CreateIndex(std::string(kStartColumn)));
  }
  for (const auto& [table_name, column] : mapping_->value_indexes()) {
    XDB_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(table_name));
    if (table->HasIndex(column)) continue;
    XDB_FAULT_POINT("shred.index_build");
    XDB_RETURN_NOT_OK(table->CreateIndex(column));
  }
  return Status::OK();
}

}  // namespace xdb::shred
