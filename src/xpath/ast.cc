#include "xpath/ast.h"

#include "common/strings.h"

namespace xdb::xpath {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
  }
  return "?";
}

bool IsReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

std::string NodeTest::ToString() const {
  switch (kind) {
    case Kind::kName:
      return prefix.empty() ? local : prefix + ":" + local;
    case Kind::kAnyName:
      return prefix.empty() ? "*" : prefix + ":*";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kProcessingInstruction:
      return pi_target.empty() ? "processing-instruction()"
                               : "processing-instruction('" + pi_target + "')";
    case Kind::kAnyNode:
      return "node()";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kPlus:
      return "+";
    case BinaryOp::kMinus:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
    case BinaryOp::kUnion:
      return "|";
  }
  return "?";
}

std::string LiteralExpr::ToString() const {
  // Prefer double quotes; fall back to single quotes when the value contains
  // a double quote (XPath 1.0 has no escaping inside literals).
  if (value.find('"') == std::string::npos) return "\"" + value + "\"";
  return "'" + value + "'";
}

std::string NumberExpr::ToString() const { return FormatXPathNumber(value); }

std::string BinaryExpr::ToString() const {
  return lhs->ToString() + " " + BinaryOpName(op) + " " + rhs->ToString();
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString();
  }
  out += ")";
  return out;
}

ExprPtr FunctionCallExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->Clone());
  return std::make_unique<FunctionCallExpr>(name, std::move(cloned));
}

std::string Step::ToString() const {
  std::string out;
  // Use abbreviated syntax where it exists.
  if (axis == Axis::kChild) {
    out = test.ToString();
  } else if (axis == Axis::kAttribute) {
    out = "@" + test.ToString();
  } else if (axis == Axis::kSelf && test.kind == NodeTest::Kind::kAnyNode) {
    out = ".";
  } else if (axis == Axis::kParent && test.kind == NodeTest::Kind::kAnyNode) {
    out = "..";
  } else {
    out = std::string(AxisName(axis)) + "::" + test.ToString();
  }
  for (const auto& p : predicates) {
    out += "[" + p->ToString() + "]";
  }
  return out;
}

Step Step::CloneStep() const {
  Step s;
  s.axis = axis;
  s.test = test;
  for (const auto& p : predicates) s.predicates.push_back(p->Clone());
  return s;
}

std::string PathExpr::ToString() const {
  std::string out;
  std::string sep;  // separator to emit before the next rendered step
  if (start != nullptr) {
    bool parenthesize = start->kind() == ExprKind::kBinary;
    if (parenthesize) out += "(";
    out += start->ToString();
    if (parenthesize) out += ")";
    for (const auto& p : start_predicates) out += "[" + p->ToString() + "]";
    sep = "/";
  } else if (absolute) {
    if (steps.empty()) return "/";
    sep = "/";
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    bool is_marker = s.axis == Axis::kDescendantOrSelf &&
                     s.test.kind == NodeTest::Kind::kAnyNode &&
                     s.predicates.empty();
    if (is_marker && i + 1 < steps.size() && !sep.empty()) {
      sep = "//";  // abbreviate ".../descendant-or-self::node()/..." as "//"
      continue;
    }
    out += sep + s.ToString();
    sep = "/";
  }
  return out;
}

ExprPtr PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->absolute = absolute;
  if (start) p->start = start->Clone();
  for (const auto& sp : start_predicates) p->start_predicates.push_back(sp->Clone());
  for (const auto& s : steps) p->steps.push_back(s.CloneStep());
  return p;
}

}  // namespace xdb::xpath
