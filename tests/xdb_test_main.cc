// Custom gtest main: installs a listener that, whenever a test fails, prints
// the one-line command reproducing it under the seed the process actually
// ran with. Every randomized suite derives its seeds from difftest::TestSeed
// (and thus from XDB_SEED), so replaying the printed line replays the exact
// inputs of the failing run.
#include <cstdio>

#include <gtest/gtest.h>

#include "difftest/seed.h"

namespace {

class SeedReproListener : public testing::EmptyTestEventListener {
  void OnTestEnd(const testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    std::fprintf(stderr, "repro: XDB_SEED=%llu ctest --test-dir build -R '%s.%s'\n",
                 static_cast<unsigned long long>(xdb::difftest::BaseSeed()),
                 info.test_suite_name(), info.name());
  }
};

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  testing::UnitTest::GetInstance()->listeners().Append(new SeedReproListener);
  return RUN_ALL_TESTS();
}
