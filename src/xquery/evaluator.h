// Dynamic evaluation of the XQuery subset over the xml DOM.
//
// Item sequences follow the XQuery data model (nodes + atomic values);
// embedded XPath leaves are delegated to the xpath::Evaluator with variable
// bindings bridged into its environment. Constructed nodes are owned by the
// result document passed to / created by the evaluation entry points.
#ifndef XDB_XQUERY_EVALUATOR_H_
#define XDB_XQUERY_EVALUATOR_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/governor.h"
#include "common/status.h"
#include "core/task_graph.h"
#include "xml/dom.h"
#include "xpath/evaluator.h"
#include "xquery/ast.h"

namespace xdb::xquery {

/// One XQuery item.
using Item = std::variant<xml::Node*, std::string, double, bool>;
/// An ordered item sequence.
using Sequence = std::vector<Item>;

/// Renders an item for diagnostics/tests: nodes serialize, atomics print.
std::string ItemToString(const Item& item);
/// String value of an item (node string-value / lexical form).
std::string ItemStringValue(const Item& item);

/// Converts a sequence to an xpath::Value for variable bridging. All-node
/// sequences become node-sets; single atomics map directly; a multi-atomic
/// sequence is materialized as text nodes in `arena`.
xpath::Value SequenceToXPathValue(const Sequence& seq, xml::Document* arena);

/// Effective boolean value (XQuery §2.4.3 subset).
Result<bool> EffectiveBooleanValue(const Sequence& seq);

/// \brief Evaluates parsed queries.
class QueryEvaluator {
 public:
  QueryEvaluator();

  /// Evaluates `query` with `context_item` as the initial context item
  /// (the value PASSED into XMLQuery(...) in the paper's examples).
  /// Returns the result sequence; constructed nodes live in `*result_doc`.
  /// When `budget` is set the engine ticks per evaluated expression and
  /// embedded XPath evaluations inherit the scope.
  /// When `parallel` is set (and enabled), large FLWOR return loops fork
  /// per-chunk tasks onto the shared pool (skipped for queries declaring
  /// user functions); the result sequence is identical to serial order.
  Result<Sequence> Evaluate(const Query& query, xml::Node* context_item,
                            xml::Document* result_doc,
                            governor::BudgetScope* budget = nullptr,
                            const core::ParallelPolicy* parallel = nullptr);

  /// Convenience: evaluates and materializes the sequence as a document
  /// (nodes copied in order; adjacent atomics joined with spaces) —
  /// "RETURNING CONTENT" semantics.
  Result<std::unique_ptr<xml::Document>> EvaluateToDocument(
      const Query& query, xml::Node* context_item,
      governor::BudgetScope* budget = nullptr,
      const core::ParallelPolicy* parallel = nullptr);

  /// Access to the underlying XPath evaluator (to register extra functions).
  xpath::Evaluator* xpath_evaluator() { return &xpath_evaluator_; }

 private:
  friend class QEvalEngine;
  xpath::Evaluator xpath_evaluator_;
};

}  // namespace xdb::xquery

#endif  // XDB_XQUERY_EVALUATOR_H_
