file(REMOVE_RECURSE
  "CMakeFiles/bench_inline_stats.dir/bench_inline_stats.cc.o"
  "CMakeFiles/bench_inline_stats.dir/bench_inline_stats.cc.o.d"
  "bench_inline_stats"
  "bench_inline_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
