#include "rel/datum.h"

#include <cmath>
#include <cstdlib>

#include "common/strings.h"
#include "xml/serializer.h"

namespace xdb::rel {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kXml:
      return "XMLTYPE";
  }
  return "?";
}

double Datum::ToDouble() const {
  switch (type()) {
    case DataType::kNull:
      return std::nan("");
    case DataType::kInt:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kString: {
      char* end = nullptr;
      const std::string& s = AsString();
      double d = std::strtod(s.c_str(), &end);
      if (end == s.c_str()) return std::nan("");
      return d;
    }
    case DataType::kXml:
      return std::nan("");
  }
  return std::nan("");
}

std::string Datum::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kDouble:
      return FormatXPathNumber(AsDouble());
    case DataType::kString:
      return AsString();
    case DataType::kXml:
      return AsXml() != nullptr ? xml::Serialize(AsXml()) : "";
  }
  return "";
}

namespace {

// True when the entire (non-empty) string is one number. Partial parses
// ("9abc") do NOT qualify: the same predicate must hold on both sides of any
// comparison or the order stops being transitive.
bool ParsesAsNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double d = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || std::isnan(d)) return false;
  *out = d;
  return true;
}

}  // namespace

int Datum::Compare(const Datum& other) const {
  bool lnull = is_null(), rnull = other.is_null();
  if (lnull || rnull) return lnull == rnull ? 0 : (lnull ? -1 : 1);

  // A datum is a "numeric key" when it is an int/double or a string that is
  // entirely one number. Classifying each side independently with the same
  // predicate keeps the order a genuine total order: numbers (of any
  // physical type) sort first by value, everything else by text. This is
  // what makes numeric index probes against string-typed shredded columns
  // land correctly.
  auto numeric_key = [](const Datum& d, double* out) {
    switch (d.type()) {
      case DataType::kInt:
        *out = static_cast<double>(d.AsInt());
        return true;
      case DataType::kDouble:
        *out = d.AsDouble();
        return true;
      case DataType::kString:
        return ParsesAsNumber(d.AsString(), out);
      default:
        return false;
    }
  };
  double a = 0, b = 0;
  bool anum = numeric_key(*this, &a), bnum = numeric_key(other, &b);
  if (anum && bnum) {
    // Avoid double rounding for large ints: compare ints directly.
    if (type() == DataType::kInt && other.type() == DataType::kInt) {
      int64_t ai = AsInt(), bi = other.AsInt();
      return ai < bi ? -1 : (ai > bi ? 1 : 0);
    }
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (anum != bnum) return anum ? -1 : 1;
  return ToString().compare(other.ToString());
}

}  // namespace xdb::rel
