#include "rel/table.h"

namespace xdb::rel {

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  dir_.store(std::make_shared<const ChunkDir>(), std::memory_order_release);
}

std::shared_ptr<const ChunkDir> Table::LoadDir() const {
  return dir_.load(std::memory_order_acquire);
}

void Table::PublishDir(std::shared_ptr<const ChunkDir> dir) {
  dir_.store(std::move(dir), std::memory_order_release);
}

const Row& Table::row(int64_t id) const {
  auto dir = LoadDir();
  // The chunk outlives the directory snapshot: chunks are only dropped by
  // TruncateTo, which the single-writer contract keeps off concurrent read
  // paths (snapshot readers hold their own TableVersion).
  return (*(*dir)[static_cast<size_t>(id) >> kChunkShift])
      [static_cast<size_t>(id) & (kChunkSize - 1)];
}

BTreeIndex* Table::MutableIndex(IndexSlot* slot) {
  if (slot->shared) {
    // A captured version still references this tree; give the writer a
    // private copy so the version stays immutable. The old tree is kept
    // alive by the version's IndexMap.
    slot->tree = std::shared_ptr<BTreeIndex>(slot->tree->Clone());
    slot->shared = false;
  }
  return slot->tree.get();
}

void Table::AppendRowLocked(Row row) {
  size_t count = row_count_.load(std::memory_order_relaxed);
  int64_t id = static_cast<int64_t>(count);
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (auto& [col, slot] : indexes_) {
      int ci = schema_.ColumnIndex(col);
      MutableIndex(&slot)->Insert(row[static_cast<size_t>(ci)], id);
    }
  }
  auto dir = LoadDir();
  if (count == dir->size() * kChunkSize) {
    // Current chunks are full: publish a grown directory. Existing chunk
    // pointers are shared, so published rows never move.
    auto grown = std::make_shared<ChunkDir>(*dir);
    auto chunk = std::make_shared<Chunk>();
    chunk->reserve(kChunkSize);  // push_back below never reallocates
    grown->push_back(std::move(chunk));
    PublishDir(grown);
    dir = std::move(grown);
  }
  // Safe concurrent with readers: the slot is beyond every published
  // watermark, and the chunk's capacity is pre-reserved.
  dir->back()->push_back(std::move(row));
  row_count_.store(count + 1, std::memory_order_release);
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.column_count()) {
    return Status::InvalidArgument("table " + name_ + ": row arity " +
                                   std::to_string(row.size()) + " != schema " +
                                   std::to_string(schema_.column_count()));
  }
  AppendRowLocked(std::move(row));
  if (ddl_listener_ != nullptr) ddl_listener_->OnRowsInserted(name_);
  return Status::OK();
}

Status Table::AppendRows(std::vector<Row> rows) {
  for (const Row& row : rows) {
    if (row.size() != schema_.column_count()) {
      return Status::InvalidArgument("table " + name_ + ": batch row arity " +
                                     std::to_string(row.size()) + " != schema " +
                                     std::to_string(schema_.column_count()));
    }
  }
  for (Row& row : rows) AppendRowLocked(std::move(row));
  if (!rows.empty() && ddl_listener_ != nullptr) {
    ddl_listener_->OnRowsInserted(name_);
  }
  return Status::OK();
}

Status Table::TruncateTo(size_t n) {
  if (n >= row_count_.load(std::memory_order_relaxed)) return Status::OK();
  auto dir = LoadDir();
  size_t keep_chunks = (n + kChunkSize - 1) >> kChunkShift;
  auto trimmed = std::make_shared<ChunkDir>(dir->begin(),
                                            dir->begin() + static_cast<long>(keep_chunks));
  if (!trimmed->empty()) {
    Chunk& last = *trimmed->back();
    size_t keep_rows = n - (keep_chunks - 1) * kChunkSize;
    // Destroys only rows above every published watermark (versions were
    // captured before the rows being rolled back were appended); data()
    // never moves, so readers below the watermark are unaffected.
    last.resize(keep_rows);
  }
  // Publish the count first so no live reader computes a row id past the
  // shrunk storage, then the directory.
  row_count_.store(n, std::memory_order_release);
  PublishDir(std::move(trimmed));
  // Rebuild indexes from scratch: rollback is an exceptional path, so the
  // O(rows) rebuild is preferred over per-index deletion support.
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (auto& [col, slot] : indexes_) {
      int ci = schema_.ColumnIndex(col);
      auto rebuilt = std::make_shared<BTreeIndex>();
      for (size_t id = 0; id < n; ++id) {
        rebuilt->Insert(row(static_cast<int64_t>(id))[static_cast<size_t>(ci)],
                        static_cast<int64_t>(id));
      }
      slot.tree = std::move(rebuilt);
      slot.shared = false;
    }
  }
  if (ddl_listener_ != nullptr) ddl_listener_->OnTableLoaded(name_);
  return Status::OK();
}

Status Table::CreateIndex(const std::string& column) {
  int ci = schema_.ColumnIndex(column);
  if (ci < 0) {
    return Status::NotFound("table " + name_ + ": no column '" + column + "'");
  }
  auto index = std::make_shared<BTreeIndex>();
  size_t count = row_count_.load(std::memory_order_relaxed);
  for (size_t id = 0; id < count; ++id) {
    index->Insert(row(static_cast<int64_t>(id))[static_cast<size_t>(ci)],
                  static_cast<int64_t>(id));
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    indexes_[column] = IndexSlot{std::move(index), false};
  }
  if (ddl_listener_ != nullptr) ddl_listener_->OnIndexCreated(name_, column);
  return Status::OK();
}

const BTreeIndex* Table::GetIndex(const std::string& column) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(column);
  return it != indexes_.end() ? it->second.tree.get() : nullptr;
}

std::vector<std::string> Table::IndexedColumns() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [column, slot] : indexes_) out.push_back(column);
  return out;
}

TableVersion Table::CaptureVersion() {
  TableVersion v;
  v.row_count = row_count_.load(std::memory_order_acquire);
  v.chunks = LoadDir();
  auto map = std::make_shared<IndexMap>();
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (auto& [col, slot] : indexes_) {
      slot.shared = true;  // next mutation clones before touching the tree
      (*map)[col] = slot.tree;
    }
  }
  v.indexes = std::move(map);
  return v;
}

}  // namespace xdb::rel
