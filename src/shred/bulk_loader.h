// Bulk loader: ties a ShredMapping to a live catalog. Creates the mapped
// base tables plus the B+tree indexes the publishing joins and nominated
// value predicates need (once, at registration — AppendRows maintains them
// incrementally per load, so loading N documents stays O(N) total index
// work). Each completed load fires the catalog's OnTableLoaded fan-out so
// any prepared transform compiled over the now-stale data is invalidated —
// the shredded analogue of the plan-cache contract hand-written views
// observe for CREATE INDEX.
#ifndef XDB_SHRED_BULK_LOADER_H_
#define XDB_SHRED_BULK_LOADER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "rel/catalog.h"
#include "rel/stats.h"
#include "shred/mapping.h"
#include "shred/shredder.h"
#include "wal/manager.h"

namespace xdb::shred {

/// Counters for one Load call (cumulative fields say so).
struct LoadStats {
  int64_t documents = 0;  ///< cumulative documents loaded via this loader
  size_t elements = 0;    ///< element occurrences in THIS document
  size_t rows = 0;        ///< rows inserted by THIS load
  size_t bytes = 0;       ///< source text size (0 for pre-parsed loads)
  int64_t parse_ns = 0;
  int64_t shred_ns = 0;
  /// Batched append including incremental B+tree index maintenance (indexes
  /// are built once at CreateTables and updated in place per row).
  int64_t insert_ns = 0;
  // -- durability counters (zero for in-memory databases) -------------------
  size_t wal_bytes = 0;          ///< WAL frame bytes THIS load appended
  size_t wal_fsyncs = 0;         ///< fsyncs issued committing THIS load
  int64_t commit_latency_us = 0; ///< wall time of the WAL commit
};

/// \brief Streams documents into the mapping's base tables.
class BulkLoader {
 public:
  /// Neither pointer is owned; both must outlive the loader.
  BulkLoader(rel::Catalog* catalog, const ShredMapping* mapping)
      : catalog_(catalog), mapping_(mapping), shredder_(mapping) {}

  /// Creates every mapped table plus the indexes (parent_rowid on non-root
  /// tables, nominated value columns). Fails if any table name is taken;
  /// tables created by the failed call are dropped again so a corrected
  /// retry does not trip over its own leftovers.
  Status CreateTables();

  /// Parses and loads one document.
  Result<LoadStats> LoadText(std::string_view xml_text);

  /// Loads an already-parsed document (or root element). The DOM is only
  /// read; values are copied into the tables.
  Result<LoadStats> LoadParsed(const xml::Node* node);

  int64_t documents_loaded() const { return documents_loaded_; }

  /// Attaches the write-ahead log: every subsequent load logs its row
  /// batches and stats into one WAL batch the caller commits. Null detaches
  /// (recovery replays through a detached loader so nothing re-logs).
  void set_wal(wal::Manager* wal) { wal_ = wal; }

  /// Re-derives loader state from the tables after crash recovery or a
  /// rolled-back commit: documents_loaded_ (the root table's row count —
  /// one root row per document), the shredder's rowid cursor (max stored
  /// rowid + 1 across all tables), and the statistics accumulators
  /// (dropped and republished from a full scan), so post-recovery loads
  /// continue exactly where an uninterrupted loader would be.
  Status SyncWithTables();

 private:
  Status InsertBatch(ShredBatch batch, LoadStats* stats);
  Status CreateIndexes();
  /// Folds the rows a completed load appended (per-table [mark, row_count))
  /// into the incremental statistics accumulators and publishes fresh
  /// TableStats snapshots to the catalog — the cost model's input. O(rows
  /// appended), never a re-scan; a failed (rolled back) load publishes
  /// nothing, so the catalog keeps the last good snapshot.
  void PublishStats(
      const std::vector<std::pair<rel::Table*, size_t>>& loaded_marks);

  rel::Catalog* catalog_;
  const ShredMapping* mapping_;
  Shredder shredder_;
  wal::Manager* wal_ = nullptr;  ///< not owned; null = in-memory database
  int64_t documents_loaded_ = 0;
  /// Incremental per-table statistics accumulators, keyed by table name.
  std::map<std::string, rel::StatsBuilder> stats_builders_;
};

}  // namespace xdb::shred

#endif  // XDB_SHRED_BULK_LOADER_H_
