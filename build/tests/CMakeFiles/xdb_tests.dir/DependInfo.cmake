
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/xdb_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rel_test.cc" "tests/CMakeFiles/xdb_tests.dir/rel_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/rel_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/xdb_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/static_type_test.cc" "tests/CMakeFiles/xdb_tests.dir/static_type_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/static_type_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/xdb_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xdb_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xmldb_test.cc" "tests/CMakeFiles/xdb_tests.dir/xmldb_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xmldb_test.cc.o.d"
  "/root/repo/tests/xpath_test.cc" "tests/CMakeFiles/xdb_tests.dir/xpath_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xpath_test.cc.o.d"
  "/root/repo/tests/xquery_rewriter_test.cc" "tests/CMakeFiles/xdb_tests.dir/xquery_rewriter_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xquery_rewriter_test.cc.o.d"
  "/root/repo/tests/xquery_test.cc" "tests/CMakeFiles/xdb_tests.dir/xquery_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xquery_test.cc.o.d"
  "/root/repo/tests/xslt_interpreter_test.cc" "tests/CMakeFiles/xdb_tests.dir/xslt_interpreter_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xslt_interpreter_test.cc.o.d"
  "/root/repo/tests/xslt_rewriter_test.cc" "tests/CMakeFiles/xdb_tests.dir/xslt_rewriter_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xslt_rewriter_test.cc.o.d"
  "/root/repo/tests/xslt_vm_test.cc" "tests/CMakeFiles/xdb_tests.dir/xslt_vm_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xslt_vm_test.cc.o.d"
  "/root/repo/tests/xsltmark_test.cc" "tests/CMakeFiles/xdb_tests.dir/xsltmark_test.cc.o" "gcc" "tests/CMakeFiles/xdb_tests.dir/xsltmark_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
