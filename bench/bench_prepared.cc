// Prepared transforms: repeat-call throughput.
//
// A publishing server calls TransformView with the *same* stylesheet over
// and over — the paper's "XSLT as declarative query" framing only pays off
// if the compile/rewrite pipeline is amortized the way a DBMS amortizes
// parsing/planning through a shared cursor cache. Three measurements:
//
//   1. Cold vs warm on the Fig. 2 workload (dbonerow over the "db" family):
//      cold re-runs parse + bytecode compile + XSLT->XQuery->SQL rewrite per
//      call; warm fetches the PreparedTransform from the LRU plan cache.
//   2. Prepare-only cost of a warm hit (the lookup itself).
//   3. 1 vs N threads for the per-row execute loop of each plan, on a
//      1000-row base table ("deptfarm" family: one <dept> document per row).
//      On a single-core host the threaded points measure pure executor
//      overhead; on a multi-core host they show the row fan-out.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/row_executor.h"

namespace xdb::bench {
namespace {

const xsltmark::BenchCase& DbOneRow() {
  const auto* c = xsltmark::FindCase("dbonerow");
  if (c == nullptr) abort();
  return *c;
}

// The paper's Table 5 stylesheet, used over the deptfarm family (same
// publishing structure as Example 1's dept_emp view).
constexpr const char* kDeptStylesheet = R"xsl(<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal > 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>)xsl";

// ---- cold vs warm (Fig. 2 workload) ----------------------------------------

void BM_TransformView_Cold(benchmark::State& state) {
  XmlDb* db = GetDb("db", static_cast<int>(state.range(0)));
  ExecOptions options = RewriteArm();
  options.use_plan_cache = false;  // every call re-parses, re-compiles, re-plans
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView("db_view", DbOneRow().stylesheet, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  ReportExecStats(state, stats);
}

void BM_TransformView_Warm(benchmark::State& state) {
  XmlDb* db = GetDb("db", static_cast<int>(state.range(0)));
  ExecOptions options = RewriteArm();
  // Populate the cache once so every timed iteration is a warm hit.
  auto warmup = db->TransformView("db_view", DbOneRow().stylesheet, options);
  if (!warmup.ok()) state.SkipWithError(warmup.status().ToString().c_str());
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView("db_view", DbOneRow().stylesheet, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  ReportExecStats(state, stats);
}

// Same warm path under an active (but generous) resource budget: the
// difference against BM_TransformView_Warm is the governor's amortized
// overhead (acceptance target: <= 2%).
void BM_TransformView_WarmGoverned(benchmark::State& state) {
  XmlDb* db = GetDb("db", static_cast<int>(state.range(0)));
  ExecOptions options = RewriteArm();
  options.timeout_ms = 60 * 1000;
  options.mem_budget_bytes = int64_t{1} << 30;
  auto warmup = db->TransformView("db_view", DbOneRow().stylesheet, options);
  if (!warmup.ok()) state.SkipWithError(warmup.status().ToString().c_str());
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView("db_view", DbOneRow().stylesheet, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  ReportExecStats(state, stats);
}

// Prepare-only: what does a warm cache lookup cost by itself?
void BM_Prepare_WarmHit(benchmark::State& state) {
  XmlDb* db = GetDb("db", static_cast<int>(state.range(0)));
  auto warmup = db->TransformView("db_view", DbOneRow().stylesheet);
  if (!warmup.ok()) state.SkipWithError(warmup.status().ToString().c_str());
  ExecStats stats;
  for (auto _ : state) {
    auto p = db->PrepareTransform("db_view", DbOneRow().stylesheet, {}, &stats);
    if (!p.ok()) state.SkipWithError(p.status().ToString().c_str());
    benchmark::DoNotOptimize(p);
  }
  ReportExecStats(state, stats);
}

BENCHMARK(BM_TransformView_Cold)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TransformView_Warm)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TransformView_WarmGoverned)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Prepare_WarmHit)->Arg(2000)->Unit(benchmark::kMicrosecond);

// ---- 1 vs N threads over a many-row base table -----------------------------

void RunThreadSweep(benchmark::State& state, ExecOptions options) {
  XmlDb* db = GetDb("deptfarm", static_cast<int>(state.range(0)));
  options.threads = static_cast<int>(state.range(1));
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView("deptfarm_view", kDeptStylesheet, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  ReportExecStats(state, stats);
}

void BM_Execute_PlanA_Threads(benchmark::State& state) {
  RunThreadSweep(state, RewriteArm());
}

void BM_Execute_PlanB_Threads(benchmark::State& state) {
  ExecOptions o = RewriteArm();
  o.enable_sql_rewrite = false;
  RunThreadSweep(state, o);
}

void BM_Execute_PlanC_Threads(benchmark::State& state) {
  RunThreadSweep(state, NoRewriteArm());
}

// 1000-row base table; 1 / 2 / 4 / hardware threads.
static void ThreadArgs(benchmark::internal::Benchmark* b) {
  int hw = core::RowExecutor::DefaultThreads();
  b->Args({1000, 1})->Args({1000, 2})->Args({1000, 4});
  if (hw > 4) b->Args({1000, hw});
}

BENCHMARK(BM_Execute_PlanA_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Execute_PlanB_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Execute_PlanC_Threads)->Apply(ThreadArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xdb::bench

XDB_BENCH_MAIN();
