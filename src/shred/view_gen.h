// Publishing-view generation: the inverse of the shredder. From a
// ShredMapping it emits the SQL/XML PublishSpec (Table 3 style: XMLElement +
// correlated XMLAgg over the lineage join, ORDER BY ord) that reconstructs
// the canonical document from the shred tables. The generated spec is
// registered like any hand-written publishing view, so the whole
// XSLT -> XQuery -> SQL rewrite / optimizer / plan-cache stack applies to
// shredded storage with no special cases.
#ifndef XDB_SHRED_VIEW_GEN_H_
#define XDB_SHRED_VIEW_GEN_H_

#include <memory>

#include "rel/publish.h"
#include "shred/mapping.h"

namespace xdb::shred {

/// Builds the publishing spec for the mapping's root element. The spec's
/// base table is `mapping.root_table()->name`; each table-worthy child
/// becomes a kNested XMLAgg (outer rowid = inner parent_rowid, ORDER BY ord),
/// inlined leaves become guarded scalar XMLElements, attributes map onto
/// their a_* columns.
Result<std::unique_ptr<rel::PublishSpec>> GeneratePublishSpec(
    const ShredMapping& mapping);

}  // namespace xdb::shred

#endif  // XDB_SHRED_VIEW_GEN_H_
