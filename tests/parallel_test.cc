// Tests for the intra-query parallelism layer: the TaskScheduler (nested
// regions, min-chunk sizing, cancellation latency), the parallel XSLT /
// XQuery / relational execution paths (byte-identical to serial at every
// thread count), the per-operator ExecStats counters, and the determinism
// sweep that runs the N-way differential oracle at 1 vs 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/governor.h"
#include "core/row_executor.h"
#include "core/task_graph.h"
#include "core/xmldb.h"
#include "difftest/generator.h"
#include "difftest/oracle.h"
#include "difftest/seed.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xslt/interpreter.h"
#include "xslt/stylesheet.h"
#include "xslt/vm.h"
#include "xsltmark/suite.h"

namespace xdb {
namespace {

using core::TaskOptions;
using core::TaskScheduler;

// ---------------------------------------------------------------------------
// TaskScheduler: nesting, chunking, cancellation
// ---------------------------------------------------------------------------

TEST(TaskSchedulerTest, NestedParallelForDegradesToSerial) {
  TaskScheduler& sched = TaskScheduler::Global();
  std::atomic<int> outer{0};
  std::atomic<int> inner_total{0};
  TaskOptions outer_opts;
  outer_opts.threads = 4;
  Status s = sched.ParallelFor(
      8,
      [&](size_t) -> Status {
        outer.fetch_add(1);
        EXPECT_TRUE(TaskScheduler::InParallelRegion());
        // Re-entering the scheduler from a task body must not deadlock on
        // the submission lock; it degrades to serial in-thread execution.
        TaskOptions inner_opts;
        inner_opts.threads = 4;
        int inner_used = 0;
        inner_opts.threads_used = &inner_used;
        Status is = sched.ParallelFor(
            100, [&](size_t) -> Status {
              inner_total.fetch_add(1);
              return Status::OK();
            },
            inner_opts);
        EXPECT_EQ(inner_used, 1);
        return is;
      },
      outer_opts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner_total.load(), 800);
  EXPECT_FALSE(TaskScheduler::InParallelRegion());
}

TEST(RowExecutorTest, NestedCallDegradesToSerialInsteadOfDeadlocking) {
  // Regression: the original RowExecutor deadlocked if a row body started
  // another row loop; the wrapper now inherits the scheduler's fallback.
  core::RowExecutor& pool = core::RowExecutor::Global();
  std::atomic<int> total{0};
  int outer_used = 0;
  Status s = pool.ParallelFor(
      4,
      [&](size_t) -> Status {
        int used = 0;
        Status is = pool.ParallelFor(
            50, [&](size_t) -> Status {
              total.fetch_add(1);
              return Status::OK();
            },
            /*threads=*/4, &used);
        EXPECT_EQ(used, 1);
        return is;
      },
      /*threads=*/4, &outer_used);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(total.load(), 200);
}

TEST(TaskSchedulerTest, MinChunkKeepsSmallLoopsSerial) {
  TaskScheduler& sched = TaskScheduler::Global();
  // 100 indices at a 64-index minimum chunk leave room for one participant:
  // the loop must not wake the pool at all.
  int used = 0;
  TaskOptions opts;
  opts.threads = 8;
  opts.min_chunk = 64;
  opts.threads_used = &used;
  Status s =
      sched.ParallelFor(100, [](size_t) { return Status::OK(); }, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(used, 1);

  // 1024 indices admit 8 participants with >= 64 indices each.
  std::atomic<size_t> count{0};
  s = sched.ParallelFor(
      1024,
      [&](size_t) -> Status {
        count.fetch_add(1);
        return Status::OK();
      },
      opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count.load(), 1024u);
  EXPECT_GT(used, 1);
}

TEST(TaskSchedulerTest, MinChunkCapsParticipants) {
  // 130 indices / 64 min chunk -> at most 2 participants.
  int used = 0;
  TaskOptions opts;
  opts.threads = 8;
  opts.min_chunk = 64;
  opts.threads_used = &used;
  Status s = TaskScheduler::Global().ParallelFor(
      130, [](size_t) { return Status::OK(); }, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_LE(used, 2);
}

TEST(TaskSchedulerTest, CancelPropagatesWithinOneChunk) {
  governor::CancelToken token;
  std::atomic<size_t> executed{0};
  std::atomic<size_t> after_cancel{0};
  TaskOptions opts;
  opts.threads = 4;
  opts.cancel = &token;
  const size_t n = 100000;
  Status s = TaskScheduler::Global().ParallelFor(
      n,
      [&](size_t i) -> Status {
        if (token.cancelled()) after_cancel.fetch_add(1);
        executed.fetch_add(1);
        if (i == 500) token.Cancel();
        return Status::OK();
      },
      opts);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // The loop stopped well short of completion...
  EXPECT_LT(executed.load(), n);
  // ...and the token is polled before every index, so each worker runs at
  // most the one body it had in flight when the token fired — far inside
  // the one-chunk propagation bound the scheduler guarantees.
  EXPECT_LE(after_cancel.load(), 4u);
}

// ---------------------------------------------------------------------------
// Engine-level parallel execution: byte-identical to serial
// ---------------------------------------------------------------------------

// A stylesheet exercising the forking instructions: sorted apply-templates,
// a positional for-each, nested templates (the inner apply-templates runs
// inside the parallel region and must degrade to serial), conditionals and
// attribute construction.
constexpr const char* kFanoutStylesheet = R"(<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <out>
      <xsl:apply-templates select="root/group">
        <xsl:sort select="@id" data-type="number" order="descending"/>
      </xsl:apply-templates>
      <xsl:for-each select="root/group/item">
        <flat p="{position()}"><xsl:value-of select="@k"/></flat>
      </xsl:for-each>
    </out>
  </xsl:template>
  <xsl:template match="group">
    <g id="{@id}" pos="{position()}" of="{last()}">
      <xsl:apply-templates select="item"/>
    </g>
  </xsl:template>
  <xsl:template match="item">
    <it pos="{position()}">
      <xsl:value-of select="."/>
      <xsl:if test="@k mod 7 = 0"><seven/></xsl:if>
    </it>
  </xsl:template>
</xsl:stylesheet>)";

std::string FanoutDocument(int groups, int items_per_group) {
  std::string doc = "<root>";
  int k = 0;
  for (int g = 0; g < groups; ++g) {
    doc += "<group id=\"" + std::to_string(g) + "\">";
    for (int i = 0; i < items_per_group; ++i, ++k) {
      doc += "<item k=\"" + std::to_string(k) + "\">v" + std::to_string(k) +
             "</item>";
    }
    doc += "</group>";
  }
  doc += "</root>";
  return doc;
}

core::ParallelPolicy FourThreadPolicy() {
  core::ParallelPolicy policy;
  policy.threads = 4;
  return policy;
}

TEST(ParallelXsltTest, InterpreterOutputIsByteIdenticalToSerial) {
  auto ss = xslt::Stylesheet::Parse(kFanoutStylesheet);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  auto doc = xml::ParseDocument(FanoutDocument(24, 10));
  ASSERT_TRUE(doc.ok());
  xslt::Interpreter interp(**ss);

  auto serial = interp.Transform((*doc)->root());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  core::ParallelPolicy policy = FourThreadPolicy();
  auto parallel = interp.Transform((*doc)->root(), {}, nullptr, &policy);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(xml::Serialize((*serial)->root()),
            xml::Serialize((*parallel)->root()));
}

TEST(ParallelXsltTest, VmOutputIsByteIdenticalToSerial) {
  auto ss = xslt::Stylesheet::Parse(kFanoutStylesheet);
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto doc = xml::ParseDocument(FanoutDocument(24, 10));
  ASSERT_TRUE(doc.ok());
  xslt::Vm vm(**compiled);

  auto serial = vm.Transform((*doc)->root());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  core::ParallelPolicy policy = FourThreadPolicy();
  auto parallel = vm.Transform((*doc)->root(), {}, nullptr, &policy);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(xml::Serialize((*serial)->root()),
            xml::Serialize((*parallel)->root()));
}

TEST(ParallelXsltTest, GovernedParallelRunMatchesSerialAndBalancesBudget) {
  auto ss = xslt::Stylesheet::Parse(kFanoutStylesheet);
  ASSERT_TRUE(ss.ok());
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());
  auto doc = xml::ParseDocument(FanoutDocument(16, 8));
  ASSERT_TRUE(doc.ok());
  xslt::Vm vm(**compiled);

  std::string serial_out;
  {
    governor::ExecBudget budget;
    budget.set_mem_limit_bytes(64 << 20);
    governor::BudgetScope scope(&budget);
    auto out = vm.Transform((*doc)->root(), {}, &scope);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    serial_out = xml::Serialize((*out)->root());
  }
  {
    governor::ExecBudget budget;
    budget.set_mem_limit_bytes(64 << 20);
    governor::BudgetScope scope(&budget);
    core::ParallelPolicy policy = FourThreadPolicy();
    std::string parallel_out;
    {
      auto out = vm.Transform((*doc)->root(), {}, &scope, &policy);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      parallel_out = xml::Serialize((*out)->root());
      EXPECT_GT(budget.ticks(), 0u);
    }
    EXPECT_EQ(serial_out, parallel_out);
  }
}

TEST(ParallelXQueryTest, FlworReturnIsByteIdenticalToSerial) {
  auto doc = xml::ParseDocument(FanoutDocument(20, 8));
  ASSERT_TRUE(doc.ok());
  auto query = xquery::ParseQuery(
      "for $i in ./root/group/item order by $i/@k descending return "
      "<v k=\"{fn:string($i/@k)}\">{fn:string($i)}</v>");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  xquery::QueryEvaluator qe;

  auto serial = qe.EvaluateToDocument(*query, (*doc)->root());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  core::ParallelPolicy policy = FourThreadPolicy();
  auto parallel =
      qe.EvaluateToDocument(*query, (*doc)->root(), nullptr, &policy);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(xml::Serialize((*serial)->root()),
            xml::Serialize((*parallel)->root()));
}

// ---------------------------------------------------------------------------
// XmlDb integration: per-operator stats, knobs, EXPLAIN
// ---------------------------------------------------------------------------

TEST(ParallelStatsTest, FunctionalPathReportsOperatorParallelism) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 128).ok());
  ExecOptions eo;
  eo.enable_rewrite = false;  // force plan C: the VM runs with the policy
  eo.use_plan_cache = false;
  eo.threads = 4;
  ExecStats stats;
  auto out = db.TransformView(
      xsltmark::FamilyViewName("db"),
      R"(<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <out><xsl:for-each select="table/row"><p><xsl:value-of select="lastname"/></p></xsl:for-each></out>
  </xsl:template>
</xsl:stylesheet>)",
      eo, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_FALSE(stats.op_parallel.empty());
  bool saw_for_each = false;
  std::string labels;
  for (const core::OpParallelStats& op : stats.op_parallel) {
    labels += op.op + " ";
    if (op.op == "xslt:for-each") {
      saw_for_each = true;
      EXPECT_GT(op.threads_used, 1);
      EXPECT_GT(op.parallel_tasks, 1u);
      EXPECT_GE(op.partitions, 1u);
    }
  }
  EXPECT_TRUE(saw_for_each) << "recorded ops: " << labels;
  EXPECT_GT(stats.parallel_tasks, 0u);
  EXPECT_GT(stats.partitions, 0u);
  EXPECT_GT(stats.threads_used, 1);
}

TEST(ParallelStatsTest, ParallelOffAndMinChunkKnobsSuppressForking) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 64).ok());
  const std::string view = xsltmark::FamilyViewName("db");
  const char* ss =
      R"(<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <out><xsl:for-each select="table/row"><p><xsl:value-of select="id"/></p></xsl:for-each></out>
  </xsl:template>
</xsl:stylesheet>)";

  ExecOptions base;
  base.enable_rewrite = false;
  base.use_plan_cache = false;
  base.threads = 4;

  ExecStats on_stats;
  auto on = db.TransformView(view, ss, base, &on_stats);
  ASSERT_TRUE(on.ok());

  ExecOptions off = base;
  off.parallel = false;
  ExecStats off_stats;
  auto off_out = db.TransformView(view, ss, off, &off_stats);
  ASSERT_TRUE(off_out.ok());
  EXPECT_TRUE(off_stats.op_parallel.empty());
  EXPECT_EQ(*on, *off_out);  // knob changes scheduling, never output

  ExecOptions coarse = base;
  coarse.min_parallel_chunk = 1 << 20;  // chunks larger than any node-set
  ExecStats coarse_stats;
  auto coarse_out = db.TransformView(view, ss, coarse, &coarse_stats);
  ASSERT_TRUE(coarse_out.ok());
  EXPECT_TRUE(coarse_stats.op_parallel.empty());
  EXPECT_EQ(*on, *coarse_out);
}

TEST(ParallelStatsTest, SqlPathPartitionsScanAndAggregate) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 256).ok());
  const xsltmark::BenchCase* c = xsltmark::FindCase("dbtail");
  if (c == nullptr) GTEST_SKIP() << "dbtail case not in suite";
  ExecOptions eo;
  eo.use_plan_cache = false;
  eo.threads = 4;
  ExecStats stats;
  auto out = db.TransformView(xsltmark::FamilyViewName("db"), c->stylesheet,
                              eo, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  if (stats.path != ExecutionPath::kSqlRewritten) {
    GTEST_SKIP() << "case no longer reaches plan A";
  }
  // Serial execution of the same plan must agree byte-for-byte.
  ExecOptions serial = eo;
  serial.threads = 1;
  ExecStats serial_stats;
  auto serial_out = db.TransformView(xsltmark::FamilyViewName("db"),
                                     c->stylesheet, serial, &serial_stats);
  ASSERT_TRUE(serial_out.ok());
  EXPECT_EQ(*out, *serial_out);
  EXPECT_TRUE(serial_stats.op_parallel.empty());
}

TEST(ParallelExplainTest, ExplainReportsEligibleOperators) {
  XmlDb db;
  ASSERT_TRUE(xsltmark::SetupFamily(&db, "db", 32).ok());
  const xsltmark::BenchCase* c = xsltmark::FindCase("dbonerow");
  ASSERT_NE(c, nullptr);
  auto prepared =
      db.PrepareTransform(xsltmark::FamilyViewName("db"), c->stylesheet);
  ASSERT_TRUE(prepared.ok());
  std::string explain = ExplainPrepared(**prepared);
  EXPECT_NE(explain.find("parallel: eligible operators"), std::string::npos)
      << explain;
}

// ---------------------------------------------------------------------------
// Determinism sweeps: N threads == 1 thread, output and status codes
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, OracleSweepMatchesSerialAtEightThreads) {
  using difftest::GeneratedCase;
  using difftest::OracleOptions;
  using difftest::OracleReport;
  const int n = difftest::SweepSeedCount();
  for (int i = 0; i < n; ++i) {
    GeneratedCase c =
        difftest::GenerateCase(difftest::BaseSeed() + static_cast<uint64_t>(i));
    OracleOptions serial;
    serial.threads = 1;
    OracleOptions parallel;
    parallel.threads = 8;
    OracleReport a = difftest::RunCase(c, serial);
    OracleReport b = difftest::RunCase(c, parallel);
    ASSERT_NE(a.outcome, OracleReport::Outcome::kDiverged)
        << "serial: " << a.detail << "\n" << a.repro;
    ASSERT_NE(b.outcome, OracleReport::Outcome::kDiverged)
        << "parallel: " << b.detail << "\n" << b.repro;
    ASSERT_EQ(a.outcome, b.outcome) << "seed " << c.seed;
    for (int e = 0; e < difftest::kNumEngines; ++e) {
      ASSERT_EQ(a.engines[e].status.code(), b.engines[e].status.code())
          << difftest::EngineName(e) << " status diverged at seed " << c.seed
          << ": serial=" << a.engines[e].status.ToString()
          << " parallel=" << b.engines[e].status.ToString();
      ASSERT_EQ(a.engines[e].canonical, b.engines[e].canonical)
          << difftest::EngineName(e) << " output diverged at seed " << c.seed;
    }
  }
}

TEST(ParallelDeterminismTest, XsltMarkByteIdenticalAcrossThreadCounts) {
  std::map<std::string, std::unique_ptr<XmlDb>> dbs;
  for (const xsltmark::BenchCase& c : xsltmark::AllCases()) {
    auto it = dbs.find(c.family);
    if (it == dbs.end()) {
      auto db = std::make_unique<XmlDb>();
      ASSERT_TRUE(xsltmark::SetupFamily(db.get(), c.family, 24).ok())
          << c.family;
      it = dbs.emplace(c.family, std::move(db)).first;
    }
    XmlDb& db = *it->second;
    const std::string view = xsltmark::FamilyViewName(c.family);

    ExecOptions serial;
    serial.threads = 1;
    ExecStats serial_stats;
    auto a = db.TransformView(view, c.stylesheet, serial, &serial_stats);

    ExecOptions parallel;
    parallel.threads = 8;
    ExecStats parallel_stats;
    auto b = db.TransformView(view, c.stylesheet, parallel, &parallel_stats);

    ASSERT_EQ(a.ok(), b.ok())
        << c.name << ": serial=" << a.status().ToString()
        << " parallel=" << b.status().ToString();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << c.name;
      continue;
    }
    EXPECT_EQ(*a, *b) << c.name << " output diverged at 8 threads";
  }
}

}  // namespace
}  // namespace xdb
