// Rule-based optimizer over the logical algebra (rel/logical.h): runs a
// fixed catalog of named rules, records a per-rule trace (node counts before
// and after), then lowers the optimized logical plan to the physical
// PlanNode/RelExpr layer.
//
// Rule catalog (applied in this order; each individually toggleable):
//   predicate-pushdown  splits a Filter's conjunction into a chain of
//                       single-predicate Filters (correlation predicate
//                       innermost) and counts the pushed value predicates;
//   join-lowering       unnests a correlated aggregate apply whose plan is
//                       [XMLAgg|ScalarAgg] -> Project? -> Filter* -> Scan
//                       with exactly one immediate-parent correlation
//                       predicate into a LogicalJoinNode below the apply's
//                       host node (join-graph isolation: the right side
//                       stays a flat table + residuals), replacing the
//                       apply with a reference to the appended column;
//   index-range-scan    turns the innermost `column CMP constant` filter
//                       over an indexed column into an index-range
//                       annotation on the scan;
//   constant-fold       folds constant BinaryRelExpr/CaseRelExpr subtrees
//                       (including short-circuit AND/OR and CASE branch
//                       pruning);
//   column-pruning      drops unused projection columns under an unordered
//                       XMLAgg and removes constant-true filters;
//   join-access-path    picks hash vs index-NL per join from the catalog
//                       statistics (row count, NDV, min/max) and records
//                       the cardinality/cost estimates on the join;
//   structural-join     prices each structural (interval containment) join
//                       leaf: B+tree range scan over the `start` index vs a
//                       full interval scan, from load-time statistics;
//   join-order          reorders chains of sibling group joins cheapest
//                       innermost (costs are order-invariant for group
//                       joins, so this canonicalizes and front-loads cheap
//                       work), remapping the consumer's column references;
//   subplan-dedup       aliases structurally identical correlated subplans
//                       (repeated inlined templates) to one shared plan.
//
// Lowering contract: Scan becomes SeqScanNode (or IndexRangeScanNode when
// annotated, with rowid_order propagated from the nearest enclosing
// unordered XMLAgg so document order survives the access path);
// Filter/Project/XmlAgg/ScalarAgg map 1:1 onto their physical nodes;
// Join becomes GroupJoinNode; LogicalApplyExpr becomes ScalarSubqueryExpr,
// with shared logical subplans lowered once and aliased. Every lowered node
// carries the cost model's est_rows/cost annotation.
#ifndef XDB_REL_OPTIMIZER_H_
#define XDB_REL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rel/logical.h"

namespace xdb::rel {

class Catalog;

/// Per-rule toggles. Defaults enable everything; OptimizerOptionsFromEnv
/// honors XDB_DISABLE_OPT_RULES (comma-separated rule names, or "all").
struct OptimizerOptions {
  bool enable_predicate_pushdown = true;
  bool enable_index_selection = true;
  bool enable_constant_folding = true;
  bool enable_column_pruning = true;
  bool enable_subplan_dedup = true;
  bool enable_join_lowering = true;
  bool enable_join_access_path = true;
  bool enable_join_order = true;
  /// Structural-join strategy pricing. When disabled every structural join
  /// stays on the always-correct full-scan strategy.
  bool enable_structural_join = true;
  /// Overrides the join-access-path rule's costed choice: 0 = cost model,
  /// 1 = hash, 2 = index-NL (falls back to hash when the right key has no
  /// index). Benchmarks use this to measure both strategies over the same
  /// data; part of the plan-cache fingerprint like the rule toggles.
  int force_join_strategy = 0;
};

/// Rule names as spelled in traces and in XDB_DISABLE_OPT_RULES.
inline constexpr const char* kRulePredicatePushdown = "predicate-pushdown";
inline constexpr const char* kRuleJoinLowering = "join-lowering";
inline constexpr const char* kRuleIndexRangeScan = "index-range-scan";
inline constexpr const char* kRuleConstantFold = "constant-fold";
inline constexpr const char* kRuleColumnPruning = "column-pruning";
inline constexpr const char* kRuleJoinAccessPath = "join-access-path";
inline constexpr const char* kRuleJoinOrder = "join-order";
inline constexpr const char* kRuleSubplanDedup = "subplan-dedup";
inline constexpr const char* kRuleStructuralJoin = "structural-join";

/// Default options with XDB_DISABLE_OPT_RULES applied.
OptimizerOptions OptimizerOptionsFromEnv();

/// One trace entry per enabled rule: total logical-plan + expression node
/// count before and after the rule ran (equal counts = the rule declined).
struct RuleTrace {
  std::string rule;
  int nodes_before = 0;
  int nodes_after = 0;
};

/// One group join in the final plan: the access-path choice and the
/// estimates behind it (surfaced through ExecStats/EXPLAIN next to the
/// runtime counters, so estimated vs. actual rows is one diff away).
struct JoinChoice {
  /// "hash" / "index-nl" for group joins, "interval-range" /
  /// "interval-scan" for structural joins.
  std::string strategy;
  double est_build_rows = 0;  ///< right-table rows scanned by a hash build
  double est_probe_rows = 0;  ///< estimated left (probe-side) rows
  double est_match_rows = 0;  ///< estimated matches per probe
};

/// The optimizer's output: the lowered physical expression plus the
/// artifacts surfaced through ExecStats/EXPLAIN.
struct OptimizedQuery {
  RelExprPtr expr;           ///< physical (ScalarSubqueryExpr over PlanNodes)
  std::string logical_plan;  ///< post-rule logical rendering (two-level EXPLAIN)
  std::vector<RuleTrace> trace;
  bool used_index = false;      ///< index-range-scan rule fired somewhere
  int predicates_pushed = 0;    ///< value predicates split out by pushdown
  int joins_lowered = 0;        ///< applies unnested into group joins
  std::vector<JoinChoice> joins;  ///< one entry per distinct join in the plan
};

class Optimizer {
 public:
  /// `catalog` (optional, not owned) supplies the table statistics behind
  /// the join cost model; without it the model falls back to live row
  /// counts and default selectivities.
  explicit Optimizer(const OptimizerOptions& options = {},
                     const Catalog* catalog = nullptr)
      : options_(options), catalog_(catalog) {}

  /// Runs the rule catalog over the logical expression tree and lowers it.
  /// The root may contain any number of LogicalApplyExpr subplans (including
  /// none — a pure scalar query lowers to itself).
  Result<OptimizedQuery> Run(RelExprPtr logical_root) const;

 private:
  OptimizerOptions options_;
  const Catalog* catalog_;
};

}  // namespace xdb::rel

#endif  // XDB_REL_OPTIMIZER_H_
