// Append-only frame writer over one fd. Owns the torn-write discipline:
// a failed or crashed append may leave a partial frame at the tail, which
// the *reader* treats as the torn tail — the writer itself self-heals by
// truncating back to the last good frame boundary before the next append,
// so one injected fault never wedges the log.
//
// Fault sites (see common/faultpoints): `wal.append` fires mid-frame (half
// the frame is already on disk — a genuinely torn write, not a clean
// no-op), `wal.fsync` before the fsync, `wal.truncate` before a truncate.
#ifndef XDB_WAL_LOG_WRITER_H_
#define XDB_WAL_LOG_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xdb::wal {

class LogWriter {
 public:
  /// Opens (creating if needed) `path` for appending at `offset` — the
  /// recovered good-prefix length, or the current file size for a fresh
  /// log. Bytes past `offset` (a torn tail) are truncated away first.
  static Result<std::unique_ptr<LogWriter>> Open(const std::string& path,
                                                 uint64_t offset);

  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one frame around `payload`. On failure the file is restored
  /// to the previous frame boundary (best effort) and the error returned.
  Status AppendFrame(std::string_view payload);

  /// fsync. The durability point of every commit and checkpoint.
  Status Sync();

  /// Truncates the log to zero length and syncs — the post-checkpoint
  /// reset. The write offset restarts at 0.
  Status Reset();

  /// Rewinds to an earlier frame boundary (no fault site, no fsync): the
  /// commit-failure scrub that erases a half-durable batch so the log
  /// agrees with the caller's in-memory rollback.
  Status TruncateTo(uint64_t offset);

  /// Bytes of frames written and surviving (the checkpoint trigger input).
  uint64_t size() const { return offset_; }

 private:
  LogWriter(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  int fd_ = -1;
  std::string path_;
  uint64_t offset_ = 0;
};

/// fsyncs the directory containing `path` so a rename/create in it is
/// durable (POSIX requires syncing the directory entry separately).
Status SyncParentDir(const std::string& path);

}  // namespace xdb::wal

#endif  // XDB_WAL_LOG_WRITER_H_
