// Epoch-versioned snapshots over the catalog's tables. A Snapshot freezes
// one TableVersion per table at publish time; executions carrying a
// snapshot (ExecCtx::snapshot) read rows and indexes exclusively through
// it, so a bulk load committing concurrently is invisible until the next
// publish. Snapshots are immutable and reference-counted: retired versions
// are reclaimed automatically when the last session holding the snapshot
// drains (the shared_ptr chain keeps chunk directories and index trees
// alive exactly as long as someone can still read them).
#ifndef XDB_REL_SNAPSHOT_H_
#define XDB_REL_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "rel/table.h"

namespace xdb::rel {

/// \brief An immutable, epoch-stamped view over every table of one catalog.
class Snapshot {
 public:
  Snapshot(uint64_t epoch, std::map<const Table*, TableVersion> versions)
      : epoch_(epoch), versions_(std::move(versions)) {}

  uint64_t epoch() const { return epoch_; }

  /// The frozen version of `table`, or nullptr when the table was created
  /// after this snapshot was published (readers then see it empty — the
  /// deterministic choice; falling back to live data would race the load
  /// that is filling it).
  const TableVersion* Find(const Table* table) const {
    auto it = versions_.find(table);
    return it != versions_.end() ? &it->second : nullptr;
  }

  size_t table_count() const { return versions_.size(); }

  /// Every frozen version (the checkpoint writer iterates these to
  /// serialize one consistent cut of the whole catalog).
  const std::map<const Table*, TableVersion>& versions() const {
    return versions_;
  }

 private:
  uint64_t epoch_;
  std::map<const Table*, TableVersion> versions_;
};

/// \brief Resolved read handle over one table: pinned version or live state.
///
/// Cursors resolve a TableRead once at Open (or probe-build) time and then
/// index rows with plain loads — no per-row atomics, no locks. Live mode
/// (null snapshot) loads the chunk directory and watermark once, which is
/// also what makes concurrent appends safe to scan: the count is fixed for
/// the cursor's lifetime and rows below it are immutable.
class TableRead {
 public:
  TableRead() = default;
  TableRead(const Table* table, const Snapshot* snapshot) : table_(table) {
    if (snapshot != nullptr) {
      const TableVersion* v = snapshot->Find(table);
      if (v != nullptr) version_ = *v;
      // Table missing from the snapshot: keep the empty version (count 0,
      // no chunks, no indexes) — see Snapshot::Find.
      pinned_ = true;
    } else if (table != nullptr) {
      version_.row_count = table->row_count();
      // Writer publishes the directory before the count, so a directory
      // loaded after the count covers every row below it.
      version_.chunks = table->LoadDirForRead();
    }
  }

  size_t row_count() const { return version_.row_count; }
  const Row& row(int64_t id) const { return version_.row(id); }
  /// Pinned-version index, or the table's live index in live mode. A
  /// pinned read never consults the live table — a table absent from the
  /// snapshot has no rows and no indexes.
  const BTreeIndex* index(const std::string& column) const {
    if (pinned_) {
      return version_.indexes != nullptr ? version_.index(column) : nullptr;
    }
    return table_ != nullptr ? table_->GetIndex(column) : nullptr;
  }
  const Table* table() const { return table_; }

 private:
  const Table* table_ = nullptr;
  TableVersion version_;
  bool pinned_ = false;
};

}  // namespace xdb::rel

#endif  // XDB_REL_SNAPSHOT_H_
