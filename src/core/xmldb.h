// XmlDb: the public facade reproducing the paper's system surface —
// XMLType publishing views over relational tables, XSLT views, and the
// XMLTransform() / XMLQuery() query entry points with the full rewrite
// pipeline behind them:
//
//   XSLT ──rewrite(§3-4)──► XQuery ──rewrite([3,4])──► SQL/XML over tables
//
// Each stage can be switched off (the "no rewrite" baselines of §5) or can
// fall back gracefully when a construct is outside the translatable subset:
//   plan A: full SQL/XML execution (index-driven, no XML materialization)
//   plan B: XQuery execution over the materialized view value
//   plan C: functional XSLT (XSLTVM over the DOM) — the paper's baseline
//
// Query execution is split DBMS-style into Prepare (parse + compile +
// rewrite + path choice, amortized through an LRU plan cache keyed on view,
// query text and options) and Execute (the per-row loop, parallelized by a
// persistent worker pool). TransformView/QueryView are thin
// prepare-then-execute wrappers kept for the one-shot API.
#ifndef XDB_CORE_XMLDB_H_
#define XDB_CORE_XMLDB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_stats.h"
#include "core/plan_cache.h"
#include "rel/catalog.h"
#include "rewrite/xquery_rewriter.h"
#include "rewrite/xslt_rewriter.h"
#include "shred/bulk_loader.h"
#include "wal/manager.h"
#include "wal/recovery.h"

namespace xdb {

/// \brief One database instance.
class XmlDb {
 public:
  XmlDb();
  ~XmlDb();

  XmlDb(const XmlDb&) = delete;
  XmlDb& operator=(const XmlDb&) = delete;

  rel::Catalog* catalog() { return &catalog_; }
  core::PlanCache* plan_cache() { return &plan_cache_; }

  // ---- DDL convenience ------------------------------------------------------
  Result<rel::Table*> CreateTable(const std::string& name, rel::Schema schema) {
    return catalog_.CreateTable(name, std::move(schema));
  }
  Status Insert(const std::string& table, rel::Row row);
  Status CreateIndex(const std::string& table, const std::string& column);
  Result<rel::XmlView*> CreatePublishingView(
      const std::string& name, const std::string& base_table,
      std::unique_ptr<rel::PublishSpec> spec,
      const std::string& xml_column = "xml_content") {
    return catalog_.CreatePublishingView(name, base_table, std::move(spec),
                                         xml_column);
  }
  Result<rel::XmlView*> CreateXsltView(const std::string& name,
                                       const std::string& upstream_view,
                                       std::string_view stylesheet_text,
                                       const std::string& xml_column = "xslt_rslt");
  /// Removes `table` from the catalog (and, when durable, logs the drop so
  /// it survives restart).
  Status DropTable(const std::string& name);

  // ---- durability (src/wal) -------------------------------------------------

  /// Attaches a write-ahead log + checkpoint directory to this database.
  /// Must be called on a freshly constructed (still empty) instance: any
  /// state found in `options.data_dir` is recovered into the catalog first
  /// (checkpoint + WAL tail replay), then the log is opened for appending
  /// and every subsequent RegisterShreddedSchema / LoadDocument /
  /// CreateXsltView / CreateIndex / DropTable commits through it *before*
  /// returning — which is what lets the session layer order durability
  /// before epoch publication. Returns kDataLoss on unrecoverable
  /// corruption (torn checkpoint, record gap).
  Status OpenDurable(const wal::DurabilityOptions& options);

  bool durable() const { return wal_ != nullptr; }

  /// Serializes the whole catalog (schemas, tables, rows, index manifests,
  /// stats, XSLT views) to `<data_dir>/checkpoint.xck` via the tmp+rename
  /// protocol and truncates the log. Also runs automatically once the log
  /// outgrows DurabilityOptions::checkpoint_bytes. Limitation: publishing
  /// views registered via CreatePublishingView (hand-built PublishSpec) are
  /// not serialized — shredded views are re-derived from their logged
  /// structure instead; XSLT views over unserialized upstreams are skipped.
  Status Checkpoint();

  /// What recovery found when OpenDurable attached (zero-value report for a
  /// fresh directory).
  const wal::RecoveryReport& last_recovery() const { return last_recovery_; }
  /// Outcome of the most recent auto-checkpoint (OK until one runs).
  const Status& last_auto_checkpoint() const { return auto_checkpoint_; }
  /// Committed batches over this database's lifetime: batches restored by
  /// recovery plus batches committed since. The session layer seeds its
  /// epoch counter from this so epochs stay monotone across restarts.
  uint64_t wal_commits() const { return wal_ != nullptr ? wal_->commits() : 0; }
  /// Writer-side counters (zeros when not durable).
  wal::WalMetrics wal_metrics() const {
    return wal_ != nullptr ? wal_->metrics() : wal::WalMetrics{};
  }

  // ---- shredded storage (src/shred) -----------------------------------------

  /// Derives the relational shred mapping for `structure`, creates its base
  /// tables (named `<view_name>_<elem>`) with lineage + value indexes, and
  /// registers the publishing view `view_name` that reconstructs the
  /// canonical document — after which LoadDocument fills the tables and
  /// every existing entry point (XMLTransform/XMLQuery, prepared plans,
  /// EXPLAIN) works on the shredded data unchanged.
  Status RegisterShreddedSchema(const std::string& view_name,
                                const schema::StructuralInfo& structure,
                                const shred::ShredOptions& options = {});

  /// Same, but parses the structure from XSD text first.
  Status RegisterShreddedSchemaFromXsd(const std::string& view_name,
                                       std::string_view xsd_text,
                                       const shred::ShredOptions& options = {});

  /// Parses `xml_text` and bulk-loads it into `view_name`'s shred tables.
  /// Each load rebuilds the mapping's indexes, which invalidates any cached
  /// plan over the view's tables.
  Result<shred::LoadStats> LoadDocument(const std::string& view_name,
                                        std::string_view xml_text);

  /// Loads an already-parsed document (or its root element).
  Result<shred::LoadStats> LoadParsedDocument(const std::string& view_name,
                                              const xml::Node* node);

  /// The mapping backing a shredded view, or nullptr when `view_name` was
  /// not registered via RegisterShreddedSchema.
  const shred::ShredMapping* shredded_mapping(
      const std::string& view_name) const;

  // ---- prepared execution ----------------------------------------------------

  /// Prepares (or fetches from the plan cache) the plan for
  /// SELECT XMLTransform(view.xml_column, stylesheet) FROM view.
  /// Fills the prepare-side stats: path, reports, cache_hit, prepare_ns.
  Result<std::shared_ptr<const core::PreparedTransform>> PrepareTransform(
      const std::string& view, std::string_view stylesheet_text,
      const ExecOptions& options = {}, ExecStats* stats = nullptr);

  /// Prepares (or fetches) the plan for
  /// SELECT XMLQuery(query PASSING view.xml_column) FROM view.
  Result<std::shared_ptr<const core::PreparedTransform>> PrepareQuery(
      const std::string& view, std::string_view xquery_text,
      const ExecOptions& options = {}, ExecStats* stats = nullptr);

  /// Runs a prepared plan over the base table's *current* rows: one result
  /// string per base row, in row order. `options.threads` selects the
  /// row-executor parallelism; output is byte-identical at any thread count.
  /// Fills the execute-side stats (and re-fills the plan-template fields, so
  /// Execute with a fresh ExecStats is self-describing).
  Result<std::vector<std::string>> Execute(
      const core::PreparedTransform& prepared, const ExecOptions& options = {},
      ExecStats* stats = nullptr);

  // ---- one-shot query entry points (prepare + execute) -----------------------

  /// SELECT XMLTransform(view.xml_column, stylesheet) FROM view:
  /// one serialized XML result per base-table row.
  Result<std::vector<std::string>> TransformView(const std::string& view,
                                                 std::string_view stylesheet_text,
                                                 const ExecOptions& options = {},
                                                 ExecStats* stats = nullptr);

  /// SELECT XMLQuery(query PASSING view.xml_column RETURNING CONTENT)
  /// FROM view. Works on publishing views and on XSLT views (where the
  /// combined optimization of §2.2 composes the rewritten queries).
  Result<std::vector<std::string>> QueryView(const std::string& view,
                                             std::string_view xquery_text,
                                             const ExecOptions& options = {},
                                             ExecStats* stats = nullptr);

  /// Materializes the view's XML values (functional evaluation; used by the
  /// baselines and by tests).
  Result<std::vector<std::string>> MaterializeView(const std::string& view);

 private:
  // Builds a PreparedTransform from scratch (the cold path of Prepare*).
  Result<std::shared_ptr<const core::PreparedTransform>> BuildTransformPlan(
      const std::string& view, std::string_view stylesheet_text,
      const ExecOptions& options);
  Result<std::shared_ptr<const core::PreparedTransform>> BuildQueryPlan(
      const std::string& view, std::string_view xquery_text,
      const ExecOptions& options);

  // Evaluates one base row of a prepared plan (the shared per-row body of
  // plans A, B and C; also the seam the row executor parallelizes over).
  Result<std::string> EvalPreparedRow(const core::PreparedTransform& prepared,
                                      int64_t row_id, rel::ExecCtx* ctx);

  // Functional view value for one base row (follows XSLT-view chains).
  Result<rel::Datum> ViewValueForRow(const rel::XmlView* view, int64_t row_id,
                                     rel::ExecCtx* ctx);
  // Resolves a view chain down to its publishing view, collecting the XSLT
  // stylesheets applied on top (outermost last).
  Result<const rel::XmlView*> ResolveChain(
      const rel::XmlView* view,
      std::vector<const rel::XmlView*>* xslt_views) const;

  // One registered shredded schema: the derived mapping plus its loader.
  // Heap-allocated so the loader's back-pointer into the mapping survives
  // map rehashing.
  struct ShreddedSchema {
    ShreddedSchema(shred::ShredMapping m, rel::Catalog* cat)
        : mapping(std::move(m)), loader(cat, &mapping) {}
    shred::ShredMapping mapping;
    shred::BulkLoader loader;
  };
  Result<ShreddedSchema*> GetShredded(const std::string& view_name);

  // RecoveryHooks bridge (defined in xmldb.cc; nested so it reaches the
  // catalog and shredded_ directly).
  class RecoveryBridge;

  // The durable load path: wraps one loader call in a WAL batch, rolls the
  // tables (and the loader's cursors) back when the commit fails, fills the
  // LoadStats durability counters, and auto-checkpoints afterwards.
  Result<shred::LoadStats> DurableLoad(
      ShreddedSchema* entry,
      const std::function<Result<shred::LoadStats>()>& load);
  // Builds the checkpoint body: one consistent cut over every table.
  Result<std::vector<wal::Record>> BuildCheckpointBody();

  rel::Catalog catalog_;
  core::PlanCache plan_cache_;
  std::map<std::string, std::unique_ptr<ShreddedSchema>> shredded_;
  std::unique_ptr<wal::Manager> wal_;  ///< null = in-memory database
  wal::RecoveryReport last_recovery_;
  Status auto_checkpoint_ = Status::OK();
};

/// Two-level EXPLAIN of a prepared plan: execution path, fallback reason (if
/// any), the logical plan the rewriters produced, the optimizer's per-rule
/// trace (`rule <name>: N -> M nodes`), and the lowered physical plan.
std::string ExplainPrepared(const core::PreparedTransform& prepared);

}  // namespace xdb

#endif  // XDB_CORE_XMLDB_H_
