#include "rewrite/xslt_rewriter.h"

#include <gtest/gtest.h>

#include "schema/xsd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xslt/vm.h"

namespace xdb::rewrite {
namespace {

std::string Wrap(std::string_view body) {
  return std::string(
             "<xsl:stylesheet version=\"1.0\" "
             "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">") +
         std::string(body) + "</xsl:stylesheet>";
}

schema::StructuralInfo DeptStructure() {
  schema::StructureBuilder b;
  auto* dept = b.Element("dept");
  b.AddText(b.AddChild(dept, "dname"));
  b.AddText(b.AddChild(dept, "loc"));
  auto* employees = b.AddChild(dept, "employees");
  auto* emp = b.AddChild(employees, "emp", 0, -1);
  b.AddText(b.AddChild(emp, "empno"));
  b.AddText(b.AddChild(emp, "ename"));
  b.AddText(b.AddChild(emp, "sal"));
  return b.Build(dept);
}

constexpr std::string_view kDeptDoc =
    "<dept>"
    "<dname>ACCOUNTING</dname>"
    "<loc>NEW YORK</loc>"
    "<employees>"
    "<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>"
    "<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>"
    "<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>"
    "</employees>"
    "</dept>";

struct RewriteRun {
  std::string functional;
  std::string rewritten;
  RewriteReport report;
  std::string query_text;
  Status status = Status::OK();
};

RewriteRun RunBoth(std::string_view stylesheet_body,
                   const schema::StructuralInfo* structure,
                   std::string_view doc_text,
                   const XsltRewriteOptions& options = {}) {
  RewriteRun out;
  auto ss = xslt::Stylesheet::Parse(Wrap(stylesheet_body));
  EXPECT_TRUE(ss.ok()) << ss.status().ToString();
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto doc = xml::ParseDocument(doc_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();

  // Functional evaluation (VM over DOM).
  xslt::Vm vm(**compiled);
  auto fout = vm.Transform((*doc)->root());
  EXPECT_TRUE(fout.ok()) << fout.status().ToString();
  if (fout.ok()) out.functional = xml::Serialize((*fout)->root());

  // Rewrite + XQuery evaluation.
  auto query = RewriteXsltToXQuery(**compiled, structure, options, &out.report);
  out.status = query.status();
  if (!query.ok()) return out;
  out.query_text = query->ToString();
  xquery::QueryEvaluator qe;
  auto qout = qe.EvaluateToDocument(*query, (*doc)->root());
  EXPECT_TRUE(qout.ok()) << qout.status().ToString() << "\nquery:\n"
                         << out.query_text;
  if (qout.ok()) out.rewritten = xml::Serialize((*qout)->root());
  return out;
}

void ExpectEquivalent(const RewriteRun& run) {
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.rewritten, run.functional) << "query was:\n" << run.query_text;
}

// ---------------------------------------------------------------------------
// Inline mode: the paper's Example 1 / Table 8
// ---------------------------------------------------------------------------

constexpr std::string_view kPaperBody =
    "<xsl:template match=\"dept\">"
    "<H1>HIGHLY PAID DEPT EMPLOYEES</H1>"
    "<xsl:apply-templates/>"
    "</xsl:template>"
    "<xsl:template match=\"dname\">"
    "<H2>Department name: <xsl:value-of select=\".\"/></H2>"
    "</xsl:template>"
    "<xsl:template match=\"loc\">"
    "<H2>Department location: <xsl:value-of select=\".\"/></H2>"
    "</xsl:template>"
    "<xsl:template match=\"employees\">"
    "<H2>Employees Table</H2>"
    "<table border=\"2\">"
    "<td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td>"
    "<xsl:apply-templates select=\"emp[sal &gt; 2000]\"/>"
    "</table>"
    "</xsl:template>"
    "<xsl:template match=\"emp\">"
    "<tr>"
    "<td><xsl:value-of select=\"empno\"/></td>"
    "<td><xsl:value-of select=\"ename\"/></td>"
    "<td><xsl:value-of select=\"sal\"/></td>"
    "</tr>"
    "</xsl:template>"
    "<xsl:template match=\"text()\">"
    "<xsl:value-of select=\".\"/>"
    "</xsl:template>";

TEST(XsltRewriteInlineTest, PaperExample1MatchesFunctional) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_EQ(run.report.mode, RewriteReport::Mode::kInline);
  EXPECT_FALSE(run.report.builtin_only);
  // All six templates participated.
  EXPECT_EQ(run.report.templates_total, 6);
}

TEST(XsltRewriteInlineTest, PaperExample1QueryShape) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc);
  ASSERT_TRUE(run.status.ok());
  // Table 8 shape: no function declarations, a let for dept, a filtered for
  // over emp, fn:concat for text+value-of, and the predicate retained.
  EXPECT_EQ(run.query_text.find("declare function"), std::string::npos);
  EXPECT_NE(run.query_text.find("$var000/dept"), std::string::npos);
  EXPECT_NE(run.query_text.find("emp[sal > 2000]"), std::string::npos);
  EXPECT_NE(run.query_text.find("fn:concat(\"Department name: \""),
            std::string::npos)
      << run.query_text;
  EXPECT_NE(run.query_text.find("<H1>"), std::string::npos);
}

TEST(XsltRewriteInlineTest, EmptyishInputDocs) {
  schema::StructuralInfo info = DeptStructure();
  // No emps at all; still structurally conformant (emp is 0..unbounded).
  ExpectEquivalent(RunBoth(kPaperBody, &info,
                           "<dept><dname>X</dname><loc>Y</loc>"
                           "<employees/></dept>"));
}

TEST(XsltRewriteInlineTest, BuiltinOnlyCompaction) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth("", &info, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_TRUE(run.report.builtin_only);
  EXPECT_NE(run.query_text.find("fn:string-join"), std::string::npos);
  EXPECT_NE(run.query_text.find("//text()"), std::string::npos);
}

TEST(XsltRewriteInlineTest, BuiltinFallbackForUnmatchedElements) {
  // Only emp has a template; the rest flows through built-ins.
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"emp\"><e><xsl:value-of select=\"ename\"/></e>"
      "</xsl:template>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, ForEachAndSort) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(
      "<xsl:template match=\"dept\">"
      "<xsl:for-each select=\"employees/emp\">"
      "<xsl:sort select=\"sal\" data-type=\"number\" order=\"descending\"/>"
      "<p><xsl:value-of select=\"ename\"/>:<xsl:value-of select=\"sal\"/></p>"
      "</xsl:for-each></xsl:template>",
      &info, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_NE(run.query_text.find("order by"), std::string::npos);
  EXPECT_NE(run.query_text.find("descending"), std::string::npos);
}

TEST(XsltRewriteInlineTest, ApplyTemplatesWithSort) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"employees\">"
      "<xsl:apply-templates select=\"emp\"><xsl:sort select=\"ename\"/>"
      "</xsl:apply-templates></xsl:template>"
      "<xsl:template match=\"emp\"><n><xsl:value-of select=\"ename\"/></n>"
      "</xsl:template><xsl:template match=\"text()\"/>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, VariablesAndCallTemplate) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"dept\">"
      "<xsl:variable name=\"city\" select=\"loc\"/>"
      "<xsl:call-template name=\"hdr\">"
      "<xsl:with-param name=\"where\" select=\"$city\"/>"
      "</xsl:call-template></xsl:template>"
      "<xsl:template name=\"hdr\"><xsl:param name=\"where\" select=\"'?'\"/>"
      "<xsl:param name=\"greet\" select=\"'at'\"/>"
      "<h><xsl:value-of select=\"concat($greet, ' ', $where)\"/></h>"
      "</xsl:template>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, IfAndChooseResidualConditionals) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(
      "<xsl:template match=\"emp\">"
      "<xsl:choose>"
      "<xsl:when test=\"sal &gt; 4000\"><hi/></xsl:when>"
      "<xsl:when test=\"sal &gt; 2000\"><mid/></xsl:when>"
      "<xsl:otherwise><lo/></xsl:otherwise>"
      "</xsl:choose></xsl:template>"
      "<xsl:template match=\"text()\"/>",
      &info, kDeptDoc);
  ExpectEquivalent(run);
  // The content conditionals stay in the residual query (partial evaluation
  // cannot decide them, §4.1).
  EXPECT_NE(run.query_text.find("if ("), std::string::npos);
}

TEST(XsltRewriteInlineTest, PatternValuePredicatesKeptAsResiduals) {
  // Tables 18/19: conditional templates on the same structural pattern.
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(
      "<xsl:template match=\"emp/empno[. = 7934]\" priority=\"1\">"
      "<special/></xsl:template>"
      "<xsl:template match=\"emp/empno\"><plain/></xsl:template>"
      "<xsl:template match=\"text()\"/>",
      &info, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_GE(run.report.residual_predicate_tests, 1);
  // §3.5: no parent-axis test in the residual condition.
  EXPECT_EQ(run.query_text.find("parent::"), std::string::npos)
      << run.query_text;
}

TEST(XsltRewriteInlineTest, ModesDispatchCorrectly) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"dept\">"
      "<xsl:apply-templates select=\"dname\"/>"
      "<xsl:apply-templates select=\"dname\" mode=\"loud\"/>"
      "</xsl:template>"
      "<xsl:template match=\"dname\"><q><xsl:value-of select=\".\"/></q>"
      "</xsl:template>"
      "<xsl:template match=\"dname\" mode=\"loud\"><Q><xsl:value-of "
      "select=\".\"/></Q></xsl:template>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, XslCopyWithKnownStructure) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"dname\"><xsl:copy><xsl:value-of select=\".\"/>"
      "</xsl:copy></xsl:template>"
      "<xsl:template match=\"loc|employees\"/>"
      "<xsl:template match=\"text()\"/>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, AttributeValueTemplates) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"emp\">"
      "<row id=\"e{empno}\" pay=\"{sal}\"/>"
      "</xsl:template><xsl:template match=\"text()\"/>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, CopyOfSubtrees) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"dept\">"
      "<keep><xsl:copy-of select=\"employees/emp[sal &gt; 2000]\"/></keep>"
      "</xsl:template>",
      &info, kDeptDoc));
}

TEST(XsltRewriteInlineTest, AggregatesInContent) {
  schema::StructuralInfo info = DeptStructure();
  ExpectEquivalent(RunBoth(
      "<xsl:template match=\"dept\">"
      "<stats total=\"{sum(employees/emp/sal)}\" n=\"{count(employees/emp)}\"/>"
      "</xsl:template>",
      &info, kDeptDoc));
}

// ---------------------------------------------------------------------------
// Model groups (Tables 12-14)
// ---------------------------------------------------------------------------

TEST(XsltRewriteModelGroupTest, ChoiceGroupGeneratesExistenceTests) {
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="payment">
        <xs:complexType>
          <xs:choice>
            <xs:element name="card" type="xs:string"/>
            <xs:element name="cash" type="xs:string"/>
          </xs:choice>
        </xs:complexType>
      </xs:element>
    </xs:schema>)";
  auto info = schema::ParseXsd(xsd);
  ASSERT_TRUE(info.ok());
  const char* body =
      "<xsl:template match=\"card\"><c1/></xsl:template>"
      "<xsl:template match=\"cash\"><c2/></xsl:template>";
  RewriteRun run1 = RunBoth(body, &*info, "<payment><card>111</card></payment>");
  ExpectEquivalent(run1);
  RewriteRun run2 = RunBoth(body, &*info, "<payment><cash>20</cash></payment>");
  ExpectEquivalent(run2);
  // Table 13: existence conditionals, not instance-of over node().
  EXPECT_NE(run1.query_text.find("if ("), std::string::npos);
}

TEST(XsltRewriteModelGroupTest, AllGroupGeneratesInstanceTests) {
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:complexType>
          <xs:all>
            <xs:element name="a" type="xs:string"/>
            <xs:element name="b" type="xs:string"/>
          </xs:all>
        </xs:complexType>
      </xs:element>
    </xs:schema>)";
  auto info = schema::ParseXsd(xsd);
  ASSERT_TRUE(info.ok());
  const char* body =
      "<xsl:template match=\"a\">[a=<xsl:value-of select=\".\"/>]</xsl:template>"
      "<xsl:template match=\"b\">[b=<xsl:value-of select=\".\"/>]</xsl:template>";
  // "all" allows any order; both must work.
  RewriteRun run1 = RunBoth(body, &*info, "<r><a>1</a><b>2</b></r>");
  ExpectEquivalent(run1);
  RewriteRun run2 = RunBoth(body, &*info, "<r><b>2</b><a>1</a></r>");
  ExpectEquivalent(run2);
  // Table 12: instance-of dispatch inside a node() loop.
  EXPECT_NE(run1.query_text.find("instance of element(a)"), std::string::npos)
      << run1.query_text;
}

TEST(XsltRewriteModelGroupTest, SequenceCardinality) {
  // Table 15: singleton children use let, repeating children use for.
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc);
  ASSERT_TRUE(run.status.ok());
  EXPECT_NE(run.query_text.find("let $var"), std::string::npos);
  EXPECT_NE(run.query_text.find("for $var"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Non-inline mode (recursion)
// ---------------------------------------------------------------------------

TEST(XsltRewriteNonInlineTest, RecursiveStructureFallsBackToFunctions) {
  schema::StructureBuilder b;
  auto* section = b.Element("section");
  b.AddText(b.AddChild(section, "title"));
  b.AddRecursiveChild(section, section);
  schema::StructuralInfo info = b.Build(section);

  RewriteRun run = RunBoth(
      "<xsl:template match=\"section\"><s>"
      "<xsl:apply-templates select=\"title\"/>"
      "<xsl:apply-templates select=\"section\"/>"
      "</s></xsl:template>"
      "<xsl:template match=\"title\"><t><xsl:value-of select=\".\"/></t>"
      "</xsl:template>",
      &info,
      "<section><title>A</title>"
      "<section><title>B</title><section><title>C</title></section></section>"
      "</section>");
  ExpectEquivalent(run);
  EXPECT_EQ(run.report.mode, RewriteReport::Mode::kNonInline);
  EXPECT_TRUE(run.report.recursion_detected);
  EXPECT_NE(run.query_text.find("declare function"), std::string::npos);
}

TEST(XsltRewriteNonInlineTest, DeadTemplatesRemoved) {
  schema::StructureBuilder b;
  auto* section = b.Element("section");
  b.AddText(b.AddChild(section, "title"));
  b.AddRecursiveChild(section, section);
  schema::StructuralInfo info = b.Build(section);

  // "never" can't match anything in this structure (§3.7).
  RewriteRun run = RunBoth(
      "<xsl:template match=\"section\"><s><xsl:apply-templates "
      "select=\"section\"/></s></xsl:template>"
      "<xsl:template match=\"never\"><x/></xsl:template>"
      "<xsl:template match=\"text()\"/>",
      &info, "<section><title>A</title><section><title>B</title></section>"
             "</section>");
  ExpectEquivalent(run);
  EXPECT_GE(run.report.dead_templates_removed, 1);
  EXPECT_EQ(run.query_text.find("never"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Straightforward mode ([9] baseline)
// ---------------------------------------------------------------------------

TEST(XsltRewriteStraightforwardTest, NoStructureStillCorrect) {
  RewriteRun run = RunBoth(kPaperBody, nullptr, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_EQ(run.report.mode, RewriteReport::Mode::kStraightforward);
  // The [9] shape: dispatch + builtin functions, conditional chains.
  EXPECT_NE(run.query_text.find("local:dispatch"), std::string::npos);
  EXPECT_NE(run.query_text.find("local:builtin"), std::string::npos);
  EXPECT_GE(run.report.dispatch_conditionals, 5);
}

TEST(XsltRewriteStraightforwardTest, ForcedEvenWithStructure) {
  schema::StructuralInfo info = DeptStructure();
  XsltRewriteOptions options;
  options.force_straightforward = true;
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc, options);
  ExpectEquivalent(run);
  EXPECT_EQ(run.report.mode, RewriteReport::Mode::kStraightforward);
}

TEST(XsltRewriteStraightforwardTest, MultiStepPatternKeepsParentTest) {
  // Table 17: without structure the parent-axis test must stay.
  RewriteRun run = RunBoth(
      "<xsl:template match=\"emp/empno\"><hit/></xsl:template>"
      "<xsl:template match=\"text()\"/>",
      nullptr, kDeptDoc);
  ExpectEquivalent(run);
  EXPECT_NE(run.query_text.find("parent::emp"), std::string::npos)
      << run.query_text;
}

TEST(XsltRewriteStraightforwardTest, RecursiveNamedTemplates) {
  RewriteRun run = RunBoth(
      "<xsl:template match=\"/\"><xsl:call-template name=\"count\">"
      "<xsl:with-param name=\"n\" select=\"3\"/></xsl:call-template>"
      "</xsl:template>"
      "<xsl:template name=\"count\"><xsl:param name=\"n\" select=\"0\"/>"
      "<xsl:if test=\"$n &gt; 0\"><i/><xsl:call-template name=\"count\">"
      "<xsl:with-param name=\"n\" select=\"$n - 1\"/></xsl:call-template>"
      "</xsl:if></xsl:template>",
      nullptr, "<r/>");
  ExpectEquivalent(run);
}

TEST(XsltRewriteStraightforwardTest, UntranslatableConstructsReported) {
  // position() in a select is outside the subset.
  auto ss = xslt::Stylesheet::Parse(
      Wrap("<xsl:template match=\"a\"><xsl:value-of select=\"position()\"/>"
           "</xsl:template>"));
  ASSERT_TRUE(ss.ok());
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());
  RewriteReport report;
  auto q = RewriteXsltToXQuery(**compiled, nullptr, {}, &report);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kRewriteError);
}

// ---------------------------------------------------------------------------
// Ablations (option flags)
// ---------------------------------------------------------------------------

TEST(XsltRewriteAblationTest, DisableInlineUsesFunctions) {
  schema::StructuralInfo info = DeptStructure();
  XsltRewriteOptions options;
  options.enable_inline = false;
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc, options);
  ExpectEquivalent(run);
  EXPECT_EQ(run.report.mode, RewriteReport::Mode::kNonInline);
  EXPECT_NE(run.query_text.find("declare function"), std::string::npos);
}

TEST(XsltRewriteAblationTest, DisableCardinalityUsesForEverywhere) {
  schema::StructuralInfo info = DeptStructure();
  XsltRewriteOptions options;
  options.enable_cardinality = false;
  RewriteRun run = RunBoth(kPaperBody, &info, kDeptDoc, options);
  ExpectEquivalent(run);
  EXPECT_EQ(run.query_text.find("let $var"), std::string::npos)
      << run.query_text;
}

TEST(XsltRewriteAblationTest, DisableBuiltinCompaction) {
  schema::StructuralInfo info = DeptStructure();
  XsltRewriteOptions options;
  options.enable_builtin_compaction = false;
  RewriteRun run = RunBoth("", &info, kDeptDoc, options);
  ExpectEquivalent(run);
  EXPECT_FALSE(run.report.builtin_only);
  EXPECT_EQ(run.query_text.find("fn:string-join"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential sweep across stylesheets and documents
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;
  const char* body;
};

class RewriteSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RewriteSweepTest, InlineEqualsFunctional) {
  schema::StructuralInfo info = DeptStructure();
  RewriteRun run = RunBoth(GetParam().body, &info, kDeptDoc);
  ExpectEquivalent(run);
}

TEST_P(RewriteSweepTest, StraightforwardEqualsFunctional) {
  RewriteRun run = RunBoth(GetParam().body, nullptr, kDeptDoc);
  ExpectEquivalent(run);
}

const SweepCase kSweepCases[] = {
    {"empty", ""},
    {"single_template",
     "<xsl:template match=\"ename\"><n><xsl:value-of select=\".\"/></n>"
     "</xsl:template>"},
    {"nested_literals",
     "<xsl:template match=\"dept\"><a><b><c x=\"1\">deep</c></b></a>"
     "</xsl:template>"},
    {"wildcard_template",
     "<xsl:template match=\"*\"><any n=\"{count(*)}\"><xsl:apply-templates "
     "select=\"*\"/></any></xsl:template>"},
    {"priority_overrides",
     "<xsl:template match=\"*\"/>"
     "<xsl:template match=\"dname\"><d/></xsl:template>"
     "<xsl:template match=\"dept\"><xsl:apply-templates select=\"*\"/>"
     "</xsl:template>"},
    {"value_of_chains",
     "<xsl:template match=\"emp\"><xsl:value-of select=\"empno\"/>-"
     "<xsl:value-of select=\"ename\"/>;</xsl:template>"
     "<xsl:template match=\"text()\"/>"},
    {"if_tests",
     "<xsl:template match=\"emp\"><xsl:if test=\"sal &gt; 2000\">"
     "<rich><xsl:value-of select=\"ename\"/></rich></xsl:if></xsl:template>"
     "<xsl:template match=\"text()\"/>"},
    {"for_each_nested",
     "<xsl:template match=\"dept\"><xsl:for-each select=\"employees\">"
     "<xsl:for-each select=\"emp\"><x><xsl:value-of select=\"ename\"/></x>"
     "</xsl:for-each></xsl:for-each></xsl:template>"},
    {"variables",
     "<xsl:template match=\"emp\"><xsl:variable name=\"who\" "
     "select=\"ename\"/><v><xsl:value-of select=\"$who\"/></v></xsl:template>"
     "<xsl:template match=\"text()\"/>"},
    {"sum_count",
     "<xsl:template match=\"dept\"><t><xsl:value-of "
     "select=\"sum(employees/emp/sal)\"/>/<xsl:value-of "
     "select=\"count(employees/emp)\"/></t></xsl:template>"},
    {"text_templates",
     "<xsl:template match=\"text()\">[<xsl:value-of select=\".\"/>]"
     "</xsl:template>"},
    {"descendant_select",
     "<xsl:template match=\"dept\"><all><xsl:apply-templates select=\".//sal\"/>"
     "</all></xsl:template>"
     "<xsl:template match=\"sal\"><s><xsl:value-of select=\".\"/></s>"
     "</xsl:template><xsl:template match=\"text()\"/>"},
};

INSTANTIATE_TEST_SUITE_P(Sweep, RewriteSweepTest, ::testing::ValuesIn(kSweepCases),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace xdb::rewrite
