#include "xsltmark/suite.h"

#include <gtest/gtest.h>

#include <set>

namespace xdb::xsltmark {
namespace {

TEST(XsltMarkSuiteTest, HasFortyCases) {
  EXPECT_EQ(AllCases().size(), 40u);
  std::set<std::string> names;
  for (const BenchCase& c : AllCases()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate case " << c.name;
    EXPECT_FALSE(c.stylesheet.empty());
    EXPECT_FALSE(c.category.empty());
  }
  EXPECT_NE(FindCase("dbonerow"), nullptr);
  EXPECT_NE(FindCase("avts"), nullptr);
  EXPECT_NE(FindCase("chart"), nullptr);
  EXPECT_NE(FindCase("metric"), nullptr);
  EXPECT_NE(FindCase("total"), nullptr);
  EXPECT_EQ(FindCase("nope"), nullptr);
}

TEST(XsltMarkSuiteTest, AllStylesheetsParseAndCompile) {
  for (const BenchCase& c : AllCases()) {
    auto ss = xslt::Stylesheet::Parse(c.stylesheet);
    ASSERT_TRUE(ss.ok()) << c.name << ": " << ss.status().ToString();
    auto compiled = xslt::CompiledStylesheet::Compile(**ss);
    ASSERT_TRUE(compiled.ok()) << c.name << ": " << compiled.status().ToString();
  }
}

TEST(XsltMarkSuiteTest, FamiliesSetUp) {
  for (const char* family : {"db", "sales", "product", "tree"}) {
    XmlDb db;
    ASSERT_TRUE(SetupFamily(&db, family, 50).ok()) << family;
    auto xml = db.MaterializeView(FamilyViewName(family));
    ASSERT_TRUE(xml.ok()) << family << ": " << xml.status().ToString();
    ASSERT_EQ(xml->size(), 1u);
    EXPECT_GT((*xml)[0].size(), 100u) << family;
  }
  XmlDb db;
  EXPECT_FALSE(SetupFamily(&db, "bogus", 10).ok());
}

// Per-case: the rewrite pipeline must agree with the functional baseline.
class XsltMarkCaseTest : public ::testing::TestWithParam<BenchCase> {};

TEST_P(XsltMarkCaseTest, RewriteAgreesWithFunctional) {
  const BenchCase& c = GetParam();
  XmlDb db;
  ASSERT_TRUE(SetupFamily(&db, c.family, 30).ok());
  const std::string view = FamilyViewName(c.family);

  ExecOptions functional;
  functional.enable_rewrite = false;
  ExecStats fstats;
  auto fref = db.TransformView(view, c.stylesheet, functional, &fstats);
  ASSERT_TRUE(fref.ok()) << c.name << ": " << fref.status().ToString();

  ExecStats rstats;
  auto rout = db.TransformView(view, c.stylesheet, {}, &rstats);
  ASSERT_TRUE(rout.ok()) << c.name << ": " << rout.status().ToString();

  EXPECT_EQ(*rout, *fref) << c.name << " diverged on path "
                          << ExecutionPathName(rstats.path)
                          << "\nxquery:\n" << rstats.xquery_text;
}

INSTANTIATE_TEST_SUITE_P(AllCases, XsltMarkCaseTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<BenchCase>& info) {
                           return info.param.name;
                         });

// The paper's §5 statistic: 23 of 40 cases compile in full inline mode.
TEST(XsltMarkSuiteTest, InlineModeStatistic) {
  int inline_count = 0;
  int non_inline = 0;
  int unrewritable = 0;
  for (const BenchCase& c : AllCases()) {
    XmlDb db;
    ASSERT_TRUE(SetupFamily(&db, c.family, 10).ok());
    auto result = CompileCase(c, &db);
    ASSERT_TRUE(result.ok()) << c.name << ": " << result.status().ToString();
    if (!result->rewritable) {
      ++unrewritable;
    } else if (result->report.mode == rewrite::RewriteReport::Mode::kInline) {
      ++inline_count;
    } else {
      ++non_inline;
    }
  }
  // The paper reports 23/40 in inline mode ("more than 50%"); our suite is a
  // reconstruction, so require the same ballpark and record exact numbers in
  // EXPERIMENTS.md.
  EXPECT_GE(inline_count, 20) << "inline=" << inline_count
                              << " non-inline=" << non_inline
                              << " unrewritable=" << unrewritable;
  EXPECT_LE(inline_count, 28);
  EXPECT_EQ(inline_count + non_inline + unrewritable, 40);
  EXPECT_GE(non_inline, 5);
  EXPECT_GE(unrewritable, 5);
}

TEST(XsltMarkSuiteTest, DbOneRowUsesIndex) {
  XmlDb db;
  ASSERT_TRUE(SetupFamily(&db, "db", 100).ok());
  ExecStats stats;
  auto r = db.TransformView("db_view", FindCase("dbonerow")->stylesheet, {},
                            &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.path, ExecutionPath::kSqlRewritten) << stats.fallback_reason;
  EXPECT_TRUE(stats.used_index);
}

}  // namespace
}  // namespace xdb::xsltmark
