#include "server/snapshot_manager.h"

#include <algorithm>
#include <map>
#include <utility>

namespace xdb::server {

namespace {

std::shared_ptr<const rel::Snapshot> Capture(rel::Catalog* catalog,
                                             uint64_t epoch) {
  std::map<const rel::Table*, rel::TableVersion> versions;
  for (rel::Table* table : catalog->AllTables()) {
    versions.emplace(table, table->CaptureVersion());
  }
  return std::make_shared<const rel::Snapshot>(epoch, std::move(versions));
}

}  // namespace

SnapshotManager::SnapshotManager(rel::Catalog* catalog, uint64_t first_epoch)
    : catalog_(catalog) {
  head_.store(Capture(catalog_, first_epoch == 0 ? 1 : first_epoch),
              std::memory_order_release);
}

std::shared_ptr<const rel::Snapshot> SnapshotManager::Publish() {
  std::shared_ptr<const rel::Snapshot> old =
      head_.load(std::memory_order_acquire);
  std::shared_ptr<const rel::Snapshot> next =
      Capture(catalog_, old->epoch() + 1);
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(old);
  }
  head_.store(next, std::memory_order_release);
  return next;
}

uint64_t SnapshotManager::MinLiveEpoch() const {
  uint64_t min_epoch = head_epoch();
  std::lock_guard<std::mutex> lock(retired_mu_);
  auto it = retired_.begin();
  while (it != retired_.end()) {
    if (std::shared_ptr<const rel::Snapshot> s = it->lock()) {
      min_epoch = std::min(min_epoch, s->epoch());
      ++it;
    } else {
      it = retired_.erase(it);
    }
  }
  return min_epoch;
}

size_t SnapshotManager::RetiredLiveCount() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  size_t live = 0;
  auto it = retired_.begin();
  while (it != retired_.end()) {
    if (!it->expired()) {
      ++live;
      ++it;
    } else {
      it = retired_.erase(it);
    }
  }
  return live;
}

}  // namespace xdb::server
