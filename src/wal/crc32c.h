// CRC32C (Castagnoli) — the checksum framing every WAL and checkpoint
// record. Software slice-by-one implementation: ~1 GB/s, far above the
// fsync-bound write path it protects, and dependency-free.
#ifndef XDB_WAL_CRC32C_H_
#define XDB_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xdb::wal {

/// CRC32C of `data`, seeded with `init` (pass a previous result to extend).
uint32_t Crc32c(const void* data, size_t size, uint32_t init = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t init = 0) {
  return Crc32c(data.data(), data.size(), init);
}

/// Masked CRC in the RocksDB/LevelDB style: storing the CRC of data that
/// itself embeds CRCs (a checkpoint of a log) would otherwise make the
/// checksum degenerate. All frames store the masked value.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace xdb::wal

#endif  // XDB_WAL_CRC32C_H_
