#include "shred/view_gen.h"

#include <map>
#include <string>
#include <utility>

namespace xdb::shred {

using rel::PublishSpec;
using schema::ChildRef;
using schema::ElementStructure;

namespace {

/// Emits the XMLElement subtree reconstructing occurrences of `decl` from
/// its shred table row (the innermost relational scope at this point).
/// `on_path` maps the declarations currently under construction to their
/// element specs: a recursive ChildRef targets one of them and publishes as
/// a recursive nested aggregate instead of expanding (unboundedly) in place.
Result<std::unique_ptr<PublishSpec>> ElementSpec(
    const ShredMapping& mapping, const ElementStructure* decl,
    std::map<const ElementStructure*, PublishSpec*>* on_path) {
  const ShredTable* table = mapping.table_for(decl);
  if (table == nullptr) {
    return Status::Internal("view_gen: element '" + decl->name +
                            "' has no shred table");
  }
  auto spec = PublishSpec::Element(decl->name);
  (*on_path)[decl] = spec.get();
  for (const std::string& attr : decl->attributes) {
    spec->attr_columns.emplace_back(attr, AttrColumnName(attr));
  }
  if (decl->has_text) {
    spec->AddChild(PublishSpec::Column(std::string(kTextColumn)));
  }
  // Children in declared slot order — this is what makes the published form
  // canonical. Choice branches and optional leaves carry presence guards;
  // absent table children simply aggregate zero rows.
  for (const ChildRef& ref : decl->children) {
    const ShredTable* child_table = mapping.table_for(ref.elem);
    if (ref.recursive_edge) {
      // The target's spec is an ancestor of this one (recursive edges point
      // up the declaration tree): publish its child rows by re-applying it.
      auto target = on_path->find(ref.elem);
      if (target == on_path->end() || child_table == nullptr) {
        return Status::Internal("view_gen: recursive child '" +
                                ref.elem->name + "' of '" + decl->name +
                                "' has no enclosing element spec");
      }
      auto nested = PublishSpec::RecursiveNested(
          child_table->name, std::string(kRowIdColumn),
          std::string(kParentRowIdColumn), target->second);
      nested->order_by_column = std::string(kOrdColumn);
      spec->AddChild(std::move(nested));
    } else if (child_table != nullptr) {
      XDB_ASSIGN_OR_RETURN(std::unique_ptr<PublishSpec> row_elem,
                           ElementSpec(mapping, ref.elem, on_path));
      auto nested = PublishSpec::Nested(
          child_table->name, std::string(kRowIdColumn),
          std::string(kParentRowIdColumn), std::move(row_elem));
      nested->order_by_column = std::string(kOrdColumn);
      spec->AddChild(std::move(nested));
    } else {
      const ShredColumn* col = table->FindInlineChild(ref.elem->name);
      if (col == nullptr) {
        return Status::Internal("view_gen: no inline column for child '" +
                                ref.elem->name + "' of '" + decl->name + "'");
      }
      auto leaf = PublishSpec::Element(ref.elem->name);
      leaf->AddChild(PublishSpec::Column(col->name));
      if (col->nullable) leaf->present_if_column = col->name;
      spec->AddChild(std::move(leaf));
    }
  }
  on_path->erase(decl);
  return spec;
}

}  // namespace

Result<std::unique_ptr<PublishSpec>> GeneratePublishSpec(
    const ShredMapping& mapping) {
  std::map<const ElementStructure*, PublishSpec*> on_path;
  return ElementSpec(mapping, mapping.structure().root(), &on_path);
}

}  // namespace xdb::shred
