// Substrate microbenchmarks: B+tree, XML parsing, XPath evaluation —
// the building blocks whose costs the end-to-end numbers decompose into.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rel/btree.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xdb::bench {
namespace {

void BM_BTree_Insert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rel::BTreeIndex index;
    for (int i = 0; i < n; ++i) {
      index.Insert(rel::Datum(static_cast<int64_t>((i * 2654435761u) % 1000000)),
                   i);
    }
    benchmark::DoNotOptimize(index.entry_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_BTree_PointLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rel::BTreeIndex index;
  for (int i = 0; i < n; ++i) {
    index.Insert(rel::Datum(static_cast<int64_t>(i)), i);
  }
  int64_t key = n / 2;
  for (auto _ : state) {
    std::vector<int64_t> out;
    index.Lookup(rel::Datum(key), &out);
    benchmark::DoNotOptimize(out);
  }
}

void BM_BTree_RangeScan(benchmark::State& state) {
  const int n = 100000;
  rel::BTreeIndex index;
  for (int i = 0; i < n; ++i) {
    index.Insert(rel::Datum(static_cast<int64_t>(i)), i);
  }
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<int64_t> out;
    rel::Bound lo{rel::Datum(static_cast<int64_t>(n / 2)), true};
    rel::Bound hi{rel::Datum(static_cast<int64_t>(n / 2 + width)), false};
    index.Scan(&lo, &hi, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * width);
}

std::string MakeDoc(int rows) {
  std::string s = "<table>";
  for (int i = 0; i < rows; ++i) {
    s += "<row><id>" + std::to_string(i) + "</id><v>" +
         std::to_string(i * 37 % 1000) + "</v></row>";
  }
  s += "</table>";
  return s;
}

void BM_Xml_Parse(benchmark::State& state) {
  std::string doc = MakeDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = xml::ParseDocument(doc);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}

void BM_XPath_PredicateScan(benchmark::State& state) {
  auto doc = xml::ParseDocument(MakeDoc(static_cast<int>(state.range(0))));
  if (!doc.ok()) abort();
  auto expr = xpath::ParseXPath("/table/row[v > 900]");
  if (!expr.ok()) abort();
  xpath::Evaluator evaluator;
  xpath::EvalContext ctx;
  ctx.node = (*doc)->root();
  for (auto _ : state) {
    auto r = evaluator.EvaluateNodeSet(**expr, ctx);
    if (!r.ok()) state.SkipWithError("eval failed");
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_BTree_Insert)->Arg(10000)->Arg(100000);
BENCHMARK(BM_BTree_PointLookup)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_BTree_RangeScan)->Arg(10)->Arg(1000);
BENCHMARK(BM_Xml_Parse)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_XPath_PredicateScan)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xdb::bench

XDB_BENCH_MAIN();
