file(REMOVE_RECURSE
  "CMakeFiles/example_combined_optimization.dir/combined_optimization.cpp.o"
  "CMakeFiles/example_combined_optimization.dir/combined_optimization.cpp.o.d"
  "example_combined_optimization"
  "example_combined_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_combined_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
