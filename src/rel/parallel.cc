#include "rel/parallel.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "rel/snapshot.h"

namespace xdb::rel {

bool MatchScanPipeline(const PlanNode& plan, ScanPipeline* out) {
  ScanPipeline p;
  const PlanNode* node = &plan;
  // Collect stages top-down, then reverse so they apply leaf-upward.
  for (;;) {
    if (const auto* scan = dynamic_cast<const SeqScanNode*>(node)) {
      p.table = scan->table();
      break;
    }
    if (const auto* filter = dynamic_cast<const FilterNode*>(node)) {
      ScanPipeline::Stage s;
      s.predicate = filter->predicate();
      p.stages.push_back(s);
      node = filter->child();
      continue;
    }
    if (const auto* project = dynamic_cast<const ProjectNode*>(node)) {
      ScanPipeline::Stage s;
      s.exprs = &project->exprs();
      p.stages.push_back(s);
      node = project->child();
      continue;
    }
    if (const auto* join = dynamic_cast<const GroupJoinNode*>(node)) {
      ScanPipeline::Stage s;
      s.join = join;
      p.stages.push_back(s);
      node = join->left();
      continue;
    }
    return false;
  }
  std::reverse(p.stages.begin(), p.stages.end());
  *out = std::move(p);
  return true;
}

Status PrepareJoinProbes(ScanPipeline* p, ExecCtx& ctx) {
  for (ScanPipeline::Stage& s : p->stages) {
    if (s.join == nullptr) continue;
    XDB_ASSIGN_OR_RETURN(s.probe, s.join->PrepareProbe(ctx));
  }
  return Status::OK();
}

Status RunPipelineRange(const ScanPipeline& p, ExecCtx& ctx, size_t begin,
                        size_t end, std::vector<Row>* rows) {
  for (size_t i = begin; i < end; ++i) {
    XDB_RETURN_NOT_OK(governor::Tick(ctx.budget));
    Row row = p.read.row(static_cast<int64_t>(i));
    bool keep = true;
    for (const ScanPipeline::Stage& stage : p.stages) {
      if (stage.join != nullptr) {
        if (stage.probe == nullptr) {
          return Status::Internal(
              "join stage probe not prepared; call PrepareJoinProbes first");
        }
        auto agg = stage.join->ProbeOne(ctx, *stage.probe, row);
        if (!agg.ok()) return agg.status();
        row.push_back(agg.MoveValue());
      } else if (stage.predicate != nullptr) {
        ctx.rows.push_back(&row);
        auto v = stage.predicate->Eval(ctx);
        ctx.rows.pop_back();
        if (!v.ok()) return v.status();
        if (v->is_null() || v->ToDouble() == 0) {
          keep = false;
          break;
        }
      } else {
        Row projected;
        projected.reserve(stage.exprs->size());
        ctx.rows.push_back(&row);
        for (const RelExprPtr& e : *stage.exprs) {
          auto v = e->Eval(ctx);
          if (!v.ok()) {
            ctx.rows.pop_back();
            return v.status();
          }
          projected.push_back(v.MoveValue());
        }
        ctx.rows.pop_back();
        row = std::move(projected);
      }
    }
    if (keep) rows->push_back(std::move(row));
  }
  return Status::OK();
}

namespace {

// Contiguous, balanced partition bounds over [0, n).
std::vector<std::pair<size_t, size_t>> PartitionRanges(size_t n, int parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t p = static_cast<size_t>(parts);
  size_t base = n / p, extra = n % p;
  size_t begin = 0;
  for (size_t i = 0; i < p; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

// Runs `per_partition(index, partition_ctx, range)` across partitions on the
// shared pool. Each partition gets a fresh arena (returned through *arenas
// with its budget pointer already detached) and its own BudgetScope over the
// caller's shared ExecBudget. Errors use run-to-completion ordering so the
// lowest partition's failure — the row the serial loop would have hit first
// — is reported.
template <typename PerPartition>
Status RunPartitioned(ExecCtx& ctx, const core::ParallelPolicy& policy,
                      const std::vector<std::pair<size_t, size_t>>& ranges,
                      int* threads_used,
                      std::vector<std::unique_ptr<xml::Document>>* arenas,
                      PerPartition&& per_partition) {
  arenas->resize(ranges.size());
  governor::ExecBudget* shared =
      ctx.budget != nullptr ? ctx.budget->budget() : nullptr;
  auto task = [&](size_t i) -> Status {
    governor::BudgetScope scope(shared);
    auto arena = std::make_unique<xml::Document>();
    if (scope.enabled()) arena->set_budget(&scope);
    ExecCtx pctx;
    pctx.arena = arena.get();
    pctx.rows = ctx.rows;  // outer rows: read-only shared borrow
    pctx.budget = scope.enabled() ? &scope : nullptr;
    pctx.parallel = nullptr;  // partitions never re-fork
    pctx.join_stats = ctx.join_stats;  // atomics: safe shared sink
    pctx.snapshot = ctx.snapshot;  // partitions read the same pinned epoch
    Status s = per_partition(i, pctx, ranges[i]);
    // Detach before the scope dies; the absorbing document takes over the
    // release duty for bytes this partition charged to the shared budget.
    arena->set_budget(nullptr);
    (*arenas)[i] = std::move(arena);
    return s;
  };
  core::TaskOptions opts;
  opts.threads = policy.threads;
  opts.cancel = policy.cancel;
  opts.threads_used = threads_used;
  opts.cancel_on_error = false;
  return core::TaskScheduler::Global().RunTasks(ranges.size(), task, opts);
}

}  // namespace

Result<bool> TryCollectPartitioned(const PlanNode& plan, ExecCtx& ctx,
                                   const char* op_label,
                                   std::vector<Row>* out_rows) {
  if (ctx.parallel == nullptr || ctx.arena == nullptr) return false;
  const core::ParallelPolicy& policy = *ctx.parallel;
  ScanPipeline pipe;
  if (!MatchScanPipeline(plan, &pipe)) return false;
  pipe.read = TableRead(pipe.table, ctx.snapshot);
  size_t n = pipe.read.row_count();
  if (!policy.ShouldFork(n)) return false;
  // Hash builds happen once here, serially; partitions probe read-only.
  XDB_RETURN_NOT_OK(PrepareJoinProbes(&pipe, ctx));
  if (pipe.has_join()) op_label = "rel:join-probe";

  auto ranges = PartitionRanges(n, std::min<int>(policy.threads, static_cast<int>(n)));
  std::vector<std::vector<Row>> part_rows(ranges.size());
  std::vector<std::unique_ptr<xml::Document>> arenas;
  int threads_used = 1;
  XDB_RETURN_NOT_OK(RunPartitioned(
      ctx, policy, ranges, &threads_used, &arenas,
      [&](size_t i, ExecCtx& pctx, const std::pair<size_t, size_t>& r) {
        return RunPipelineRange(pipe, pctx, r.first, r.second, &part_rows[i]);
      }));

  out_rows->clear();
  for (size_t i = 0; i < ranges.size(); ++i) {
    ctx.arena->AbsorbNodes(arenas[i].get());
    out_rows->insert(out_rows->end(),
                     std::make_move_iterator(part_rows[i].begin()),
                     std::make_move_iterator(part_rows[i].end()));
  }
  if (policy.stats != nullptr) {
    policy.stats->Record(op_label, threads_used, ranges.size());
  }
  return true;
}

Result<bool> TryCollectAggRuns(const PlanNode& child, const RelExpr* order_by,
                               bool descending, ExecCtx& ctx,
                               std::vector<std::vector<AggItem>>* runs) {
  if (ctx.parallel == nullptr || ctx.arena == nullptr) return false;
  const core::ParallelPolicy& policy = *ctx.parallel;
  ScanPipeline pipe;
  if (!MatchScanPipeline(child, &pipe)) return false;
  pipe.read = TableRead(pipe.table, ctx.snapshot);
  size_t n = pipe.read.row_count();
  if (!policy.ShouldFork(n)) return false;
  XDB_RETURN_NOT_OK(PrepareJoinProbes(&pipe, ctx));

  auto ranges = PartitionRanges(n, std::min<int>(policy.threads, static_cast<int>(n)));
  runs->assign(ranges.size(), {});
  std::vector<std::unique_ptr<xml::Document>> arenas;
  int threads_used = 1;
  XDB_RETURN_NOT_OK(RunPartitioned(
      ctx, policy, ranges, &threads_used, &arenas,
      [&](size_t i, ExecCtx& pctx, const std::pair<size_t, size_t>& r) -> Status {
        std::vector<Row> rows;
        XDB_RETURN_NOT_OK(RunPipelineRange(pipe, pctx, r.first, r.second, &rows));
        std::vector<AggItem>& run = (*runs)[i];
        run.reserve(rows.size());
        for (Row& row : rows) {
          AggItem item;
          item.value = row.empty() ? Datum::Null() : row[0];
          item.original = run.size();
          if (order_by != nullptr) {
            pctx.rows.push_back(&row);
            auto k = order_by->Eval(pctx);
            pctx.rows.pop_back();
            if (!k.ok()) return k.status();
            item.key = k.MoveValue();
          }
          run.push_back(std::move(item));
        }
        if (order_by != nullptr) {
          // Local sort; the caller's k-way merge over (key, partition,
          // original) then reproduces the serial global stable sort exactly.
          std::stable_sort(run.begin(), run.end(),
                           [descending](const AggItem& a, const AggItem& b) {
                             int cmp = a.key.Compare(b.key);
                             if (descending) cmp = -cmp;
                             if (cmp != 0) return cmp < 0;
                             return a.original < b.original;
                           });
        }
        return Status::OK();
      }));

  for (auto& arena : arenas) ctx.arena->AbsorbNodes(arena.get());
  if (policy.stats != nullptr) {
    policy.stats->Record("rel:xmlagg", threads_used, ranges.size());
  }
  return true;
}

}  // namespace xdb::rel
