#include "difftest/crash.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "common/faultpoints.h"
#include "core/xmldb.h"
#include "difftest/seed.h"

namespace xdb::difftest {

namespace {

constexpr const char* kViewName = "crasht";
/// Child exit code for a workload failure that is NOT the armed crash —
/// distinguishes a broken case from a simulated power failure.
constexpr int kChildBrokenExit = 3;

CrashReport Finish(CrashReport report, CrashReport::Outcome outcome,
                   std::string why) {
  report.outcome = outcome;
  report.detail = std::move(why);
  if (outcome != CrashReport::Outcome::kAgreed) {
    report.detail += "\nrepro: " + report.repro;
  }
  return report;
}

std::string MakeTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && *base != '\0' ? base
                                                                  : "/tmp") +
                     "/xdb_crash_XXXXXX";
  std::unique_ptr<char[]> buf(new char[tmpl.size() + 1]);
  std::memcpy(buf.get(), tmpl.c_str(), tmpl.size() + 1);
  if (mkdtemp(buf.get()) == nullptr) return "";
  return std::string(buf.get());
}

void RemoveDirRecursive(const std::string& dir) {
  if (dir.empty()) return;
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* e = readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  ::rmdir(dir.c_str());
}

wal::DurabilityOptions DirOptions(const std::string& dir, wal::SyncMode sync) {
  wal::DurabilityOptions opts;
  opts.data_dir = dir;
  opts.sync = sync;
  opts.checkpoint_bytes = 0;  // manual checkpoints only: deterministic workload
  return opts;
}

/// The durable workload the child dies inside: register the case's schema,
/// load every document (with a mid-workload checkpoint so post-checkpoint
/// WAL tails are exercised), and checkpoint again at the end. Never
/// returns; any non-crash failure exits kChildBrokenExit.
[[noreturn]] void RunChildWorkload(const GeneratedCase& c,
                                   const CrashOptions& options,
                                   const std::string& dir,
                                   const std::string& site, int hit) {
  fault::DisarmAll();
  fault::Arm(site, hit, fault::Action::kCrash);
  {
    XmlDb db;
    if (!db.OpenDurable(DirOptions(dir, options.sync)).ok()) {
      _exit(kChildBrokenExit);
    }
    if (!db.RegisterShreddedSchema(kViewName, c.structure).ok()) {
      _exit(kChildBrokenExit);
    }
    const size_t mid = (c.documents.size() + 1) / 2;
    for (size_t i = 0; i < c.documents.size(); ++i) {
      if (!db.LoadDocument(kViewName, c.documents[i]).ok()) {
        _exit(kChildBrokenExit);
      }
      if (i + 1 == mid && !db.Checkpoint().ok()) _exit(kChildBrokenExit);
    }
    if (!db.Checkpoint().ok()) _exit(kChildBrokenExit);
  }
  _exit(0);
}

/// What the parent sees after recovering a (possibly crashed) directory.
struct RecoveredState {
  bool view_exists = false;
  std::vector<std::string> rows;
  uint64_t commits = 0;
};

Result<RecoveredState> Recover(XmlDb* db, const std::string& dir,
                               wal::SyncMode sync) {
  XDB_RETURN_NOT_OK(db->OpenDurable(DirOptions(dir, sync)));
  RecoveredState state;
  state.commits = db->wal_commits();
  auto rows = db->MaterializeView(kViewName);
  if (rows.ok()) {
    state.view_exists = true;
    state.rows = std::move(*rows);
  } else if (rows.status().code() != StatusCode::kNotFound) {
    return rows.status();
  }
  return state;
}

/// The committed prefix `state` corresponds to, or -1 when the state
/// matches no prefix (torn). Prefix k means "registration plus the first k
/// document loads committed"; the pre-registration state is the view not
/// existing at all (with zero commits).
int MatchPrefix(const RecoveredState& state,
                const std::vector<std::vector<std::string>>& refs) {
  if (!state.view_exists) return state.commits == 0 ? 0 : -1;
  for (size_t k = 0; k < refs.size(); ++k) {
    // Registration is commit #1, each load one more.
    if (state.rows == refs[k] && state.commits == k + 1) {
      return static_cast<int>(k) + 1;
    }
  }
  return -1;
}

std::string DescribeState(const RecoveredState& state) {
  if (!state.view_exists) {
    return "view absent, " + std::to_string(state.commits) + " commits";
  }
  return std::to_string(state.rows.size()) + " rows, " +
         std::to_string(state.commits) + " commits";
}

}  // namespace

CrashReport RunCrashCase(const GeneratedCase& c, const CrashOptions& options) {
  CrashReport report;
  report.seed = c.seed;
  report.repro = ReproCommand(c.seed, options.repro_regex);

  // Serial references over an in-memory database: refs[k] is the published
  // view output once registration plus the first k loads have committed.
  std::vector<std::vector<std::string>> refs;
  {
    XmlDb ref_db;
    Status reg = ref_db.RegisterShreddedSchema(kViewName, c.structure);
    if (!reg.ok()) {
      return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                    "register: " + reg.ToString());
    }
    for (size_t i = 0; i <= c.documents.size(); ++i) {
      if (i > 0) {
        auto load = ref_db.LoadDocument(kViewName, c.documents[i - 1]);
        if (!load.ok()) {
          return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                        "load: " + load.status().ToString());
        }
      }
      auto rows = ref_db.MaterializeView(kViewName);
      if (!rows.ok()) {
        return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                      "reference: " + rows.status().ToString());
      }
      refs.push_back(std::move(*rows));
    }
  }

  for (const std::string& site : options.sites) {
    bool completed = false;
    for (int hit = 1; hit <= options.max_hits_per_site && !completed; ++hit) {
      const std::string where = site + " hit " + std::to_string(hit);
      std::string dir = MakeTempDir();
      if (dir.empty()) {
        return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                      "mkdtemp failed for " + where);
      }
      pid_t pid = fork();
      if (pid < 0) {
        RemoveDirRecursive(dir);
        return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                      "fork failed for " + where);
      }
      if (pid == 0) RunChildWorkload(c, options, dir, site, hit);

      int wstatus = 0;
      if (waitpid(pid, &wstatus, 0) != pid || !WIFEXITED(wstatus)) {
        RemoveDirRecursive(dir);
        return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                      "child died abnormally at " + where);
      }
      const int code = WEXITSTATUS(wstatus);
      if (code != 0 && code != fault::kCrashExitCode) {
        RemoveDirRecursive(dir);
        return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                      "child workload broke (exit " + std::to_string(code) +
                          ") at " + where);
      }
      const bool crashed = code == fault::kCrashExitCode;
      if (crashed) {
        ++report.crashes;
        ++report.crashes_per_site[site];
      } else {
        ++report.clean_exits;
        completed = true;  // the site fires fewer than `hit` times — done
      }

      // First recovery: the recovered output must be exactly one committed
      // prefix (for a clean exit, exactly the full workload).
      RecoveredState first;
      {
        XmlDb db;
        auto state = Recover(&db, dir, options.sync);
        if (!state.ok()) {
          std::string why = "recovery failed after " + where + ": " +
                            state.status().ToString();
          RemoveDirRecursive(dir);
          return Finish(std::move(report), CrashReport::Outcome::kTorn, why);
        }
        first = std::move(*state);
        int prefix = MatchPrefix(first, refs);
        if (prefix < 0 ||
            (!crashed &&
             prefix != static_cast<int>(c.documents.size()) + 1)) {
          std::string why = "recovered state after " + where +
                            " matches no committed prefix (" +
                            DescribeState(first) + "; " +
                            std::to_string(c.documents.size()) + " docs)";
          RemoveDirRecursive(dir);
          return Finish(std::move(report), CrashReport::Outcome::kTorn, why);
        }

        // Writability: the workload can continue from the recovered state.
        Status cont = first.view_exists
                          ? db.LoadDocument(kViewName, c.documents[0]).status()
                          : db.RegisterShreddedSchema(kViewName, c.structure);
        if (!cont.ok()) {
          std::string why = "recovered database not writable after " + where +
                            ": " + cont.ToString();
          RemoveDirRecursive(dir);
          return Finish(std::move(report), CrashReport::Outcome::kTorn, why);
        }
      }

      // Second recovery of the same directory (the first one already
      // truncated any torn tail and appended the writability batch):
      // recovery must be deterministic and idempotent — same bytes out.
      {
        XmlDb db;
        auto state = Recover(&db, dir, options.sync);
        if (!state.ok()) {
          std::string why = "re-recovery failed after " + where + ": " +
                            state.status().ToString();
          RemoveDirRecursive(dir);
          return Finish(std::move(report), CrashReport::Outcome::kTorn, why);
        }
        size_t want_rows =
            first.view_exists ? first.rows.size() + 1 : refs[0].size();
        if (!state->view_exists || state->rows.size() != want_rows) {
          std::string why = "re-recovery diverged after " + where + " (" +
                            DescribeState(*state) + ", want " +
                            std::to_string(want_rows) + " rows)";
          RemoveDirRecursive(dir);
          return Finish(std::move(report), CrashReport::Outcome::kTorn, why);
        }
      }
      ++report.recoveries;
      RemoveDirRecursive(dir);
    }
    if (!completed) {
      return Finish(std::move(report), CrashReport::Outcome::kInvalid,
                    "site " + site + " still firing after " +
                        std::to_string(options.max_hits_per_site) + " hits");
    }
  }

  return Finish(std::move(report), CrashReport::Outcome::kAgreed, "");
}

}  // namespace xdb::difftest
