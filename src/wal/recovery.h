// Crash recovery: rebuilds the in-memory catalog from the last complete
// checkpoint plus the WAL tail. The state machine per WAL batch:
//
//   (no batch) --kBatchBegin--> (open: per-table row-count marks captured)
//   (open) --kRowBatch--> rows applied immediately (positionally idempotent)
//   (open) --DDL/stats record--> deferred until the commit
//   (open) --kCommit--> deferred records applied, batch durable
//   (open) --kAbort / new kBatchBegin / EOF / torn tail--> every touched
//            table truncated back to its mark (Table::TruncateTo)
//
// Idempotence is two-layered: records at or below the checkpoint header's
// LSN watermark are skipped outright (covers a crash between checkpoint
// rename and log truncate), and row batches are positional — a batch whose
// first_rowid is below the table's current row count was already applied
// (covers replaying the same WAL twice, i.e. a crash during recovery
// itself). A first_rowid *above* the row count means a lost frame inside
// the valid prefix and fails recovery with kDataLoss.
//
// Torn or CRC-corrupt log tails are truncated at the first bad frame and
// reported as kDataLoss findings; a torn *checkpoint* (missing footer) is a
// hard kDataLoss error, because the rename protocol guarantees a complete
// file — absence of the footer means real corruption, not a crash artifact.
#ifndef XDB_WAL_RECOVERY_H_
#define XDB_WAL_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/table.h"
#include "wal/format.h"

namespace xdb::wal {

/// Catalog-side operations recovery drives. Implemented by XmlDb; every
/// method is invoked only after recovery checked the existence queries, so
/// implementations need no idempotence logic of their own.
class RecoveryHooks {
 public:
  virtual ~RecoveryHooks() = default;

  /// Re-registers a shredded schema from its serialized structure (creates
  /// tables + mapped indexes + publishing view, must NOT re-log to the WAL).
  virtual Status RegisterSchema(const Record& record) = 0;
  /// Re-creates an XSLT view from its logged stylesheet text.
  virtual Status CreateXsltView(const Record& record) = 0;
  /// Re-creates a plain (checkpoint-only) table: schema + listed indexes.
  virtual Status CreateTable(const Record& record) = 0;
  virtual Status DropTable(const std::string& table) = 0;
  virtual void PublishStats(const std::string& table,
                            rel::TableStats stats) = 0;

  virtual bool HasView(const std::string& view) const = 0;
  /// The live table, or nullptr when absent.
  virtual rel::Table* FindTable(const std::string& table) const = 0;
};

struct RecoveryReport {
  bool recovered_checkpoint = false;
  uint64_t checkpoint_records = 0;
  uint64_t replayed_records = 0;   ///< WAL records decoded from the tail
  uint64_t skipped_records = 0;    ///< below the checkpoint LSN watermark
  uint64_t committed_batches = 0;  ///< total restored (checkpoint + tail)
  uint64_t rolled_back_batches = 0;
  uint64_t next_lsn = 1;
  uint64_t next_batch_id = 1;
  uint64_t wal_good_prefix = 0;  ///< valid log bytes retained on disk
  int64_t recovery_ms = 0;
  /// kDataLoss findings that did not abort recovery (torn log tails,
  /// truncated at the first bad frame).
  std::vector<Status> findings;
};

/// Replays `data_dir` into the (empty or previously recovered) catalog
/// behind `hooks`. Returns kDataLoss on unrecoverable corruption: a torn
/// checkpoint, a record gap, or a replay application error.
Status RunRecovery(const std::string& data_dir, RecoveryHooks* hooks,
                   RecoveryReport* report);

}  // namespace xdb::wal

#endif  // XDB_WAL_RECOVERY_H_
