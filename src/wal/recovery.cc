#include "wal/recovery.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "wal/log_reader.h"
#include "wal/manager.h"

namespace xdb::wal {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Shared application logic for checkpoint records and WAL batches.
class Replayer {
 public:
  Replayer(RecoveryHooks* hooks, RecoveryReport* report)
      : hooks_(hooks), report_(report) {}

  // -- record application (existence checks make every op idempotent) ------

  Status ApplyDdl(const Record& r) {
    switch (r.type) {
      case RecordType::kRegisterSchema:
        if (hooks_->HasView(r.view)) return Status::OK();
        return hooks_->RegisterSchema(r);
      case RecordType::kCreateXsltView:
        if (hooks_->HasView(r.view)) return Status::OK();
        return hooks_->CreateXsltView(r);
      case RecordType::kCreateTable:
        if (hooks_->FindTable(r.table) != nullptr) return Status::OK();
        return hooks_->CreateTable(r);
      case RecordType::kCreateIndex: {
        rel::Table* table = hooks_->FindTable(r.table);
        if (table == nullptr) {
          return Status::DataLoss("WAL index record for unknown table '" +
                                  r.table + "'");
        }
        if (table->HasIndex(r.column)) return Status::OK();
        return table->CreateIndex(r.column);
      }
      case RecordType::kDropTable:
        if (hooks_->FindTable(r.table) == nullptr) return Status::OK();
        return hooks_->DropTable(r.table);
      case RecordType::kStats:
        hooks_->PublishStats(r.table, r.stats);
        return Status::OK();
      default:
        return Status::DataLoss(std::string("unexpected deferred record ") +
                                RecordTypeName(r.type));
    }
  }

  Status ApplyRows(const Record& r) {
    rel::Table* table = hooks_->FindTable(r.table);
    if (table == nullptr) {
      return Status::DataLoss("WAL row batch for unknown table '" + r.table +
                              "'");
    }
    size_t cur = table->row_count();
    if (r.first_rowid < cur) {
      // Already applied (checkpoint overlap or a second replay pass). A
      // *partial* overlap would mean a half-durable batch, which the
      // batch-boundary checkpoint invariant rules out — treat it as
      // corruption rather than guessing.
      if (r.first_rowid + r.rows.size() > cur) {
        return Status::DataLoss(
            "WAL row batch for '" + r.table + "' straddles the applied " +
            "watermark (first_rowid " + std::to_string(r.first_rowid) +
            ", applied " + std::to_string(cur) + ")");
      }
      return Status::OK();
    }
    if (r.first_rowid > cur) {
      return Status::DataLoss(
          "gap in WAL row batches for '" + r.table + "': record expects " +
          "row count " + std::to_string(r.first_rowid) + ", table has " +
          std::to_string(cur));
    }
    if (open_ && marks_.find(table) == marks_.end()) marks_[table] = cur;
    return table->AppendRows(r.rows);
  }

  // -- WAL batch state machine ---------------------------------------------

  Status ApplyWalRecord(const Record& r) {
    if (r.lsn <= watermark_) {
      report_->skipped_records += 1;
      return Status::OK();
    }
    if (r.lsn > max_lsn_) max_lsn_ = r.lsn;
    if (r.batch_id > max_batch_) max_batch_ = r.batch_id;
    switch (r.type) {
      case RecordType::kBatchBegin:
        // A begin while a batch is open means the previous batch died
        // without even an abort record (hard crash): roll it back.
        if (open_) Rollback();
        open_ = true;
        return Status::OK();
      case RecordType::kRowBatch:
        if (!open_) {
          return Status::DataLoss("WAL row batch outside an open batch");
        }
        return ApplyRows(r);
      case RecordType::kCommit:
        if (!open_) {
          return Status::DataLoss("WAL commit without an open batch");
        }
        for (const Record& d : deferred_) XDB_RETURN_NOT_OK(ApplyDdl(d));
        CloseBatch();
        report_->committed_batches += 1;
        return Status::OK();
      case RecordType::kAbort:
        if (open_) Rollback();
        return Status::OK();
      case RecordType::kCheckpointHeader:
      case RecordType::kCheckpointFooter:
        return Status::DataLoss("checkpoint record inside the WAL");
      default:
        // DDL and stats publish only once their batch commits, mirroring
        // the live path where nothing escapes an uncommitted batch.
        if (!open_) {
          return Status::DataLoss("WAL DDL record outside an open batch");
        }
        deferred_.push_back(r);
        return Status::OK();
    }
  }

  /// End of the valid log prefix: anything still open was never committed.
  void FinishWal() {
    if (open_) Rollback();
  }

  void set_watermark(uint64_t lsn) { watermark_ = lsn; }
  uint64_t max_lsn() const { return max_lsn_ > watermark_ ? max_lsn_ : watermark_; }
  uint64_t max_batch() const { return max_batch_; }

 private:
  void Rollback() {
    for (auto& [table, mark] : marks_) (void)table->TruncateTo(mark);
    report_->rolled_back_batches += 1;
    CloseBatch();
  }
  void CloseBatch() {
    open_ = false;
    marks_.clear();
    deferred_.clear();
  }

  RecoveryHooks* hooks_;
  RecoveryReport* report_;
  uint64_t watermark_ = 0;
  uint64_t max_lsn_ = 0;
  uint64_t max_batch_ = 0;
  bool open_ = false;
  std::map<rel::Table*, size_t> marks_;
  std::vector<Record> deferred_;
};

/// Loads and applies the checkpoint file. Two passes: the file is fully
/// validated (header, footer, record count, every CRC and decode) before
/// the first record touches the catalog, so a corrupt checkpoint fails
/// recovery without leaving a half-applied state behind.
Status ReplayCheckpoint(const std::string& path, Replayer* replayer,
                        RecoveryReport* report) {
  XDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(path));
  if (reader.file_size() == 0) return Status::OK();  // no checkpoint yet
  std::vector<Record> records;
  std::string_view payload;
  while (reader.Next(&payload)) {
    XDB_ASSIGN_OR_RETURN(Record r, DecodeRecord(payload));
    records.push_back(std::move(r));
  }
  if (!reader.tail_finding().ok()) {
    return Status::DataLoss("corrupt checkpoint '" + path +
                            "': " + reader.tail_finding().message());
  }
  if (records.empty() ||
      records.front().type != RecordType::kCheckpointHeader ||
      records.back().type != RecordType::kCheckpointFooter ||
      records.back().record_count != records.size()) {
    return Status::DataLoss("incomplete checkpoint '" + path +
                            "' (missing header/footer)");
  }
  const Record& header = records.front();
  replayer->set_watermark(header.last_lsn);
  report->recovered_checkpoint = true;
  report->checkpoint_records = records.size();
  report->committed_batches += header.commits;
  for (size_t i = 1; i + 1 < records.size(); ++i) {
    const Record& r = records[i];
    Status st = r.type == RecordType::kRowBatch ? replayer->ApplyRows(r)
                                                : replayer->ApplyDdl(r);
    if (!st.ok()) {
      return Status(StatusCode::kDataLoss,
                    "checkpoint replay failed at record " + std::to_string(i) +
                        " (" + RecordTypeName(r.type) + "): " + st.ToString());
    }
  }
  return Status::OK();
}

}  // namespace

Status RunRecovery(const std::string& data_dir, RecoveryHooks* hooks,
                   RecoveryReport* report) {
  int64_t t0 = NowMs();
  Replayer replayer(hooks, report);

  // A leftover tmp is an interrupted checkpoint *write*: the previous
  // incarnation crashed before the rename, so the tmp covers nothing and
  // the log still has everything. Drop it.
  const std::string tmp = Manager::CheckpointTmpPath(data_dir);
  if (FileExists(tmp)) (void)std::remove(tmp.c_str());

  XDB_RETURN_NOT_OK(ReplayCheckpoint(Manager::CheckpointPath(data_dir),
                                     &replayer, report));

  const std::string wal_path = Manager::WalPath(data_dir);
  XDB_ASSIGN_OR_RETURN(LogReader reader, LogReader::Open(wal_path));
  std::string_view payload;
  while (reader.Next(&payload)) {
    XDB_ASSIGN_OR_RETURN(Record r, DecodeRecord(payload));
    report->replayed_records += 1;
    XDB_RETURN_NOT_OK(replayer.ApplyWalRecord(r));
  }
  replayer.FinishWal();
  report->wal_good_prefix = reader.good_prefix();
  if (!reader.tail_finding().ok()) {
    // Torn tail: record the finding (kDataLoss, surfaced in logs/reports)
    // and physically truncate so the next writer appends on a clean frame
    // boundary. Recovery itself still succeeds — the state up to the last
    // valid frame is exactly the last durable committed state.
    report->findings.push_back(reader.tail_finding());
    if (reader.file_size() > reader.good_prefix()) {
      if (::truncate(wal_path.c_str(),
                     static_cast<off_t>(reader.good_prefix())) != 0) {
        return Status::Internal("failed to truncate torn WAL tail of '" +
                                wal_path + "'");
      }
    }
  }
  report->next_lsn = replayer.max_lsn() + 1;
  report->next_batch_id = replayer.max_batch() + 1;
  report->recovery_ms = NowMs() - t0;
  return Status::OK();
}

}  // namespace xdb::wal
