# Empty dependencies file for bench_inline_stats.
# This may be replaced when dependencies are built.
