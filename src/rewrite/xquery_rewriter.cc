#include "rewrite/xquery_rewriter.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "rel/logical.h"
#include "rel/publish.h"
#include "shred/mapping.h"

namespace xdb::rewrite {

using rel::AggKind;
using rel::BinaryRelExpr;
using rel::Catalog;
using rel::ColumnRefExpr;
using rel::ConstExpr;
using rel::Datum;
using rel::LogicalApplyExpr;
using rel::LogicalFilterNode;
using rel::LogicalNode;
using rel::LogicalPlanPtr;
using rel::LogicalProjectNode;
using rel::LogicalScalarAggNode;
using rel::LogicalScanNode;
using rel::LogicalXmlAggNode;
using rel::PublishBinding;
using rel::PublishSpec;
using rel::RelExpr;
using rel::RelExprPtr;
using rel::RelOp;
using rel::Table;
using rel::XmlConcatExpr;
using rel::XmlElementExpr;
using rel::XmlView;
using schema::ChildRef;
using schema::ElementStructure;
using xquery::ElementCtorQExpr;
using xquery::FlworQExpr;
using xquery::QExpr;
using xquery::QExprKind;
using xquery::QExprPtr;
using xquery::Query;
using xquery::SequenceQExpr;
using xquery::TextLiteralQExpr;

namespace {

Status Untranslatable(const std::string& what) {
  return Status::RewriteError("XQuery->SQL rewrite: " + what);
}

// ---------------------------------------------------------------------------
// Symbolic values
// ---------------------------------------------------------------------------

struct SymEnv;

struct SymVal {
  enum class Kind {
    kUnbound,
    kDocument,     ///< the view's XML value as a document
    kElement,      ///< a specific (single-occurrence) element of the structure
    kElementSeq,   ///< repeating elements (possibly with a leaf suffix)
    kAtomic,       ///< an atomic value described by `src` under `env`
    kAttribute,    ///< an attribute of `decl` named `attr`
    kConstructed,  ///< an element constructor expression under `env`
    kFlworSeq,     ///< a FLWOR-produced sequence under `env`
  };
  Kind kind = Kind::kUnbound;
  const ElementStructure* decl = nullptr;  // kDocument/kElement: the decl;
                                           // kElementSeq: the repeating decl
  std::vector<const ElementStructure*> suffix;  // kElementSeq: path below decl
  std::vector<const xpath::Expr*> preds;        // kElementSeq: predicates
  std::string attr;                             // kAttribute
  const QExpr* src = nullptr;                   // kAtomic/kConstructed/kFlworSeq
  std::shared_ptr<SymEnv> env;

  // Structural navigation: a kElementSeq produced by a `//` or ancestor::
  // step that does not resolve to a unique child path (recursive schemas,
  // paths crossing nested repetition). The sequence is every row of `decl`'s
  // table whose (start, end) interval matches `axis` against the interval of
  // `anchor` — a table-backed element in the current scope.
  bool structural = false;
  rel::StructuralAxis axis = rel::StructuralAxis::kDescendant;
  const ElementStructure* anchor = nullptr;
};

struct SymEnv {
  std::map<std::string, SymVal> vars;
  std::shared_ptr<SymEnv> parent;

  const SymVal* Lookup(const std::string& name) const {
    auto it = vars.find(name);
    if (it != vars.end()) return &it->second;
    return parent != nullptr ? parent->Lookup(name) : nullptr;
  }
};

using SymEnvPtr = std::shared_ptr<SymEnv>;

SymEnvPtr Extend(SymEnvPtr parent) {
  auto env = std::make_shared<SymEnv>();
  env->parent = std::move(parent);
  return env;
}

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

class SqlTranslator {
 public:
  SqlTranslator(const XmlView& view, const Catalog& catalog)
      : view_(view), catalog_(catalog) {}

  Status Init() {
    if (!view_.is_publishing()) {
      return Untranslatable("view is not a publishing view");
    }
    XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(view_.base_table));
    base_ = base;
    scope_tables_.push_back(base_);
    return Status::OK();
  }

  Result<RelExprPtr> Translate(const Query& query) {
    auto env = std::make_shared<SymEnv>();
    SymVal doc;
    doc.kind = SymVal::Kind::kDocument;
    doc.decl = view_.info->structure.root();
    context_ = doc;
    if (!query.functions.empty()) {
      return Untranslatable("queries with function declarations (non-inline "
                            "rewrite mode) stay at the XQuery stage");
    }
    for (const auto& decl : query.variables) {
      XDB_ASSIGN_OR_RETURN(SymVal v, EvalSym(*decl.expr, env));
      env->vars[decl.name] = std::move(v);
    }
    return TranslateValue(*query.body, env);
  }

 private:
  // ---- scope machinery ------------------------------------------------------

  // Relational scope chain: entered Nested specs, innermost last.
  const PublishBinding* BindingOf(const ElementStructure* decl) const {
    auto it = view_.info->bindings.find(decl);
    return it != view_.info->bindings.end() ? &it->second : nullptr;
  }

  // Column reference for a column owned by the scope at nesting length L
  // (0 = base table). Fails when that scope is not currently entered.
  Result<RelExprPtr> ColumnAt(size_t chain_len, const std::string& column) {
    if (chain_len > scope_chain_.size()) {
      return Untranslatable("value of repeating content used outside its "
                            "iteration scope");
    }
    if (chain_len < structural_floor_) {
      // Scopes outside a structural join are not on its execution stack.
      return Untranslatable("reference across a structural-join scope");
    }
    const Table* table = chain_len == 0 ? base_ : scope_tables_[chain_len];
    int ci = table->schema().ColumnIndex(column);
    if (ci < 0) {
      return Untranslatable("no column '" + column + "' in " + table->name());
    }
    int level = static_cast<int>(scope_chain_.size() - chain_len);
    return RelExprPtr(std::make_unique<ColumnRefExpr>(
        level, ci, table->name() + "." + column));
  }

  // Verifies decl's binding chain is a prefix of (or equal to) the current
  // scope chain and returns its length.
  Result<size_t> ChainLenOf(const ElementStructure* decl) {
    const PublishBinding* binding = BindingOf(decl);
    if (binding == nullptr) return Untranslatable("element without provenance");
    const auto& chain = binding->nested_chain;
    if (chain.size() > scope_chain_.size()) {
      return Untranslatable("repeating element referenced outside a FLWOR "
                            "iteration");
    }
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] != scope_chain_[i]) {
        return Untranslatable("element referenced from an unrelated scope");
      }
    }
    return chain.size();
  }

  // String value of a leaf element: concatenation of its Column/Text parts.
  Result<RelExprPtr> LeafValue(const ElementStructure* decl) {
    const PublishBinding* binding = BindingOf(decl);
    if (binding == nullptr) return Untranslatable("element without provenance");
    XDB_ASSIGN_OR_RETURN(size_t chain_len, ChainLenOf(decl));
    RelExprPtr out;
    for (const auto& part : binding->spec->children) {
      RelExprPtr piece;
      if (part->kind == PublishSpec::Kind::kColumn) {
        XDB_ASSIGN_OR_RETURN(piece, ColumnAt(chain_len, part->column));
      } else if (part->kind == PublishSpec::Kind::kText) {
        piece = std::make_unique<ConstExpr>(Datum(part->text));
      } else {
        return Untranslatable("string value of complex content");
      }
      out = out == nullptr
                ? std::move(piece)
                : std::make_unique<BinaryRelExpr>(RelOp::kConcat, std::move(out),
                                                  std::move(piece));
    }
    if (out == nullptr) out = std::make_unique<ConstExpr>(Datum(""));
    return out;
  }

  // Attribute value of an element.
  Result<RelExprPtr> AttrValue(const ElementStructure* decl,
                               const std::string& attr) {
    const PublishBinding* binding = BindingOf(decl);
    if (binding == nullptr) return Untranslatable("element without provenance");
    XDB_ASSIGN_OR_RETURN(size_t chain_len, ChainLenOf(decl));
    for (const auto& [name, col] : binding->spec->attr_columns) {
      if (name == attr) return ColumnAt(chain_len, col);
    }
    return Untranslatable("no attribute '" + attr + "' on " + decl->name);
  }

  // ---- symbolic evaluation ----------------------------------------------------

  Result<SymVal> EvalSym(const QExpr& e, const SymEnvPtr& env) {
    switch (e.kind()) {
      case QExprKind::kXPath: {
        const auto& x = static_cast<const xquery::XPathQExpr&>(e);
        return EvalSymXPath(*x.expr, env, &e);
      }
      case QExprKind::kElementCtor: {
        SymVal v;
        v.kind = SymVal::Kind::kConstructed;
        v.src = &e;
        v.env = env;
        return v;
      }
      case QExprKind::kFlwor: {
        const auto& f = static_cast<const FlworQExpr&>(e);
        bool has_for = false;
        for (const auto& c : f.clauses) {
          if (c.kind == FlworQExpr::Clause::Kind::kFor) has_for = true;
        }
        if (!has_for) {
          // Pure let-chain: bind and look through.
          SymEnvPtr inner = Extend(env);
          for (const auto& c : f.clauses) {
            XDB_ASSIGN_OR_RETURN(SymVal v, EvalSym(*c.expr, inner));
            inner->vars[c.var] = std::move(v);
          }
          return EvalSym(*f.return_expr, inner);
        }
        SymVal v;
        v.kind = SymVal::Kind::kFlworSeq;
        v.src = &e;
        v.env = env;
        return v;
      }
      case QExprKind::kSequence: {
        const auto& s = static_cast<const SequenceQExpr&>(e);
        if (s.items.size() == 1) return EvalSym(*s.items[0], env);
        SymVal v;
        v.kind = SymVal::Kind::kAtomic;
        v.src = &e;
        v.env = env;
        return v;
      }
      default: {
        SymVal v;
        v.kind = SymVal::Kind::kAtomic;
        v.src = &e;
        v.env = env;
        return v;
      }
    }
  }

  Result<SymVal> EvalSymXPath(const xpath::Expr& e, const SymEnvPtr& env,
                              const QExpr* wrapper) {
    using namespace xpath;
    if (e.kind() == ExprKind::kVariableRef) {
      const auto& var = static_cast<const VariableRefExpr&>(e);
      const SymVal* bound = env->Lookup(var.name);
      if (bound == nullptr) return Untranslatable("unbound variable $" + var.name);
      return *bound;
    }
    if (e.kind() == ExprKind::kPath) {
      return NavigatePath(static_cast<const PathExpr&>(e), env);
    }
    SymVal v;
    v.kind = SymVal::Kind::kAtomic;
    v.src = wrapper;
    v.env = env;
    return v;
  }

  Result<SymVal> NavigatePath(const xpath::PathExpr& path, const SymEnvPtr& env) {
    using namespace xpath;
    SymVal cur;
    if (path.start != nullptr) {
      XDB_ASSIGN_OR_RETURN(
          cur, EvalSymXPath(*path.start, env, /*wrapper=*/nullptr));
    } else {
      cur = context_;  // "." or an absolute path: the view value
    }
    if (!path.start_predicates.empty()) {
      if (cur.kind != SymVal::Kind::kElementSeq) {
        return Untranslatable("filter predicate on non-repeating value");
      }
      for (const auto& p : path.start_predicates) cur.preds.push_back(p.get());
    }
    bool descendant = false;
    for (const Step& step : path.steps) {
      if (step.axis == Axis::kDescendantOrSelf &&
          step.test.kind == NodeTest::Kind::kAnyNode && step.predicates.empty()) {
        descendant = true;
        continue;
      }
      if (step.axis == Axis::kSelf && step.test.kind == NodeTest::Kind::kAnyNode) {
        continue;  // "."
      }
      XDB_ASSIGN_OR_RETURN(cur, NavigateStep(cur, step, descendant, env));
      descendant = false;
    }
    return cur;
  }

  Result<SymVal> NavigateStep(SymVal cur, const xpath::Step& step,
                              bool descendant, const SymEnvPtr& env) {
    using namespace xpath;
    if (step.axis == Axis::kAttribute) {
      if (step.test.kind != NodeTest::Kind::kName) {
        return Untranslatable("unsupported attribute navigation");
      }
      if (cur.kind == SymVal::Kind::kElement) {
        SymVal v;
        v.kind = SymVal::Kind::kAttribute;
        v.decl = cur.decl;
        v.attr = step.test.local;
        (void)env;
        return v;
      }
      if (cur.kind == SymVal::Kind::kConstructed) {
        // Attribute of a constructed element: its (single) value part.
        const auto* ctor = static_cast<const ElementCtorQExpr*>(cur.src);
        for (const auto& attr : ctor->attributes) {
          if (attr.name != step.test.local) continue;
          if (attr.value_parts.size() != 1) {
            return Untranslatable("multi-part constructed attribute value");
          }
          SymVal v;
          v.kind = SymVal::Kind::kAtomic;
          v.src = attr.value_parts[0].get();
          v.env = cur.env;
          return v;
        }
        return Untranslatable("no attribute '" + step.test.local +
                              "' on constructed element");
      }
      return Untranslatable("unsupported attribute navigation");
    }
    if (step.axis == Axis::kAncestor &&
        step.test.kind == NodeTest::Kind::kName) {
      // Structural: every row of the named table whose interval contains the
      // anchor's interval.
      if (cur.kind != SymVal::Kind::kElement) {
        return Untranslatable("ancestor:: from a non-element context");
      }
      return MakeStructuralSym(cur.decl, step.test.local,
                               rel::StructuralAxis::kAncestor, step);
    }
    if (step.axis == Axis::kDescendant &&
        step.test.kind == NodeTest::Kind::kName) {
      descendant = true;  // spelled-out descendant::name == `//name`
    } else if (step.axis != Axis::kChild) {
      return Untranslatable("axis '" + std::string(AxisName(step.axis)) +
                            "' is outside the translatable subset");
    }
    if (step.test.kind != NodeTest::Kind::kName) {
      return Untranslatable("non-name node test in navigation");
    }
    const std::string& name = step.test.local;

    switch (cur.kind) {
      case SymVal::Kind::kDocument: {
        if (cur.decl != nullptr && cur.decl->name == name && !descendant) {
          SymVal v;
          v.kind = SymVal::Kind::kElement;
          v.decl = cur.decl;
          if (!step.predicates.empty()) {
            return Untranslatable("predicate on the root element");
          }
          return v;
        }
        if (descendant) {
          SymVal root;
          root.kind = SymVal::Kind::kElement;
          root.decl = cur.decl;
          return DescendantNavigate(root, name, step);
        }
        return Untranslatable("no child '" + name + "' under document");
      }
      case SymVal::Kind::kElement: {
        if (descendant) return DescendantNavigate(cur, name, step);
        const ChildRef* child = cur.decl->FindChild(name);
        if (child == nullptr) {
          return Untranslatable("no child '" + name + "' under " +
                                cur.decl->name);
        }
        return MakeChildSym(*child, step);
      }
      case SymVal::Kind::kElementSeq: {
        // Extend the leaf suffix below the repeating element.
        const ElementStructure* tail =
            cur.suffix.empty() ? cur.decl : cur.suffix.back();
        const ChildRef* child = tail->FindChild(name);
        if (child == nullptr || descendant) {
          return Untranslatable("unsupported navigation below repeating "
                                "content");
        }
        if (child->repeating()) {
          return Untranslatable("nested repetition in one navigation");
        }
        if (!step.predicates.empty()) {
          return Untranslatable("predicate below repeating content");
        }
        cur.suffix.push_back(child->elem);
        return cur;
      }
      case SymVal::Kind::kConstructed:
        return NavigateConstructed(cur, name);
      default:
        return Untranslatable("navigation into a non-node value");
    }
  }

  Result<SymVal> MakeChildSym(const ChildRef& child, const xpath::Step& step) {
    SymVal v;
    if (child.repeating() || child.optional()) {
      v.kind = SymVal::Kind::kElementSeq;
      v.decl = child.elem;
      for (const auto& p : step.predicates) v.preds.push_back(p.get());
      return v;
    }
    if (!step.predicates.empty()) {
      return Untranslatable("predicate on a non-repeating child");
    }
    v.kind = SymVal::Kind::kElement;
    v.decl = child.elem;
    return v;
  }

  // "//name" below `cur`: the unique reachable decl named `name`. When the
  // lexical resolution fails (recursive schemas, several occurrences, paths
  // crossing more than one repeating level), fall back to a structural
  // descendant-axis sequence — the interval join finds the rows the static
  // path analysis cannot name.
  Result<SymVal> DescendantNavigate(const SymVal& cur, const std::string& name,
                                    const xpath::Step& step) {
    // A recursive edge targeting `name` anywhere below the anchor means the
    // lexical path misses the nested occurrences: the target can sit below
    // itself, so only the interval join enumerates it completely.
    bool recursive_target = false;
    {
      std::set<const ElementStructure*> seen;
      std::function<void(const ElementStructure*)> scan =
          [&](const ElementStructure* e) {
            if (e == nullptr || !seen.insert(e).second) return;
            for (const ChildRef& c : e->children) {
              if (c.recursive_edge) {
                if (c.elem->name == name) recursive_target = true;
                continue;
              }
              scan(c.elem);
            }
          };
      scan(cur.decl);
    }
    std::vector<const ChildRef*> path;
    bool found = false;
    std::function<bool(const ElementStructure*)> dfs =
        [&](const ElementStructure* e) -> bool {
      for (const ChildRef& c : e->children) {
        if (c.recursive_edge) continue;
        path.push_back(&c);
        if (c.elem->name == name) {
          if (found) return false;  // ambiguous
          found = true;
          return true;
        }
        if (dfs(c.elem)) return true;
        path.pop_back();
      }
      return false;
    };
    if (cur.decl == nullptr || !dfs(cur.decl) || recursive_target) {
      return MakeStructuralSym(cur.decl, name,
                               rel::StructuralAxis::kDescendant, step,
                               "'//" + name + "' has no unique target");
    }
    // Count repeating crossings.
    const ChildRef* repeat = nullptr;
    for (const ChildRef* c : path) {
      if (c->repeating() || c->optional()) {
        if (repeat != nullptr) {
          return MakeStructuralSym(
              cur.decl, name, rel::StructuralAxis::kDescendant, step,
              "'//" + name + "' crosses nested repetition");
        }
        repeat = c;
      }
    }
    SymVal v;
    if (repeat == nullptr) {
      if (!step.predicates.empty()) {
        return Untranslatable("predicate on non-repeating '//' target");
      }
      v.kind = SymVal::Kind::kElement;
      v.decl = path.back()->elem;
      return v;
    }
    v.kind = SymVal::Kind::kElementSeq;
    v.decl = repeat->elem;
    bool below = false;
    for (const ChildRef* c : path) {
      if (below) v.suffix.push_back(c->elem);
      if (c == repeat) below = true;
    }
    for (const auto& p : step.predicates) v.preds.push_back(p.get());
    if (!v.suffix.empty() && !step.predicates.empty()) {
      return Untranslatable("predicate below repeating content");
    }
    return v;
  }

  // ---- structural (interval) navigation --------------------------------------

  // A decl whose occurrences are exactly the rows of one shredded table —
  // the row element of its innermost nested scope (the base table for the
  // root). Only such decls carry (start, end, level) interval columns a
  // structural join can scan.
  bool IsTableWorthy(const ElementStructure* decl) const {
    const PublishBinding* b = BindingOf(decl);
    if (b == nullptr) return false;
    if (b->nested_chain.empty()) {
      return decl == view_.info->structure.root();
    }
    const PublishSpec* nested = b->nested_chain.back();
    return nested->row_element != nullptr &&
           nested->row_element.get() == b->spec;
  }

  // Builds the structural sequence for `axis::name` anchored at `anchor`.
  // Requires a table-backed anchor and a unique table-backed decl named
  // `name` (rows of other decls with that name would be invisible to the
  // interval join, so any such decl rejects the rewrite to plan B).
  Result<SymVal> MakeStructuralSym(const ElementStructure* anchor,
                                   const std::string& name,
                                   rel::StructuralAxis axis,
                                   const xpath::Step& step,
                                   const std::string& lexical_error = "") {
    auto fail = [&](const std::string& why) {
      return Untranslatable(
          lexical_error.empty() ? why : lexical_error + " (" + why + ")");
    };
    if (anchor == nullptr || !IsTableWorthy(anchor)) {
      return fail("structural axis anchored at an element without its own "
                  "table");
    }
    const ElementStructure* target = nullptr;
    bool ambiguous = false;
    bool untabled = false;
    std::set<const ElementStructure*> seen;
    std::function<void(const ElementStructure*)> scan =
        [&](const ElementStructure* e) {
          if (e == nullptr || !seen.insert(e).second) return;
          if (e->name == name) {
            if (target != nullptr) ambiguous = true;
            if (!IsTableWorthy(e)) untabled = true;
            target = e;
          }
          for (const ChildRef& c : e->children) {
            if (!c.recursive_edge) scan(c.elem);
          }
        };
    scan(view_.info->structure.root());
    if (target == nullptr) return fail("no element '" + name + "' in view");
    if (ambiguous) {
      return fail("several distinct elements named '" + name + "'");
    }
    if (untabled) {
      return fail("element '" + name + "' has no table of its own");
    }
    SymVal v;
    v.kind = SymVal::Kind::kElementSeq;
    v.decl = target;
    v.structural = true;
    v.axis = axis;
    v.anchor = anchor;
    for (const auto& p : step.predicates) v.preds.push_back(p.get());
    return v;
  }

  // Navigation into a constructed element: find the unique child production
  // named `name` among the constructor's content.
  Result<SymVal> NavigateConstructed(const SymVal& cur, const std::string& name) {
    const auto* ctor = static_cast<const ElementCtorQExpr*>(cur.src);
    std::vector<SymVal> matches;
    XDB_RETURN_NOT_OK(CollectMatches(ctor->children, cur.env, name, &matches));
    if (matches.size() != 1) {
      return Untranslatable("navigation '" + name +
                            "' into constructed content is not unique (" +
                            std::to_string(matches.size()) + " matches)");
    }
    return matches[0];
  }

  Status CollectMatches(const std::vector<QExprPtr>& items, const SymEnvPtr& env,
                        const std::string& name, std::vector<SymVal>* out) {
    for (const auto& item : items) {
      XDB_RETURN_NOT_OK(CollectMatchesOne(*item, env, name, out));
    }
    return Status::OK();
  }

  Status CollectMatchesOne(const QExpr& e, const SymEnvPtr& env,
                           const std::string& name, std::vector<SymVal>* out) {
    switch (e.kind()) {
      case QExprKind::kElementCtor: {
        const auto& ctor = static_cast<const ElementCtorQExpr&>(e);
        if (ctor.name == name) {
          SymVal v;
          v.kind = SymVal::Kind::kConstructed;
          v.src = &e;
          v.env = env;
          out->push_back(std::move(v));
        }
        return Status::OK();
      }
      case QExprKind::kSequence: {
        const auto& s = static_cast<const SequenceQExpr&>(e);
        return CollectMatches(s.items, env, name, out);
      }
      case QExprKind::kFlwor: {
        const auto& f = static_cast<const FlworQExpr&>(e);
        bool has_for = false;
        for (const auto& c : f.clauses) {
          if (c.kind == FlworQExpr::Clause::Kind::kFor) has_for = true;
        }
        if (!has_for) {
          SymEnvPtr inner = Extend(env);
          for (const auto& c : f.clauses) {
            XDB_ASSIGN_OR_RETURN(SymVal v, EvalSym(*c.expr, inner));
            inner->vars[c.var] = std::move(v);
          }
          return CollectMatchesOne(*f.return_expr, inner, name, out);
        }
        // A for-loop producing `name` elements per iteration.
        if (ProducesElement(*f.return_expr, name)) {
          SymVal v;
          v.kind = SymVal::Kind::kFlworSeq;
          v.src = &e;
          v.env = env;
          out->push_back(std::move(v));
        }
        return Status::OK();
      }
      case QExprKind::kXPath: {
        const auto& x = static_cast<const xquery::XPathQExpr&>(e);
        auto sym = EvalSymXPath(*x.expr, env, &e);
        if (!sym.ok()) return Status::OK();  // opaque content: no match
        if ((sym->kind == SymVal::Kind::kElement ||
             sym->kind == SymVal::Kind::kElementSeq) &&
            sym->decl != nullptr) {
          const ElementStructure* target =
              sym->suffix.empty() ? sym->decl : sym->suffix.back();
          if (target->name == name) out->push_back(std::move(*sym));
        }
        return Status::OK();
      }
      case QExprKind::kTextCtor:
      case QExprKind::kTextLiteral:
        return Status::OK();
      default:
        return Status::OK();  // if/instance-of/...: no structural match
    }
  }

  // Does the expression (through let-wrappers) construct an element `name`?
  static bool ProducesElement(const QExpr& e, const std::string& name) {
    switch (e.kind()) {
      case QExprKind::kElementCtor:
        return static_cast<const ElementCtorQExpr&>(e).name == name;
      case QExprKind::kSequence: {
        const auto& s = static_cast<const SequenceQExpr&>(e);
        for (const auto& i : s.items) {
          if (ProducesElement(*i, name)) return true;
        }
        return false;
      }
      case QExprKind::kFlwor:
        return ProducesElement(*static_cast<const FlworQExpr&>(e).return_expr,
                               name);
      default:
        return false;
    }
  }

  // ---- value translation -----------------------------------------------------

  Result<RelExprPtr> TranslateValue(const QExpr& e, const SymEnvPtr& env) {
    switch (e.kind()) {
      case QExprKind::kTextLiteral:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const TextLiteralQExpr&>(e).text)));
      case QExprKind::kTextCtor:
        return TranslateValue(*static_cast<const xquery::TextCtorQExpr&>(e).value,
                              env);
      case QExprKind::kSequence: {
        const auto& s = static_cast<const SequenceQExpr&>(e);
        auto concat = std::make_unique<XmlConcatExpr>();
        for (const auto& item : s.items) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr c, TranslateValue(*item, env));
          concat->children.push_back(std::move(c));
        }
        return RelExprPtr(std::move(concat));
      }
      case QExprKind::kElementCtor:
        return TranslateCtor(static_cast<const ElementCtorQExpr&>(e), env);
      case QExprKind::kIf: {
        const auto& f = static_cast<const xquery::IfQExpr&>(e);
        auto c = std::make_unique<rel::CaseRelExpr>();
        rel::CaseRelExpr::Branch branch;
        XDB_ASSIGN_OR_RETURN(branch.cond, TranslateScalar(*f.cond, env));
        XDB_ASSIGN_OR_RETURN(branch.value, TranslateValue(*f.then_expr, env));
        c->branches.push_back(std::move(branch));
        if (f.else_expr != nullptr) {
          XDB_ASSIGN_OR_RETURN(c->else_value, TranslateValue(*f.else_expr, env));
        }
        return RelExprPtr(std::move(c));
      }
      case QExprKind::kFlwor:
        return TranslateFlwor(static_cast<const FlworQExpr&>(e), env);
      case QExprKind::kXPath: {
        // Node-valued navigation copies (rebuild); otherwise scalar.
        const auto& x = static_cast<const xquery::XPathQExpr&>(e);
        auto sym = EvalSymXPath(*x.expr, env, &e);
        if (sym.ok()) {
          if (sym->kind == SymVal::Kind::kElement) {
            return RebuildElement(sym->decl);
          }
          if (sym->kind == SymVal::Kind::kElementSeq) {
            return RebuildSequence(*sym);
          }
          if (sym->kind == SymVal::Kind::kConstructed) {
            return TranslateCtor(
                *static_cast<const ElementCtorQExpr*>(sym->src), sym->env);
          }
        }
        return TranslateScalar(e, env);
      }
      case QExprKind::kAttributeCtor:
        return Untranslatable("computed attribute outside element constructor");
      default:
        return Untranslatable("expression kind outside the translatable subset");
    }
  }

  Result<RelExprPtr> TranslateCtor(const ElementCtorQExpr& ctor,
                                   const SymEnvPtr& env) {
    auto elem = std::make_unique<XmlElementExpr>(ctor.name);
    for (const auto& attr : ctor.attributes) {
      RelExprPtr value;
      for (const auto& part : attr.value_parts) {
        XDB_ASSIGN_OR_RETURN(RelExprPtr piece, TranslateScalar(*part, env));
        value = value == nullptr
                    ? std::move(piece)
                    : std::make_unique<BinaryRelExpr>(
                          RelOp::kConcat, std::move(value), std::move(piece));
      }
      if (value == nullptr) value = std::make_unique<ConstExpr>(Datum(""));
      elem->attributes.emplace_back(attr.name, std::move(value));
    }
    for (const auto& child : ctor.children) {
      if (child->kind() == QExprKind::kAttributeCtor) {
        const auto& a = static_cast<const xquery::AttributeCtorQExpr&>(*child);
        XDB_ASSIGN_OR_RETURN(RelExprPtr value, TranslateScalar(*a.value, env));
        elem->attributes.emplace_back(a.name, std::move(value));
        continue;
      }
      XDB_ASSIGN_OR_RETURN(RelExprPtr c, TranslateValue(*child, env));
      elem->children.push_back(std::move(c));
    }
    return RelExprPtr(std::move(elem));
  }

  // Rebuilds a copied element from its publishing spec within current scope.
  Result<RelExprPtr> RebuildElement(const ElementStructure* decl) {
    const PublishBinding* binding = BindingOf(decl);
    if (binding == nullptr) return Untranslatable("copy of unmapped element");
    XDB_ASSIGN_OR_RETURN(size_t chain_len, ChainLenOf(decl));
    std::vector<const Table*> tables(scope_tables_.begin(),
                                     scope_tables_.begin() + chain_len + 1);
    // Elements below the current scope rebuild with the full subtree
    // (including their own nested aggregations), as logical plans.
    return rel::CompileLogicalPublishSubtree(*binding->spec, catalog_, tables);
  }

  // Rebuilds a repeating sequence copy: XMLAgg over the repeat scope.
  Result<RelExprPtr> RebuildSequence(const SymVal& seq) {
    return TranslateSeqAggregate(
        seq, [this, &seq]() -> Result<RelExprPtr> {
          const ElementStructure* target =
              seq.suffix.empty() ? seq.decl : seq.suffix.back();
          return RebuildElement(target);
        },
        /*agg=*/std::nullopt, nullptr);
  }

  // ---- scalars -----------------------------------------------------------------

  Result<RelExprPtr> TranslateScalar(const QExpr& e, const SymEnvPtr& env) {
    switch (e.kind()) {
      case QExprKind::kTextLiteral:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const TextLiteralQExpr&>(e).text)));
      case QExprKind::kTextCtor:
        return TranslateScalar(
            *static_cast<const xquery::TextCtorQExpr&>(e).value, env);
      case QExprKind::kXPath:
        return TranslateScalarXPath(
            *static_cast<const xquery::XPathQExpr&>(e).expr, env);
      case QExprKind::kIf: {
        const auto& f = static_cast<const xquery::IfQExpr&>(e);
        auto c = std::make_unique<rel::CaseRelExpr>();
        rel::CaseRelExpr::Branch branch;
        XDB_ASSIGN_OR_RETURN(branch.cond, TranslateScalar(*f.cond, env));
        XDB_ASSIGN_OR_RETURN(branch.value, TranslateScalar(*f.then_expr, env));
        c->branches.push_back(std::move(branch));
        if (f.else_expr != nullptr) {
          XDB_ASSIGN_OR_RETURN(c->else_value, TranslateScalar(*f.else_expr, env));
        }
        return RelExprPtr(std::move(c));
      }
      default:
        return Untranslatable("non-scalar expression in scalar position");
    }
  }

  Result<RelExprPtr> TranslateScalarXPath(const xpath::Expr& e,
                                          const SymEnvPtr& env) {
    using namespace xpath;
    switch (e.kind()) {
      case ExprKind::kLiteral:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const LiteralExpr&>(e).value)));
      case ExprKind::kNumber:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const NumberExpr&>(e).value)));
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        XDB_ASSIGN_OR_RETURN(RelExprPtr inner,
                             TranslateScalarXPath(*u.operand, env));
        return RelExprPtr(std::make_unique<BinaryRelExpr>(
            RelOp::kMinus, std::make_unique<ConstExpr>(Datum(0.0)),
            std::move(inner)));
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        RelOp op;
        switch (b.op) {
          case BinaryOp::kEq:
            op = RelOp::kEq;
            break;
          case BinaryOp::kNe:
            op = RelOp::kNe;
            break;
          case BinaryOp::kLt:
            op = RelOp::kLt;
            break;
          case BinaryOp::kLe:
            op = RelOp::kLe;
            break;
          case BinaryOp::kGt:
            op = RelOp::kGt;
            break;
          case BinaryOp::kGe:
            op = RelOp::kGe;
            break;
          case BinaryOp::kAnd:
            op = RelOp::kAnd;
            break;
          case BinaryOp::kOr:
            op = RelOp::kOr;
            break;
          case BinaryOp::kPlus:
            op = RelOp::kPlus;
            break;
          case BinaryOp::kMinus:
            op = RelOp::kMinus;
            break;
          case BinaryOp::kMultiply:
            op = RelOp::kMul;
            break;
          case BinaryOp::kDiv:
            op = RelOp::kDiv;
            break;
          default:
            return Untranslatable("operator in scalar translation");
        }
        XDB_ASSIGN_OR_RETURN(RelExprPtr l, TranslateScalarXPath(*b.lhs, env));
        XDB_ASSIGN_OR_RETURN(RelExprPtr r, TranslateScalarXPath(*b.rhs, env));
        return RelExprPtr(
            std::make_unique<BinaryRelExpr>(op, std::move(l), std::move(r)));
      }
      case ExprKind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        std::string name = f.name;
        if (name.rfind("fn:", 0) == 0) name = name.substr(3);
        if ((name == "string" || name == "data" || name == "normalize-space") &&
            f.args.size() == 1) {
          return TranslateScalarXPath(*f.args[0], env);
        }
        if (name == "concat") {
          RelExprPtr out;
          for (const auto& a : f.args) {
            XDB_ASSIGN_OR_RETURN(RelExprPtr piece,
                                 TranslateScalarXPath(*a, env));
            out = out == nullptr ? std::move(piece)
                                 : std::make_unique<BinaryRelExpr>(
                                       RelOp::kConcat, std::move(out),
                                       std::move(piece));
          }
          return out != nullptr
                     ? std::move(out)
                     : RelExprPtr(std::make_unique<ConstExpr>(Datum("")));
        }
        if (name == "number" && f.args.size() == 1) {
          return TranslateScalarXPath(*f.args[0], env);
        }
        if (name == "true") {
          return RelExprPtr(std::make_unique<ConstExpr>(Datum(int64_t{1})));
        }
        if (name == "false") {
          return RelExprPtr(std::make_unique<ConstExpr>(Datum(int64_t{0})));
        }
        if (name == "not" && f.args.size() == 1) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr inner,
                               TranslateScalarXPath(*f.args[0], env));
          return RelExprPtr(std::make_unique<BinaryRelExpr>(
              RelOp::kEq, std::move(inner),
              std::make_unique<ConstExpr>(Datum(int64_t{0}))));
        }
        if ((name == "sum" || name == "count") && f.args.size() == 1) {
          XDB_ASSIGN_OR_RETURN(SymVal seq,
                               EvalSymXPath(*f.args[0], env, nullptr));
          if (seq.kind != SymVal::Kind::kElementSeq) {
            return Untranslatable(name + "() over non-repeating content");
          }
          AggKind agg = name == "sum" ? AggKind::kSum : AggKind::kCount;
          return TranslateSeqAggregate(
              seq,
              [this, &seq]() -> Result<RelExprPtr> {
                const ElementStructure* target =
                    seq.suffix.empty() ? seq.decl : seq.suffix.back();
                return LeafValue(target);
              },
              agg, nullptr);
        }
        return Untranslatable("function " + f.name + "() in scalar position");
      }
      case ExprKind::kVariableRef:
      case ExprKind::kPath: {
        XDB_ASSIGN_OR_RETURN(SymVal sym, EvalSymXPath(e, env, nullptr));
        switch (sym.kind) {
          case SymVal::Kind::kElement:
            return LeafValue(sym.decl);
          case SymVal::Kind::kAttribute:
            return AttrValue(sym.decl, sym.attr);
          case SymVal::Kind::kAtomic:
            if (sym.src != nullptr) return TranslateScalar(*sym.src, sym.env);
            return Untranslatable("opaque atomic value");
          case SymVal::Kind::kElementSeq: {
            // Existential use (e.g. in a condition) is out of scope here; a
            // scalar use takes the first item's value only when singleton.
            return Untranslatable("repeating content in scalar position");
          }
          default:
            return Untranslatable("non-scalar navigation result");
        }
      }
    }
    return Untranslatable("expression in scalar translation");
  }

  // ---- FLWOR -----------------------------------------------------------------

  struct PendingClause {
    bool is_for;
    std::string var;
    const QExpr* expr;
  };

  Result<RelExprPtr> TranslateFlwor(const FlworQExpr& f, const SymEnvPtr& env) {
    std::vector<PendingClause> clauses;
    for (const auto& c : f.clauses) {
      clauses.push_back(PendingClause{
          c.kind == FlworQExpr::Clause::Kind::kFor, c.var, c.expr.get()});
    }
    std::vector<const QExpr*> conjuncts;
    if (f.where != nullptr) conjuncts.push_back(f.where.get());
    const FlworQExpr::OrderSpec* order =
        f.order_by.empty() ? nullptr : &f.order_by[0];
    if (f.order_by.size() > 1) {
      return Untranslatable("multiple order-by keys");
    }
    return TranslatePending(clauses, 0, conjuncts, order, *f.return_expr, env);
  }

  Result<RelExprPtr> TranslatePending(std::vector<PendingClause>& clauses,
                                      size_t idx,
                                      std::vector<const QExpr*>& conjuncts,
                                      const FlworQExpr::OrderSpec* order,
                                      const QExpr& ret, SymEnvPtr env) {
    while (idx < clauses.size() && !clauses[idx].is_for) {
      SymEnvPtr inner = Extend(env);
      XDB_ASSIGN_OR_RETURN(SymVal v, EvalSym(*clauses[idx].expr, env));
      inner->vars[clauses[idx].var] = std::move(v);
      env = inner;
      ++idx;
    }
    if (idx == clauses.size()) {
      if (!conjuncts.empty()) {
        // A residual where over a let-only tail becomes CASE.
        auto c = std::make_unique<rel::CaseRelExpr>();
        rel::CaseRelExpr::Branch branch;
        RelExprPtr cond;
        for (const QExpr* w : conjuncts) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr one, TranslateScalar(*w, env));
          cond = cond == nullptr ? std::move(one)
                                 : std::make_unique<BinaryRelExpr>(
                                       RelOp::kAnd, std::move(cond),
                                       std::move(one));
        }
        branch.cond = std::move(cond);
        XDB_ASSIGN_OR_RETURN(branch.value, TranslateValue(ret, env));
        c->branches.push_back(std::move(branch));
        return RelExprPtr(std::move(c));
      }
      return TranslateValue(ret, env);
    }

    const PendingClause& clause = clauses[idx];
    XDB_ASSIGN_OR_RETURN(SymVal seq, EvalSym(*clause.expr, env));
    if (seq.kind == SymVal::Kind::kFlworSeq) {
      // Splice the producing FLWOR in front (Example 2's composition).
      const auto& inner = *static_cast<const FlworQExpr*>(seq.src);
      std::vector<PendingClause> merged;
      merged.reserve(clauses.size() + inner.clauses.size() + 1);
      for (size_t i = 0; i < idx; ++i) merged.push_back(clauses[i]);
      for (const auto& c : inner.clauses) {
        merged.push_back(PendingClause{
            c.kind == FlworQExpr::Clause::Kind::kFor, c.var, c.expr.get()});
      }
      merged.push_back(PendingClause{false, clause.var, inner.return_expr.get()});
      for (size_t i = idx + 1; i < clauses.size(); ++i) {
        merged.push_back(clauses[i]);
      }
      if (inner.where != nullptr) conjuncts.push_back(inner.where.get());
      // The inner FLWOR's closure env must be in effect for its clauses; the
      // splice is only sound when it equals the current env chain, which is
      // the case for view-composition (the inner FLWOR was built under the
      // same prolog). Conservatively proceed with the inner env.
      return TranslatePending(merged, idx, conjuncts, order, ret, seq.env);
    }
    if (seq.kind != SymVal::Kind::kElementSeq) {
      return Untranslatable("for-clause over non-repeating content");
    }

    // Enter the relational scope and translate the remainder per row.
    const ElementStructure* target =
        seq.suffix.empty() ? seq.decl : seq.suffix.back();
    auto build_value = [&]() -> Result<RelExprPtr> {
      SymEnvPtr inner = Extend(env);
      SymVal bound;
      bound.kind = SymVal::Kind::kElement;
      bound.decl = target;
      inner->vars[clause.var] = std::move(bound);
      std::vector<const QExpr*> no_conjuncts;  // consumed below as filters
      return TranslatePending(clauses, idx + 1, no_conjuncts, nullptr, ret,
                              inner);
    };
    // `where` conjuncts that reference the loop variable translate inside the
    // scope as filters.
    return TranslateSeqAggregate(seq, build_value, std::nullopt, order,
                                 &conjuncts, &clause.var);
  }

  // ---- the core scope-entry + aggregation builder ----------------------------

  // Builds: LogicalApply( XmlAgg|ScalarAgg ( Project [value]
  //           ( Filter(corr AND p1 AND ... AND pn) ( Scan(child_table) )) ) )
  // One Filter carries the whole conjunction (correlation predicate first);
  // the optimizer's predicate-pushdown rule splits it, and index-range-scan
  // chooses the access path.
  //
  // Correlation-first contract: the leading conjunct is always the single
  // equi-predicate `child.inner_key = <outer column ref at level 1>` tying
  // the scan to its immediate enclosing scope (the structural lineage edge,
  // typically parent_rowid = rowid). This is the join-graph-isolation handle
  // the optimizer's join-lowering rule keys on: any apply of this shape with
  // exactly one such conjunct unnests into a LogicalJoinNode (the remaining
  // conjuncts become join residuals). Deeper outer references (level >= 2)
  // are allowed anywhere in the conjunction but never in the correlation
  // slot — TranslateSeqAggregate only ever correlates one level up.
  Result<RelExprPtr> TranslateSeqAggregate(
      const SymVal& seq, const std::function<Result<RelExprPtr>()>& build_value,
      std::optional<AggKind> agg, const FlworQExpr::OrderSpec* order,
      std::vector<const QExpr*>* where_conjuncts = nullptr,
      const std::string* loop_var = nullptr) {
    if (seq.structural) {
      return TranslateStructuralAggregate(seq, build_value, agg, order,
                                          where_conjuncts, loop_var);
    }
    const PublishBinding* binding = BindingOf(seq.decl);
    if (binding == nullptr || binding->nested_chain.empty()) {
      return Untranslatable("repeating element without a nested scope");
    }
    const PublishSpec* nested = binding->nested_chain.back();
    // The chain above the nested spec must match the current scope.
    if (binding->nested_chain.size() != scope_chain_.size() + 1) {
      return Untranslatable("iteration scope depth mismatch");
    }
    for (size_t i = 0; i < scope_chain_.size(); ++i) {
      if (binding->nested_chain[i] != scope_chain_[i]) {
        return Untranslatable("iteration from an unrelated scope");
      }
    }
    XDB_ASSIGN_OR_RETURN(Table * child, catalog_.GetTable(nested->child_table));

    // Enter scope.
    scope_chain_.push_back(nested);
    scope_tables_.push_back(child);
    auto cleanup = [&]() {
      scope_chain_.pop_back();
      scope_tables_.pop_back();
    };

    // Correlation predicate, first in the conjunction.
    RelExprPtr predicate;
    {
      int inner_ci = child->schema().ColumnIndex(nested->inner_key);
      auto outer = ColumnAtOuter(nested->outer_key);
      if (!outer.ok() || inner_ci < 0) {
        cleanup();
        return !outer.ok() ? outer.status()
                           : Untranslatable("bad correlation key");
      }
      predicate = std::make_unique<BinaryRelExpr>(
          RelOp::kEq,
          std::make_unique<ColumnRefExpr>(0, inner_ci,
                                          child->name() + "." + nested->inner_key),
          outer.MoveValue());
    }

    // Conjoin value predicates: navigation predicates (relative to the
    // repeating element) + where conjuncts.
    auto translate_preds = [&]() -> Status {
      for (const xpath::Expr* p : seq.preds) {
        XDB_ASSIGN_OR_RETURN(RelExprPtr pred,
                             TranslateRelativePredicate(*p, seq.decl));
        predicate = std::make_unique<BinaryRelExpr>(
            RelOp::kAnd, std::move(predicate), std::move(pred));
      }
      if (where_conjuncts != nullptr && loop_var != nullptr) {
        SymEnvPtr env = std::make_shared<SymEnv>();
        SymVal bound;
        bound.kind = SymVal::Kind::kElement;
        bound.decl = seq.decl;
        env->vars[*loop_var] = std::move(bound);
        for (const QExpr* w : *where_conjuncts) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr pred, TranslateScalar(*w, env));
          predicate = std::make_unique<BinaryRelExpr>(
              RelOp::kAnd, std::move(predicate), std::move(pred));
        }
      }
      return Status::OK();
    };
    Status st = translate_preds();
    if (!st.ok()) {
      cleanup();
      return st;
    }

    LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(child);
    plan = std::make_unique<LogicalFilterNode>(std::move(plan),
                                               std::move(predicate));

    // Value expression per row (COUNT needs no value).
    RelExprPtr value_expr;
    if (!(agg.has_value() && *agg == AggKind::kCount)) {
      auto value = build_value();
      if (!value.ok()) {
        cleanup();
        return value.status();
      }
      value_expr = value.MoveValue();
    }

    if (agg.has_value()) {
      plan = std::make_unique<LogicalScalarAggNode>(std::move(plan), *agg,
                                                    std::move(value_expr));
      cleanup();
      return RelExprPtr(std::make_unique<LogicalApplyExpr>(
          std::shared_ptr<LogicalNode>(std::move(plan))));
    }

    std::vector<RelExprPtr> exprs;
    exprs.push_back(std::move(value_expr));
    RelExprPtr order_ref;
    bool order_desc = false;
    if (order != nullptr) {
      SymEnvPtr env = std::make_shared<SymEnv>();
      if (loop_var != nullptr) {
        SymVal bound;
        bound.kind = SymVal::Kind::kElement;
        bound.decl = seq.decl;
        env->vars[*loop_var] = std::move(bound);
      }
      auto key = TranslateScalar(*order->key, env);
      if (!key.ok()) {
        cleanup();
        return key.status();
      }
      exprs.push_back(key.MoveValue());
      order_ref = std::make_unique<ColumnRefExpr>(0, 1, "sort_key");
      order_desc = order->descending;
    } else if (!nested->order_by_column.empty()) {
      // The view's document order is defined by the spec's order column;
      // re-establish it regardless of the access path.
      int oc = child->schema().ColumnIndex(nested->order_by_column);
      if (oc < 0) {
        cleanup();
        return Untranslatable("bad spec order column");
      }
      exprs.push_back(std::make_unique<ColumnRefExpr>(
          0, oc, child->name() + "." + nested->order_by_column));
      order_ref = std::make_unique<ColumnRefExpr>(0, 1, "doc_order");
    }
    plan = std::make_unique<LogicalProjectNode>(std::move(plan),
                                                std::move(exprs));
    plan = std::make_unique<LogicalXmlAggNode>(
        std::move(plan), std::move(order_ref), order_desc);
    cleanup();
    return RelExprPtr(std::make_unique<LogicalApplyExpr>(
        std::shared_ptr<LogicalNode>(std::move(plan))));
  }

  // Structural variant of TranslateSeqAggregate: the sequence is an interval
  // axis over one shredded table, so the plan is
  //   LogicalApply( XmlAgg|ScalarAgg ( Project [value]
  //     ( Filter(p1 AND ... AND pn)? ( StructuralJoin(child_table) ))))
  // with no correlation predicate — the anchor's (start, end) columns are
  // evaluated once at the join's Open against the *enclosing* row stack, so
  // they are emitted against the current scope BEFORE the swap below.
  //
  // Scope swap: rows inside the plan are rows of the target table, whose
  // nested chain generally does not extend the current scope (that is what
  // made the navigation structural). The translator therefore re-roots its
  // scope at the target's own chain and fences everything outside it with
  // structural_floor_ — any reference to an enclosing scope's value rejects
  // the rewrite and the query stays on plan B. Document order is global here
  // (matches may span repeating parents), so XMLAgg orders by the target's
  // own `start` column, never the per-parent ordinal.
  Result<RelExprPtr> TranslateStructuralAggregate(
      const SymVal& seq, const std::function<Result<RelExprPtr>()>& build_value,
      std::optional<AggKind> agg, const FlworQExpr::OrderSpec* order,
      std::vector<const QExpr*>* where_conjuncts,
      const std::string* loop_var) {
    if (order != nullptr) {
      return Untranslatable("explicit sort over a structural axis");
    }
    // Anchor interval, in the current (pre-swap) scope.
    if (seq.anchor == nullptr || !IsTableWorthy(seq.anchor)) {
      return Untranslatable("structural anchor without interval columns");
    }
    XDB_ASSIGN_OR_RETURN(size_t anchor_len, ChainLenOf(seq.anchor));
    XDB_ASSIGN_OR_RETURN(
        RelExprPtr anchor_start,
        ColumnAt(anchor_len, std::string(shred::kStartColumn)));
    XDB_ASSIGN_OR_RETURN(RelExprPtr anchor_end,
                         ColumnAt(anchor_len, std::string(shred::kEndColumn)));

    // Target table + interval columns.
    const PublishBinding* binding = BindingOf(seq.decl);
    if (binding == nullptr || binding->nested_chain.empty()) {
      return Untranslatable("structural target without a nested scope");
    }
    XDB_ASSIGN_OR_RETURN(
        Table * child,
        catalog_.GetTable(binding->nested_chain.back()->child_table));
    int start_col =
        child->schema().ColumnIndex(std::string(shred::kStartColumn));
    int end_col =
        child->schema().ColumnIndex(std::string(shred::kEndColumn));
    int level_col =
        child->schema().ColumnIndex(std::string(shred::kLevelColumn));
    if (start_col < 0 || end_col < 0 || level_col < 0) {
      return Untranslatable("table " + child->name() +
                            " has no interval columns");
    }

    auto join = std::make_unique<rel::LogicalStructuralJoinNode>();
    join->table = child;
    join->axis = seq.axis;
    join->start_col = start_col;
    join->start_name = std::string(shred::kStartColumn);
    join->end_col = end_col;
    join->level_col = level_col;
    join->outer_start = std::move(anchor_start);
    join->outer_end = std::move(anchor_end);

    // Swap the translator's scope to the target's own chain (restored on
    // every exit path).
    struct ScopeSwap {
      SqlTranslator* t;
      std::vector<const PublishSpec*> chain;
      std::vector<const Table*> tables;
      SymVal context;
      size_t floor;
      ~ScopeSwap() {
        t->scope_chain_ = std::move(chain);
        t->scope_tables_ = std::move(tables);
        t->context_ = std::move(context);
        t->structural_floor_ = floor;
      }
    } saved{this, std::move(scope_chain_), std::move(scope_tables_),
            std::move(context_), structural_floor_};
    scope_chain_.clear();
    scope_tables_.clear();
    scope_tables_.push_back(base_);
    for (const PublishSpec* s : binding->nested_chain) {
      XDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(s->child_table));
      scope_chain_.push_back(s);
      scope_tables_.push_back(t);
    }
    structural_floor_ = scope_chain_.size();
    context_ = SymVal{};  // "." has no meaning inside the structural scope

    // Value predicates: navigation predicates + where conjuncts over the
    // loop variable, all relative to the target row.
    RelExprPtr predicate;
    auto conjoin = [&predicate](RelExprPtr p) {
      predicate = predicate == nullptr
                      ? std::move(p)
                      : std::make_unique<BinaryRelExpr>(
                            RelOp::kAnd, std::move(predicate), std::move(p));
    };
    for (const xpath::Expr* p : seq.preds) {
      XDB_ASSIGN_OR_RETURN(RelExprPtr pred,
                           TranslateRelativePredicate(*p, seq.decl));
      conjoin(std::move(pred));
    }
    if (where_conjuncts != nullptr && loop_var != nullptr) {
      SymEnvPtr env = std::make_shared<SymEnv>();
      SymVal bound;
      bound.kind = SymVal::Kind::kElement;
      bound.decl = seq.decl;
      env->vars[*loop_var] = std::move(bound);
      for (const QExpr* w : *where_conjuncts) {
        XDB_ASSIGN_OR_RETURN(RelExprPtr pred, TranslateScalar(*w, env));
        conjoin(std::move(pred));
      }
    }

    LogicalPlanPtr plan = std::move(join);
    if (predicate != nullptr) {
      plan = std::make_unique<LogicalFilterNode>(std::move(plan),
                                                 std::move(predicate));
    }

    RelExprPtr value_expr;
    if (!(agg.has_value() && *agg == AggKind::kCount)) {
      XDB_ASSIGN_OR_RETURN(value_expr, build_value());
    }

    if (agg.has_value()) {
      plan = std::make_unique<LogicalScalarAggNode>(std::move(plan), *agg,
                                                    std::move(value_expr));
      return RelExprPtr(std::make_unique<LogicalApplyExpr>(
          std::shared_ptr<LogicalNode>(std::move(plan))));
    }

    std::vector<RelExprPtr> exprs;
    exprs.push_back(std::move(value_expr));
    exprs.push_back(std::make_unique<ColumnRefExpr>(
        0, start_col, child->name() + "." + std::string(shred::kStartColumn)));
    plan = std::make_unique<LogicalProjectNode>(std::move(plan),
                                                std::move(exprs));
    plan = std::make_unique<LogicalXmlAggNode>(
        std::move(plan), std::make_unique<ColumnRefExpr>(0, 1, "doc_order"),
        /*descending=*/false);
    return RelExprPtr(std::make_unique<LogicalApplyExpr>(
        std::shared_ptr<LogicalNode>(std::move(plan))));
  }

  // Outer correlation key: resolve in the *current* scope chain (scope depth
  // includes the just-entered child at level 0).
  Result<RelExprPtr> ColumnAtOuter(const std::string& column) {
    for (size_t level = 1; level < scope_tables_.size() + 1; ++level) {
      size_t pos = scope_tables_.size() - 1 - level;
      if (pos >= scope_tables_.size()) break;  // unsigned wrap guard
      if (pos < structural_floor_) break;      // outside the structural scope
      const Table* t = scope_tables_[pos];
      int ci = t->schema().ColumnIndex(column);
      if (ci >= 0) {
        return RelExprPtr(std::make_unique<ColumnRefExpr>(
            static_cast<int>(level), ci, t->name() + "." + column));
      }
    }
    return Untranslatable("correlation key '" + column + "' not in scope");
  }

  // Predicate relative to the repeating element (translated inside its scope).
  Result<RelExprPtr> TranslateRelativePredicate(const xpath::Expr& e,
                                                const ElementStructure* decl) {
    using namespace xpath;
    switch (e.kind()) {
      case ExprKind::kLiteral:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const LiteralExpr&>(e).value)));
      case ExprKind::kNumber:
        return RelExprPtr(std::make_unique<ConstExpr>(
            Datum(static_cast<const NumberExpr&>(e).value)));
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        RelOp op;
        switch (b.op) {
          case BinaryOp::kEq:
            op = RelOp::kEq;
            break;
          case BinaryOp::kNe:
            op = RelOp::kNe;
            break;
          case BinaryOp::kLt:
            op = RelOp::kLt;
            break;
          case BinaryOp::kLe:
            op = RelOp::kLe;
            break;
          case BinaryOp::kGt:
            op = RelOp::kGt;
            break;
          case BinaryOp::kGe:
            op = RelOp::kGe;
            break;
          case BinaryOp::kAnd:
            op = RelOp::kAnd;
            break;
          case BinaryOp::kOr:
            op = RelOp::kOr;
            break;
          case BinaryOp::kPlus:
            op = RelOp::kPlus;
            break;
          case BinaryOp::kMinus:
            op = RelOp::kMinus;
            break;
          case BinaryOp::kMultiply:
            op = RelOp::kMul;
            break;
          case BinaryOp::kDiv:
            op = RelOp::kDiv;
            break;
          default:
            return Untranslatable("predicate operator");
        }
        XDB_ASSIGN_OR_RETURN(RelExprPtr l, TranslateRelativePredicate(*b.lhs, decl));
        XDB_ASSIGN_OR_RETURN(RelExprPtr r, TranslateRelativePredicate(*b.rhs, decl));
        return RelExprPtr(
            std::make_unique<BinaryRelExpr>(op, std::move(l), std::move(r)));
      }
      case ExprKind::kPath: {
        const auto& p = static_cast<const PathExpr&>(e);
        if (p.start != nullptr || p.absolute) {
          return Untranslatable("non-relative path in pushed predicate");
        }
        const ElementStructure* cur = decl;
        for (const Step& step : p.steps) {
          if (step.axis == Axis::kSelf &&
              step.test.kind == NodeTest::Kind::kAnyNode) {
            continue;  // "."
          }
          if (step.axis != Axis::kChild ||
              step.test.kind != NodeTest::Kind::kName ||
              !step.predicates.empty()) {
            return Untranslatable("complex path in pushed predicate");
          }
          const ChildRef* child = cur->FindChild(step.test.local);
          if (child == nullptr || child->repeating()) {
            return Untranslatable("predicate path outside the row scope");
          }
          cur = child->elem;
        }
        return LeafValue(cur);
      }
      case ExprKind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        std::string name = f.name;
        if (name.rfind("fn:", 0) == 0) name = name.substr(3);
        if ((name == "string" || name == "number") && f.args.size() == 1) {
          return TranslateRelativePredicate(*f.args[0], decl);
        }
        if (name == "not" && f.args.size() == 1) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr inner,
                               TranslateRelativePredicate(*f.args[0], decl));
          return RelExprPtr(std::make_unique<BinaryRelExpr>(
              RelOp::kEq, std::move(inner),
              std::make_unique<ConstExpr>(Datum(int64_t{0}))));
        }
        return Untranslatable("function in pushed predicate");
      }
      default:
        return Untranslatable("expression in pushed predicate");
    }
  }

  const XmlView& view_;
  const Catalog& catalog_;
  const Table* base_ = nullptr;
  SymVal context_;
  std::vector<const PublishSpec*> scope_chain_;
  std::vector<const Table*> scope_tables_;
  /// Scope chain positions below this index belong to scopes outside the
  /// innermost structural join: they are not on the execution stack inside
  /// its plan, so references to them reject the rewrite (plan B picks the
  /// query up). 0 whenever no structural scope is active.
  size_t structural_floor_ = 0;

};

}  // namespace

Result<SqlRewriteResult> RewriteXQueryToSql(const Query& query,
                                            const XmlView& view,
                                            const Catalog& catalog) {
  SqlRewriteResult result;
  result.base_table = view.base_table;
  SqlTranslator translator(view, catalog);
  XDB_RETURN_NOT_OK(translator.Init());
  XDB_ASSIGN_OR_RETURN(result.expr, translator.Translate(query));
  return result;
}

}  // namespace xdb::rewrite
