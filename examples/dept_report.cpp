// The paper's Example 1 (Tables 1-8), end to end: the dept/emp master-detail
// tables, the dept_emp publishing view, and the HTML-generating stylesheet of
// Table 5 — executed on all three pipeline stages, printing the intermediate
// artifacts (Table 8's XQuery, Table 7's SQL/XML) and timing each stage.
//
//   build/examples/example_dept_report
#include <chrono>
#include <cstdio>

#include "core/xmldb.h"

using xdb::ExecOptions;
using xdb::ExecStats;
using xdb::XmlDb;
using xdb::rel::DataType;
using xdb::rel::Datum;
using xdb::rel::PublishSpec;

namespace {

constexpr const char* kStylesheet = R"xsl(<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal > 2000]"/>
</table>
</xsl:template>
<xsl:template match = "emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>)xsl";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  XmlDb db;

  // Tables 1 and 2.
  db.CreateTable("dept", xdb::rel::Schema({{"deptno", DataType::kInt},
                                           {"dname", DataType::kString},
                                           {"loc", DataType::kString}}));
  db.Insert("dept", {Datum(int64_t{10}), Datum("ACCOUNTING"), Datum("NEW YORK")});
  db.Insert("dept", {Datum(int64_t{40}), Datum("OPERATIONS"), Datum("BOSTON")});
  db.CreateTable("emp", xdb::rel::Schema({{"empno", DataType::kInt},
                                          {"ename", DataType::kString},
                                          {"job", DataType::kString},
                                          {"sal", DataType::kInt},
                                          {"deptno", DataType::kInt}}));
  db.Insert("emp", {Datum(int64_t{7782}), Datum("CLARK"), Datum("MANAGER"),
                    Datum(int64_t{2450}), Datum(int64_t{10})});
  db.Insert("emp", {Datum(int64_t{7934}), Datum("MILLER"), Datum("CLERK"),
                    Datum(int64_t{1300}), Datum(int64_t{10})});
  db.Insert("emp", {Datum(int64_t{7954}), Datum("SMITH"), Datum("VP"),
                    Datum(int64_t{4900}), Datum(int64_t{40})});
  db.CreateIndex("emp", "sal");

  // Table 3: CREATE VIEW dept_emp.
  auto dept = PublishSpec::Element("dept");
  dept->AddChild(PublishSpec::Element("dname"))
      ->AddChild(PublishSpec::Column("dname"));
  dept->AddChild(PublishSpec::Element("loc"))->AddChild(PublishSpec::Column("loc"));
  auto emp = PublishSpec::Element("emp");
  emp->AddChild(PublishSpec::Element("empno"))
      ->AddChild(PublishSpec::Column("empno"));
  emp->AddChild(PublishSpec::Element("ename"))
      ->AddChild(PublishSpec::Column("ename"));
  emp->AddChild(PublishSpec::Element("sal"))->AddChild(PublishSpec::Column("sal"));
  auto employees = PublishSpec::Element("employees");
  employees->AddChild(PublishSpec::Nested("emp", "deptno", "deptno", std::move(emp)));
  dept->children.push_back(std::move(employees));
  db.CreatePublishingView("dept_emp", "dept", std::move(dept), "dept_content");

  // Table 4: the view's XML values.
  auto xml = db.MaterializeView("dept_emp");
  std::printf("== dept_emp view rows (Table 4) ==\n");
  for (const auto& row : *xml) std::printf("%s\n", row.c_str());

  // Run the Table 5 stylesheet three ways.
  struct Arm {
    const char* label;
    ExecOptions options;
  };
  ExecOptions functional;
  functional.enable_rewrite = false;
  ExecOptions plan_b;
  plan_b.enable_sql_rewrite = false;
  Arm arms[] = {{"functional (no rewrite)", functional},
                {"XSLT->XQuery only (plan B)", plan_b},
                {"full rewrite to SQL/XML", {}}};

  std::vector<std::string> reference;
  for (const Arm& arm : arms) {
    ExecStats stats;
    auto start = std::chrono::steady_clock::now();
    auto result = db.TransformView("dept_emp", kStylesheet, arm.options, &stats);
    double ms = MillisSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", arm.label,
                   result.status().ToString().c_str());
      return 1;
    }
    if (reference.empty()) reference = *result;
    std::printf("\n== %s ==\n  path=%s  index=%s  %.3f ms  results match: %s\n",
                arm.label, xdb::ExecutionPathName(stats.path),
                stats.used_index ? "yes" : "no", ms,
                *result == reference ? "yes" : "NO!");
    if (!stats.xquery_text.empty() && stats.path != xdb::ExecutionPath::kFunctional) {
      std::printf("\n-- intermediate XQuery (cf. Table 8) --\n%s\n",
                  stats.xquery_text.c_str());
    }
    if (!stats.sql_text.empty()) {
      std::printf("\n-- rewritten SQL/XML (cf. Table 7) --\nSELECT %s\nFROM dept\n",
                  stats.sql_text.c_str());
    }
  }

  std::printf("\n== transformation result (Table 6) ==\n%s\n",
              reference[0].c_str());
  return 0;
}
