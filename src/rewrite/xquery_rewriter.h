// XQuery -> SQL/XML rewrite over publishing views (the paper's [3,4]
// substrate, Tables 7 and 11): an XQuery whose context item is the XML value
// of a SQL/XML publishing view is translated — by symbolic evaluation over
// the view's derived structure and provenance — into a pure relational
// expression over the base tables. Path navigation becomes column
// references, FLWOR iteration over repeating content becomes a correlated
// XMLAgg subquery over a *logical* plan (rel/logical.h), and element
// constructors become SQL/XML publishing functions. The rewriter makes no
// execution decisions: predicate pushdown and B-tree index selection are
// rules of the rel::Optimizer, which lowers the logical plan to the
// physical executor.
//
// Queries outside the translatable shape return a RewriteError; the caller
// (the combined optimizer) then keeps the XQuery execution stage instead.
#ifndef XDB_REWRITE_XQUERY_REWRITER_H_
#define XDB_REWRITE_XQUERY_REWRITER_H_

#include <string>

#include "common/status.h"
#include "rel/catalog.h"
#include "xquery/ast.h"

namespace xdb::rewrite {

struct SqlRewriteResult {
  /// The per-base-row value expression of the rewritten query
  /// (SELECT <expr> FROM <base_table>). Correlated subqueries inside are
  /// logical plans (LogicalApplyExpr); run rel::Optimizer to lower them.
  rel::RelExprPtr expr;
  std::string base_table;
};

/// Rewrites `query` (whose "." is the XML column of the publishing view) into
/// a logical relational expression over the view's base table.
Result<SqlRewriteResult> RewriteXQueryToSql(const xquery::Query& query,
                                            const rel::XmlView& view,
                                            const rel::Catalog& catalog);

}  // namespace xdb::rewrite

#endif  // XDB_REWRITE_XQUERY_REWRITER_H_
