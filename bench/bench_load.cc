// Durability cost model: what the WAL adds to bulk load, and what it does
// NOT add to warm reads. Three measurements:
//
//   (a) BM_Load_* — one-document bulk load (parse + shred + insert + index
//       build + WAL append/commit) into a fresh database at 1k/8k/64k rows,
//       across the InMemory baseline and the three XDB_WAL_SYNC modes.
//       Counters: wal_bytes, fsyncs, commit_latency_us (per commit),
//       throughput as bytes_per_second.
//   (b) BM_Recovery_* — OpenDurable on a prepared data directory: replay
//       from a pure WAL tail and from a checkpoint. Counter: recovery_ms.
//   (c) BM_WarmTransform_* — warm prepared-transform latency over the same
//       shredded view, in-memory vs durable-batch. The read path never
//       touches the log, so the durable arm must stay within 10% of the
//       baseline (checked offline from the JSON artifact).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "schema/structure.h"
#include "wal/manager.h"

namespace xdb::bench {
namespace {

constexpr const char* kViewName = "load_view";

// Same dbonerow-style stylesheet as bench_shredded_e2e: index-probe-friendly
// single-row lookup, so the warm arm measures the cached-plan read path.
constexpr const char* kDbOneRowStylesheet =
    "<xsl:stylesheet version=\"1.0\" "
    "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
    "<xsl:template match=\"table\">"
    "<out><xsl:apply-templates select=\"row[id = 9]\"/></out></xsl:template>"
    "<xsl:template match=\"row\"><hit><xsl:value-of select=\"firstname\"/> "
    "<xsl:value-of select=\"lastname\"/></hit></xsl:template>"
    "<xsl:template match=\"text()\"/>"
    "</xsl:stylesheet>";

schema::StructuralInfo TableRowStructure() {
  schema::StructureBuilder b;
  auto* table = b.Element("table");
  auto* row = b.AddChild(table, "row", 0, -1);
  for (const char* leaf : {"id", "firstname", "lastname", "city", "zip"}) {
    b.AddText(b.AddChild(row, leaf));
  }
  return b.Build(table);
}

shred::ShredOptions RowIndexOptions() {
  shred::ShredOptions options;
  options.value_indexes = {"row/id", "row/zip"};
  return options;
}

// Deterministic ~120-bytes-per-row document, cached per scale point.
const std::string& TableDocument(int rows) {
  static auto* cache = new std::map<int, std::string>();
  auto it = cache->find(rows);
  if (it != cache->end()) return it->second;
  const char* first[] = {"Al", "Bo", "Cy", "Di", "Ed", "Fay", "Gus", "Hal",
                         "Ida", "Joy"};
  const char* last[] = {"Ames", "Bond", "Cole", "Dean", "Estes", "Ford",
                        "Gray", "Hale", "Ivey", "Jones"};
  const char* city[] = {"BOSTON", "DALLAS", "CHICAGO", "NEW YORK", "AUSTIN"};
  uint64_t seed = 11;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(seed >> 33);
  };
  std::string doc = "<table>";
  for (int i = 0; i < rows; ++i) {
    doc += "<row><id>" + std::to_string(i + 1) + "</id><firstname>" +
           first[next() % 10] + "</firstname><lastname>" + last[next() % 10] +
           "</lastname><city>" + city[next() % 5] + "</city><zip>" +
           std::to_string(10000 + next() % 89999) + "</zip></row>";
  }
  doc += "</table>";
  return cache->emplace(rows, std::move(doc)).first->second;
}

// ---------------------------------------------------------------------------
// Temp data directories
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
      "/xdb_bench_load_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) return "";
  return std::string(buf.data());
}

void RemoveDataDir(const std::string& dir) {
  if (dir.empty()) return;
  for (const char* f : {"/wal.log", "/checkpoint.xck", "/checkpoint.xck.tmp"}) {
    ::unlink((dir + f).c_str());
  }
  ::rmdir(dir.c_str());
}

/// Process-lifetime directories (recovery fixtures, the warm durable db)
/// are swept on exit so repeated smoke runs don't litter TMPDIR.
void SweepRegisteredDirs();
std::vector<std::string>& RegisteredDirs() {
  static auto* dirs = new std::vector<std::string>();
  static bool registered = (std::atexit(SweepRegisteredDirs), true);
  (void)registered;
  return *dirs;
}
void SweepRegisteredDirs() {
  for (const std::string& dir : RegisteredDirs()) RemoveDataDir(dir);
}

wal::DurabilityOptions DirOptions(const std::string& dir, wal::SyncMode sync) {
  wal::DurabilityOptions opts;
  opts.data_dir = dir;
  opts.sync = sync;
  opts.checkpoint_bytes = 0;  // no auto checkpoints mid-measurement
  return opts;
}

// ---------------------------------------------------------------------------
// (a) Load throughput across sync modes
// ---------------------------------------------------------------------------

/// One measured load: fresh database (durable when `durable`), register +
/// load the whole document. Registration/setup is outside the timed region;
/// the timed region is LoadDocument — parse + shred + insert + index build
/// plus, on the durable arms, WAL framing and the commit fsync policy.
void RunLoadArm(benchmark::State& state, bool durable, wal::SyncMode sync) {
  const int rows = static_cast<int>(state.range(0));
  const std::string& doc = TableDocument(rows);
  wal::WalMetrics metrics;
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir;
    auto db = std::make_unique<XmlDb>();
    Status s;
    if (durable) {
      dir = MakeTempDir();
      if (dir.empty()) {
        state.SkipWithError("mkdtemp failed");
        break;
      }
      s = db->OpenDurable(DirOptions(dir, sync));
    }
    if (s.ok()) {
      s = db->RegisterShreddedSchema(kViewName, TableRowStructure(),
                                     RowIndexOptions());
    }
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    state.ResumeTiming();
    auto stats = db->LoadDocument(kViewName, doc);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    state.PauseTiming();
    metrics = db->wal_metrics();
    db.reset();
    RemoveDataDir(dir);
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["wal_bytes"] = static_cast<double>(metrics.wal_bytes);
  state.counters["fsyncs"] = static_cast<double>(metrics.fsyncs);
  state.counters["commits"] = static_cast<double>(metrics.commits);
  state.counters["commit_latency_us"] =
      metrics.commits > 0
          ? static_cast<double>(metrics.commit_latency_us) /
                static_cast<double>(metrics.commits)
          : 0.0;
}

void BM_Load_InMemory(benchmark::State& state) {
  RunLoadArm(state, /*durable=*/false, wal::SyncMode::kOff);
}
void BM_Load_WalOff(benchmark::State& state) {
  RunLoadArm(state, /*durable=*/true, wal::SyncMode::kOff);
}
void BM_Load_WalBatch(benchmark::State& state) {
  RunLoadArm(state, /*durable=*/true, wal::SyncMode::kBatch);
}
void BM_Load_WalAlways(benchmark::State& state) {
  RunLoadArm(state, /*durable=*/true, wal::SyncMode::kAlways);
}

// ---------------------------------------------------------------------------
// (b) Recovery latency: WAL-tail replay vs checkpoint restore
// ---------------------------------------------------------------------------

/// A durable directory prepared once per (rows, checkpointed) point; every
/// iteration re-opens it and replays recovery from scratch. Recovery never
/// mutates a clean log, so re-opening is idempotent.
const std::string& PreparedDir(int rows, bool checkpointed) {
  static auto* cache = new std::map<std::pair<int, bool>, std::string>();
  auto key = std::make_pair(rows, checkpointed);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  std::string dir = MakeTempDir();
  if (!dir.empty()) {
    RegisteredDirs().push_back(dir);
    XmlDb db;
    Status s = db.OpenDurable(DirOptions(dir, wal::SyncMode::kOff));
    if (s.ok()) {
      s = db.RegisterShreddedSchema(kViewName, TableRowStructure(),
                                    RowIndexOptions());
    }
    if (s.ok()) s = db.LoadDocument(kViewName, TableDocument(rows)).status();
    if (s.ok() && checkpointed) s = db.Checkpoint();
    if (!s.ok()) {
      fprintf(stderr, "recovery setup failed: %s\n", s.ToString().c_str());
      abort();
    }
  }
  return cache->emplace(key, std::move(dir)).first->second;
}

void RunRecoveryArm(benchmark::State& state, bool checkpointed) {
  const int rows = static_cast<int>(state.range(0));
  const std::string& dir = PreparedDir(rows, checkpointed);
  if (dir.empty()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  wal::RecoveryReport report;
  for (auto _ : state) {
    XmlDb db;
    Status s = db.OpenDurable(DirOptions(dir, wal::SyncMode::kOff));
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    report = db.last_recovery();
    benchmark::DoNotOptimize(db);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["recovery_ms"] = static_cast<double>(report.recovery_ms);
  state.counters["committed_batches"] =
      static_cast<double>(report.committed_batches);
  state.counters["from_checkpoint"] = report.recovered_checkpoint ? 1 : 0;
}

void BM_Recovery_WalTail(benchmark::State& state) {
  RunRecoveryArm(state, /*checkpointed=*/false);
}
void BM_Recovery_Checkpoint(benchmark::State& state) {
  RunRecoveryArm(state, /*checkpointed=*/true);
}

// ---------------------------------------------------------------------------
// (c) Warm prepared transform: durable-batch vs in-memory baseline
// ---------------------------------------------------------------------------

/// Cached per-mode database with the 8k-row document loaded. The durable
/// instance keeps its directory open for the whole process (swept on exit);
/// the read path shares every byte of the
/// execution pipeline with the in-memory arm.
XmlDb* WarmDb(bool durable, std::string* dir_out) {
  struct Entry {
    std::unique_ptr<XmlDb> db;
    std::string dir;
  };
  static auto* cache = new std::map<bool, Entry>();
  auto it = cache->find(durable);
  if (it == cache->end()) {
    Entry e;
    e.db = std::make_unique<XmlDb>();
    Status s;
    if (durable) {
      e.dir = MakeTempDir();
      if (!e.dir.empty()) RegisteredDirs().push_back(e.dir);
      s = e.dir.empty()
              ? Status::Internal("mkdtemp failed")
              : e.db->OpenDurable(DirOptions(e.dir, wal::SyncMode::kBatch));
    }
    if (s.ok()) {
      s = e.db->RegisterShreddedSchema(kViewName, TableRowStructure(),
                                       RowIndexOptions());
    }
    if (s.ok()) s = e.db->LoadDocument(kViewName, TableDocument(8000)).status();
    if (!s.ok()) {
      fprintf(stderr, "warm setup failed: %s\n", s.ToString().c_str());
      abort();
    }
    it = cache->emplace(durable, std::move(e)).first;
  }
  if (dir_out != nullptr) *dir_out = it->second.dir;
  return it->second.db.get();
}

void RunWarmArm(benchmark::State& state, bool durable) {
  XmlDb* db = WarmDb(durable, nullptr);
  ExecStats stats;
  for (auto _ : state) {
    auto r = db->TransformView(kViewName, kDbOneRowStylesheet, RewriteArm(),
                               &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["durable"] = durable ? 1 : 0;
  ReportExecStats(state, stats);
}

void BM_WarmTransform_Baseline(benchmark::State& state) {
  RunWarmArm(state, /*durable=*/false);
}
void BM_WarmTransform_WalBatch(benchmark::State& state) {
  RunWarmArm(state, /*durable=*/true);
}

// The issue's three scale points: 1k / 8k / 64k rows.
BENCHMARK(BM_Load_InMemory)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Load_WalOff)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Load_WalBatch)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Load_WalAlways)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_WalTail)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_Checkpoint)->Arg(1000)->Arg(8000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmTransform_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmTransform_WalBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xdb::bench

XDB_BENCH_MAIN();
