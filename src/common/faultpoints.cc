#include "common/faultpoints.h"

#include <unistd.h>

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

namespace xdb::fault {

namespace {

struct ArmedSite {
  int trigger = 1;  // 1-based hit number that starts failing
  int hits = 0;
  Action action = Action::kFail;
};

struct Registry {
  std::mutex mu;
  std::set<std::string> sites;          // every site that executed
  std::map<std::string, ArmedSite> armed;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

// Count of armed sites; the fast-path gate every XDB_FAULT_POINT checks.
std::atomic<int> g_armed_count{0};

// Arms sites from XDB_FAULT once, before any site is hit.
const bool g_env_armed = [] {
  const char* spec = std::getenv("XDB_FAULT");
  if (spec != nullptr && *spec != '\0') (void)ArmFromSpec(spec);
  return true;
}();

}  // namespace

bool Enabled() { return g_armed_count.load(std::memory_order_relaxed) > 0; }

void RegisterSite(const char* site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.insert(site);
}

Status Inject(const char* site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.armed.find(site);
  if (it == r.armed.end()) return Status::OK();
  it->second.hits += 1;
  if (it->second.hits < it->second.trigger) return Status::OK();
  if (it->second.action == Action::kCrash) {
    // Simulated power failure: no destructors, no stream flushing, no
    // atexit handlers — the process vanishes exactly here.
    _exit(kCrashExitCode);
  }
  return Status::ResourceExhausted(std::string("fault injected: ") + site);
}

void Arm(const std::string& site, int trigger, Action action) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ArmedSite& slot = r.armed[site];
  slot.trigger = trigger < 1 ? 1 : trigger;
  slot.hits = 0;
  slot.action = action;
  g_armed_count.store(static_cast<int>(r.armed.size()),
                      std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed.clear();
  g_armed_count.store(0, std::memory_order_relaxed);
}

std::vector<std::string> RegisteredSites() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.sites.begin(), r.sites.end()};
}

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses "fail", "fail:N", "crash", "crash:N".
bool ParseAction(const std::string& text, Action* action, int* trigger) {
  std::string verb = text;
  *trigger = 1;
  size_t colon = text.find(':');
  if (colon != std::string::npos) {
    verb = text.substr(0, colon);
    const char* begin = text.data() + colon + 1;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, *trigger);
    if (ec != std::errc() || ptr != end || *trigger < 1) return false;
  }
  if (verb == "fail") {
    *action = Action::kFail;
  } else if (verb == "crash") {
    *action = Action::kCrash;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool ArmFromSpec(const std::string& spec) {
  struct Parsed {
    std::string site;
    int trigger;
    Action action;
  };
  std::vector<Parsed> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = Trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) return false;
    std::string site = Trim(entry.substr(0, eq));
    if (site.empty()) return false;
    Action action = Action::kFail;
    int trigger = 1;
    if (!ParseAction(Trim(entry.substr(eq + 1)), &action, &trigger)) {
      return false;
    }
    parsed.push_back({std::move(site), trigger, action});
  }
  for (const Parsed& p : parsed) Arm(p.site, p.trigger, p.action);
  return true;
}

}  // namespace xdb::fault
