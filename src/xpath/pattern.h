// XSLT match patterns (the "Pattern" production of XSLT 1.0 §5.2), matched
// with the reverse-step testing strategy the paper attributes to [6]: test
// the last step's node test against the candidate node, then walk *up* the
// tree validating the remaining steps, instead of evaluating the path forward
// from every possible context. Section 3.5 of the paper eliminates exactly
// these upward tests when structural information proves them redundant.
#ifndef XDB_XPATH_PATTERN_H_
#define XDB_XPATH_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/evaluator.h"

namespace xdb::xpath {

/// One alternative of a (possibly union) pattern.
struct PatternAlternative {
  std::unique_ptr<PathExpr> path;
  /// XSLT 1.0 §5.5 default priority: 0 for a plain QName or kind test with a
  /// literal target, -0.25 for prefix:*, -0.5 for * / node-type tests,
  /// +0.5 for anything more specific (multiple steps or predicates).
  double default_priority = 0;

  std::string ToString() const { return path->ToString(); }
};

/// \brief A compiled XSLT match pattern.
class Pattern {
 public:
  /// Parses `text` as a pattern. Rejects XPath constructs that are not legal
  /// in patterns (non-downward axes, arithmetic at the top level, ...).
  static Result<Pattern> Parse(std::string_view text);

  /// True when `node` matches any alternative. `ctx` supplies variable
  /// bindings for predicate evaluation; its node fields are ignored.
  /// With `assume_predicates_true`, predicate tests are skipped entirely —
  /// the conservative structural matching of the paper's partial evaluation
  /// (§4.3: "assume that the result of matching pattern with a predicate ...
  /// is always true").
  Result<bool> Matches(xml::Node* node, const Evaluator& evaluator,
                       const EvalContext& ctx,
                       bool assume_predicates_true = false) const;

  /// True when `node` matches the given alternative.
  static Result<bool> MatchesAlternative(const PathExpr& path, xml::Node* node,
                                         const Evaluator& evaluator,
                                         const EvalContext& ctx,
                                         bool assume_predicates_true = false);

  const std::vector<PatternAlternative>& alternatives() const {
    return alternatives_;
  }
  const std::string& text() const { return text_; }

 private:
  std::string text_;
  std::vector<PatternAlternative> alternatives_;
};

/// Computes the XSLT default priority of a single pattern alternative.
double PatternDefaultPriority(const PathExpr& path);

}  // namespace xdb::xpath

#endif  // XDB_XPATH_PATTERN_H_
