// The N-way differential oracle: runs one generated case through all four
// execution paths of the system —
//
//   1. tree-walking XSLT interpreter          (xslt::Interpreter)
//   2. compiled XSLTVM                        (xslt::Vm)
//   3. inline XSLT->XQuery rewrite            (rewrite + xquery::QueryEvaluator)
//   4. shredded storage + full pipeline       (XmlDb::TransformView over the
//                                              registered shredded schema:
//                                              plan A SQL, plan B XQuery, or
//                                              the functional fallback)
//
// — canonicalizes every output, and reports the first divergence with engine
// names, the case seed, and a one-line repro command. Error paths are
// differential too: when one engine fails, every engine that executed must
// fail with the *same* status code (kRewriteError fallbacks excepted — those
// are asserted to fall back cleanly instead).
#ifndef XDB_DIFFTEST_ORACLE_H_
#define XDB_DIFFTEST_ORACLE_H_

#include <array>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_stats.h"
#include "difftest/generator.h"

namespace xdb::difftest {

enum EngineId {
  kInterpreter = 0,
  kVm = 1,
  kInlineXQuery = 2,
  kShreddedSql = 3,
  kNumEngines = 4,
};

const char* EngineName(int engine);

struct EngineRun {
  bool ran = false;  ///< the engine attempted execution (vs rewrite-rejected)
  Status status;
  std::vector<std::string> rows;       ///< raw per-document outputs
  std::vector<std::string> canonical;  ///< canonicalized per-document outputs
};

struct OracleOptions {
  /// Deliberately corrupt this engine's output (0-3) before comparison —
  /// the harness's self-test hook: a seeded divergence must be caught,
  /// reduced and reported. -1 = off.
  int sabotage_engine = -1;
  /// ctest regex used in the printed repro command.
  std::string repro_regex = "DiffTest.DifferentialSweep";
  /// Intra-query parallelism for every engine: <= 1 runs the engines
  /// serially (the default, and the reference behaviour); N > 1 hands each
  /// engine an N-thread ParallelPolicy, so a sweep at N threads differential-
  /// checks the parallel execution paths against each other — and a caller
  /// comparing N-thread vs 1-thread reports checks them against serial.
  int threads = 1;
};

struct OracleReport {
  enum class Outcome {
    kAgreed,    ///< all engines produced identical canonical output
    kRejected,  ///< the rewriter rejected cleanly; functional engines agreed
    kDiverged,  ///< output or status-code divergence between engines
    kInvalid,   ///< the case itself is unusable (load/parse failed)
  };
  Outcome outcome = Outcome::kInvalid;
  /// First divergence: engine names, document index, differing outputs.
  std::string detail;
  uint64_t seed = 0;
  std::string repro;  ///< one-line `XDB_SEED=... ctest -R ...` command
  /// Path the shredded pipeline actually chose (plan A / B / fallback C).
  ExecutionPath shredded_path = ExecutionPath::kFunctional;
  bool rewrite_rejected = false;
  std::array<EngineRun, kNumEngines> engines;

  bool diverged() const { return outcome == Outcome::kDiverged; }
};

/// Runs `c` through all four engines and compares. Never throws/aborts on
/// engine errors — error statuses are part of the differential contract.
OracleReport RunCase(const GeneratedCase& c, const OracleOptions& options = {});

}  // namespace xdb::difftest

#endif  // XDB_DIFFTEST_ORACLE_H_
