#include "difftest/generator.h"

#include <algorithm>
#include <map>

#include "difftest/seed.h"

namespace xdb::difftest {

using schema::ChildRef;
using schema::ElementStructure;
using schema::ModelGroup;

namespace {

/// Deterministic cross-platform RNG (SplitMix64 stream).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0xabcdef0123456789ULL) {}
  uint64_t Next() {
    state_ = SplitMix64(state_);
    return state_;
  }
  uint64_t U(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  bool Chance(double p) {
    return static_cast<double>(Next() % 1000000) < p * 1000000.0;
  }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[U(v.size())];
  }

 private:
  uint64_t state_;
};

const char* kWords[] = {"alpha", "beta",  "gamma", "delta",
                        "omega", "kappa", "sigma", "zeta"};

/// Everything the stylesheet generator needs to know about one declaration.
struct ElemMeta {
  const ElementStructure* decl = nullptr;
  std::vector<std::string> numeric_leaves;  ///< direct leaf children, numeric text
  std::vector<std::string> word_leaves;     ///< direct leaf children, word text
  std::vector<std::string> repeating;       ///< direct repeating children
  std::vector<std::string> children;        ///< all direct children
};

class CaseGen {
 public:
  CaseGen(uint64_t seed, const GenOptions& options)
      : rng_(seed), options_(options) {}

  GeneratedCase Run(uint64_t seed) {
    GeneratedCase out;
    out.seed = seed;
    if (options_.recursive) {
      out.structure = BuildRecursiveStructure();
    } else if (options_.correlated) {
      out.structure = BuildCorrelatedStructure();
    } else {
      out.structure = BuildStructure();
    }
    CollectMeta(out.structure.root());
    int n_docs = 1 + static_cast<int>(rng_.U(
                         static_cast<uint64_t>(options_.max_documents)));
    for (int i = 0; i < n_docs; ++i) {
      std::string doc;
      EmitDocElement(out.structure.root(), &doc);
      out.documents.push_back(std::move(doc));
    }
    out.reject_candidate = rng_.Chance(options_.reject_fraction);
    if (options_.recursive) {
      out.stylesheet = BuildRecursiveStylesheet(out.reject_candidate);
    } else if (options_.correlated) {
      out.stylesheet = BuildCorrelatedStylesheet(out.reject_candidate);
    } else {
      out.stylesheet = BuildStylesheet(out.structure, out.reject_candidate);
    }
    return out;
  }

 private:
  // ---- structure ----------------------------------------------------------

  schema::StructuralInfo BuildStructure() {
    schema::StructureBuilder b;
    counter_ = 0;
    ElementStructure* root = b.Element("doc");
    // The root always has children (a leaf-only root makes trivial cases).
    Fill(&b, root, /*depth=*/0, /*min_children=*/1);
    return b.Build(root);
  }

  std::string Fresh(const char* prefix) {
    return std::string(prefix) + std::to_string(counter_++);
  }

  void Fill(schema::StructureBuilder* b, ElementStructure* e, int depth,
            int min_children) {
    for (uint64_t i = rng_.U(3); i > 0; --i) {
      e->attributes.push_back(Fresh("a"));
    }
    uint64_t n_children =
        depth >= options_.max_depth
            ? 0
            : std::max<uint64_t>(min_children, rng_.U(4));
    if (n_children == 0) {
      // Leaf: text content, either numeric-only or word-only (recorded so
      // the stylesheet generator only writes arithmetic over numeric leaves).
      b->AddText(e);
      numeric_leaf_[e->name] = rng_.Chance(0.5);
      return;
    }
    if (n_children >= 2 && rng_.Chance(0.3)) {
      e->group = rng_.Chance(0.5) ? ModelGroup::kChoice : ModelGroup::kAll;
    }
    for (uint64_t i = 0; i < n_children; ++i) {
      int min_occurs = static_cast<int>(rng_.U(2));
      int max_occurs = rng_.U(3) == 0 ? -1 : 1;
      Fill(b, b->AddChild(e, Fresh("e"), min_occurs, max_occurs), depth + 1,
           0);
    }
  }

  // Correlated mode: doc -> parent* -> child*, each level with 1-2 text
  // leaves. Every repeating level lands in its own shred table, so the
  // nested for-each below iterates child rows correlated to the parent row —
  // the apply shape join-lowering turns into a group join.
  schema::StructuralInfo BuildCorrelatedStructure() {
    schema::StructureBuilder b;
    counter_ = 0;
    ElementStructure* root = b.Element("doc");
    ElementStructure* parent = b.AddChild(root, Fresh("e"), 0, -1);
    auto add_leaves = [&](ElementStructure* e) {
      for (uint64_t i = 1 + rng_.U(2); i > 0; --i) {
        ElementStructure* leaf = b.AddChild(e, Fresh("e"));
        b.AddText(leaf);
        numeric_leaf_[leaf->name] = rng_.Chance(0.5);
      }
    };
    add_leaves(parent);
    ElementStructure* child = b.AddChild(parent, Fresh("e"), 0, -1);
    add_leaves(child);
    correlated_parent_ = parent->name;
    correlated_child_ = child->name;
    return b.Build(root);
  }

  // Nested for-each joining the parent and child shred tables, with an
  // optional per-parent aggregate over the child level (count/sum lower into
  // scalar group joins; the bare nested loop lowers into an XMLAgg join).
  std::string BuildCorrelatedStylesheet(bool inject_reject) {
    const ElemMeta& pm = meta_[correlated_parent_];
    const ElemMeta& cm = meta_[correlated_child_];
    std::string ss =
        "<xsl:stylesheet version=\"1.0\" "
        "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
        "<xsl:template match=\"doc\"><r>";
    ss += "<xsl:for-each select=\"" + correlated_parent_ + "\"><p>";
    if (!pm.word_leaves.empty() || !pm.numeric_leaves.empty()) {
      const std::vector<std::string>& leaves =
          pm.word_leaves.empty() ? pm.numeric_leaves : pm.word_leaves;
      ss += "<xsl:value-of select=\"" + rng_.Pick(leaves) + "\"/>";
    }
    if (rng_.Chance(0.4)) {
      ss += "<n><xsl:value-of select=\"count(" + correlated_child_ +
            ")\"/></n>";
    }
    if (!cm.numeric_leaves.empty() && rng_.Chance(0.4)) {
      ss += "<s><xsl:value-of select=\"sum(" + correlated_child_ + "/" +
            cm.numeric_leaves[0] + ")\"/></s>";
    }
    if (inject_reject) ss += RejectConstruct();
    ss += "<xsl:for-each select=\"" + correlated_child_ + "\"><c>";
    const std::vector<std::string>& cleaves =
        cm.word_leaves.empty() ? cm.numeric_leaves : cm.word_leaves;
    if (cleaves.empty()) {
      ss += "<xsl:value-of select=\".\"/>";
    } else {
      ss += "<xsl:value-of select=\"" + rng_.Pick(cleaves) + "\"/>";
    }
    ss += "</c></xsl:for-each></p></xsl:for-each>";
    ss += "</r></xsl:template><xsl:template match=\"text()\"/>"
          "</xsl:stylesheet>";
    return ss;
  }

  // Recursive mode: doc -> rec* where rec nests into itself, either directly
  // (self-recursive: rec -> rec*) or through an intermediate (mutually
  // recursive: rec -> mid* -> rec*). Both land every depth of the recursion
  // in the same interval-indexed shred table, which is exactly what the
  // structural join has to untangle.
  schema::StructuralInfo BuildRecursiveStructure() {
    schema::StructureBuilder b;
    counter_ = 0;
    ElementStructure* root = b.Element("doc");
    ElementStructure* rec = b.AddChild(root, Fresh("e"), 0, -1);
    auto add_leaves = [&](ElementStructure* e) {
      for (uint64_t i = 1 + rng_.U(2); i > 0; --i) {
        ElementStructure* leaf = b.AddChild(e, Fresh("e"));
        b.AddText(leaf);
        numeric_leaf_[leaf->name] = rng_.Chance(0.5);
      }
    };
    add_leaves(rec);
    recursive_elem_ = rec->name;
    recursive_mid_.clear();
    if (rng_.Chance(0.4)) {
      ElementStructure* mid = b.AddChild(rec, Fresh("e"), 0, -1);
      add_leaves(mid);
      b.AddRecursiveChild(mid, rec);
      recursive_mid_ = mid->name;
    } else {
      b.AddRecursiveChild(rec, rec);
    }
    return b.Build(root);
  }

  // The recursive stylesheet leans on what only the interval join answers on
  // shredded storage: a `.//rec` sweep from the root (every depth, document
  // order), ancestor:: counts from inside the recursion, and occasionally a
  // recursive apply-templates chain instead of the flat sweep.
  std::string BuildRecursiveStylesheet(bool inject_reject) {
    const ElemMeta& rm = meta_[recursive_elem_];
    const std::vector<std::string>& leaves =
        rm.word_leaves.empty() ? rm.numeric_leaves : rm.word_leaves;
    std::string ss =
        "<xsl:stylesheet version=\"1.0\" "
        "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">";
    ss += "<xsl:template match=\"doc\"><r>";
    if (rng_.Chance(0.3)) {
      ss += "<n><xsl:value-of select=\"count(.//" + recursive_elem_ +
            ")\"/></n>";
    }
    bool chained = rng_.Chance(0.25);
    if (chained) {
      // Recursive chain: the doc template starts at the top level and each
      // rec template re-applies into its own nested recs.
      ss += "<xsl:apply-templates select=\"" + recursive_elem_ + "\"/>";
    } else {
      ss += "<xsl:apply-templates select=\".//" + recursive_elem_ + "\"/>";
    }
    if (inject_reject) ss += RejectConstruct();
    ss += "</r></xsl:template>";

    ss += "<xsl:template match=\"" + recursive_elem_ + "\"><p>";
    if (leaves.empty()) {
      ss += "<xsl:value-of select=\".\"/>";
    } else {
      ss += "<xsl:value-of select=\"" + rng_.Pick(leaves) + "\"/>";
    }
    if (rng_.Chance(0.4)) {
      ss += "<d a=\"{count(ancestor::" + recursive_elem_ + ")}\"/>";
    }
    if (!recursive_mid_.empty() && rng_.Chance(0.4)) {
      ss += "<m><xsl:value-of select=\"count(ancestor::" + recursive_mid_ +
            ")\"/></m>";
    }
    if (chained) {
      if (recursive_mid_.empty()) {
        ss += "<xsl:apply-templates select=\"" + recursive_elem_ + "\"/>";
      } else {
        ss += "<xsl:apply-templates select=\"" + recursive_mid_ + "/" +
              recursive_elem_ + "\"/>";
      }
    }
    ss += "</p></xsl:template>";
    ss += "<xsl:template match=\"text()\"/></xsl:stylesheet>";
    return ss;
  }

  void CollectMeta(const ElementStructure* e) {
    ElemMeta m;
    m.decl = e;
    for (const ChildRef& ref : e->children) {
      // Recursive edges point back at an ancestor declaration: skip them in
      // the stylesheet metadata (the recursive stylesheet builder references
      // them explicitly) and never traverse them.
      if (ref.recursive_edge) continue;
      m.children.push_back(ref.elem->name);
      if (ref.repeating()) m.repeating.push_back(ref.elem->name);
      if (ref.elem->IsLeaf() && ref.elem->has_text) {
        if (numeric_leaf_[ref.elem->name]) {
          m.numeric_leaves.push_back(ref.elem->name);
        } else {
          m.word_leaves.push_back(ref.elem->name);
        }
      }
    }
    meta_[e->name] = m;
    order_.push_back(e->name);
    for (const ChildRef& ref : e->children) {
      if (!ref.recursive_edge) CollectMeta(ref.elem);
    }
  }

  // ---- documents ----------------------------------------------------------

  std::string TextValue(const std::string& leaf_name) {
    if (numeric_leaf_[leaf_name]) return std::to_string(rng_.U(1000));
    return std::string(kWords[rng_.U(8)]) + std::to_string(rng_.U(10));
  }

  void EmitDocElement(const ElementStructure* e, std::string* out,
                      int rec_depth = 0) {
    *out += "<" + e->name;
    for (const std::string& a : e->attributes) {
      *out += " " + a + "=\"" + kWords[rng_.U(8)] + "\"";
    }
    if (e->IsLeaf()) {
      if (e->has_text) {
        *out += ">" + TextValue(e->name) + "</" + e->name + ">";
      } else {
        *out += "/>";
      }
      return;
    }
    *out += ">";
    // Slot order: declared for sequence; shuffled for <all> (the
    // canonicalizer restores declaration order); one branch for choice.
    std::vector<size_t> slots;
    if (e->group == ModelGroup::kChoice) {
      slots.push_back(rng_.U(e->children.size()));
    } else {
      for (size_t i = 0; i < e->children.size(); ++i) slots.push_back(i);
      if (e->group == ModelGroup::kAll) {
        for (size_t i = slots.size(); i > 1; --i) {
          std::swap(slots[i - 1], slots[rng_.U(i)]);
        }
      }
    }
    for (size_t slot : slots) {
      const ChildRef& ref = e->children[slot];
      uint64_t count;
      if (ref.recursive_edge) {
        // Recursive nesting: 0-2 occurrences, bounded by the depth budget
        // (each cycle through the content model crosses this edge once).
        count = rec_depth >= options_.max_recursion_depth ? 0 : rng_.U(3);
      } else if (e->group == ModelGroup::kChoice) {
        // The chosen branch appears at least once.
        count = ref.repeating() ? 1 + rng_.U(3) : 1;
      } else if (ref.repeating()) {
        count = static_cast<uint64_t>(ref.min_occurs) + rng_.U(3);
      } else {
        count = ref.optional() && !rng_.Chance(0.7) ? 0 : 1;
      }
      for (uint64_t i = 0; i < count; ++i) {
        EmitDocElement(ref.elem, out,
                       ref.recursive_edge ? rec_depth + 1 : rec_depth);
      }
    }
    *out += "</" + e->name + ">";
  }

  // ---- stylesheet ---------------------------------------------------------

  std::string BuildStylesheet(const schema::StructuralInfo& structure,
                              bool inject_reject) {
    std::string ss =
        "<xsl:stylesheet version=\"1.0\" "
        "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">";
    // 1-3 templates over distinct element names (root-biased: the first
    // template usually matches the document root so apply-templates chains
    // have somewhere to start).
    std::vector<std::string> targets;
    if (rng_.Chance(0.8)) targets.push_back(structure.root()->name);
    uint64_t extra = 1 + rng_.U(2);
    for (uint64_t i = 0; i < extra && targets.size() < 3; ++i) {
      const std::string& name = rng_.Pick(order_);
      if (std::find(targets.begin(), targets.end(), name) == targets.end()) {
        targets.push_back(name);
      }
    }
    uint64_t reject_in = targets.empty() ? 0 : rng_.U(targets.size());
    for (size_t t = 0; t < targets.size(); ++t) {
      const ElemMeta& m = meta_[targets[t]];
      ss += "<xsl:template match=\"" + targets[t] + "\">";
      uint64_t n_instr = 1 + rng_.U(2);
      for (uint64_t i = 0; i < n_instr; ++i) ss += Instruction(m, 0);
      if (inject_reject && t == reject_in) ss += RejectConstruct();
      ss += "</xsl:template>";
    }
    // Usually suppress the built-in text rule so outputs stay structured.
    if (rng_.Chance(0.6)) ss += "<xsl:template match=\"text()\"/>";
    ss += "</xsl:stylesheet>";
    return ss;
  }

  std::string RejectConstruct() {
    switch (rng_.U(2)) {
      case 0:
        // position() depends on the dynamic context (outside the subset).
        return "<xsl:value-of select=\"position()\"/>";
      default:
        // Comment constructors are outside the XQuery subset.
        return "<xsl:comment>boom</xsl:comment>";
    }
  }

  std::string Instruction(const ElemMeta& m, int depth) {
    // Re-roll until an applicable construct comes up; the literal-text arm
    // always applies, so this terminates.
    for (int attempt = 0; attempt < 8; ++attempt) {
      switch (rng_.U(10)) {
        case 0:
          return "<xsl:value-of select=\".\"/>";
        case 1:
          if (!m.numeric_leaves.empty()) {
            return "<xsl:value-of select=\"" + rng_.Pick(m.numeric_leaves) +
                   "\"/>";
          }
          break;
        case 2:
          if (!m.decl->attributes.empty()) {
            return "<xsl:value-of select=\"@" +
                   rng_.Pick(m.decl->attributes) + "\"/>";
          }
          break;
        case 3: {
          // Literal element, sometimes with an AVT attribute.
          std::string tag = "out" + std::to_string(rng_.U(5));
          std::string elem = "<" + tag;
          if (!m.word_leaves.empty() && rng_.Chance(0.6)) {
            elem += " v=\"{" + rng_.Pick(m.word_leaves) + "}\"";
          } else if (!m.decl->attributes.empty() && rng_.Chance(0.6)) {
            elem += " w=\"{@" + rng_.Pick(m.decl->attributes) + "}\"";
          }
          if (depth >= 2) return elem + "/>";
          return elem + ">" + Instruction(m, depth + 1) + "</" + tag + ">";
        }
        case 4:
          if (m.children.empty() || rng_.Chance(0.4)) {
            return "<xsl:apply-templates/>";
          }
          return "<xsl:apply-templates select=\"" + rng_.Pick(m.children) +
                 "\"/>";
        case 5:
          if (!m.repeating.empty() && depth < 2) {
            const std::string& child = rng_.Pick(m.repeating);
            return "<xsl:for-each select=\"" + child + "\"><i>" +
                   Instruction(meta_[child], depth + 1) + "</i></xsl:for-each>";
          }
          break;
        case 6:
          if (!m.numeric_leaves.empty() && depth < 2) {
            return "<xsl:if test=\"" + rng_.Pick(m.numeric_leaves) +
                   " &gt; " + std::to_string(rng_.U(800)) + "\">" +
                   Instruction(m, depth + 1) + "</xsl:if>";
          }
          break;
        case 7:
          if (!m.word_leaves.empty() && depth < 2) {
            return std::string("<xsl:choose><xsl:when test=\"") +
                   rng_.Pick(m.word_leaves) + " = '" + kWords[rng_.U(8)] +
                   std::to_string(rng_.U(10)) + "'\"><hit/></xsl:when>" +
                   "<xsl:otherwise><miss/></xsl:otherwise></xsl:choose>";
          }
          break;
        case 8:
          if (!m.children.empty()) {
            return "<xsl:value-of select=\"count(" + rng_.Pick(m.children) +
                   ")\"/>";
          }
          break;
        case 9: {
          // sum() over a repeating child's numeric leaf.
          for (const std::string& child : m.repeating) {
            const ElemMeta& cm = meta_[child];
            if (!cm.numeric_leaves.empty()) {
              return "<xsl:value-of select=\"sum(" + child + "/" +
                     cm.numeric_leaves[0] + ")\"/>";
            }
          }
          break;
        }
      }
    }
    return "<t>txt" + std::to_string(rng_.U(10)) + "</t>";
  }

  Rng rng_;
  GenOptions options_;
  std::string correlated_parent_;
  std::string correlated_child_;
  std::string recursive_elem_;
  std::string recursive_mid_;  ///< empty = self-recursive
  int counter_ = 0;
  std::map<std::string, bool> numeric_leaf_;
  std::map<std::string, ElemMeta> meta_;
  std::vector<std::string> order_;  ///< declaration names, document order
};

}  // namespace

GeneratedCase GenerateCase(uint64_t seed, const GenOptions& options) {
  CaseGen gen(SplitMix64(seed), options);
  return gen.Run(seed);
}

GeneratedCase CloneCase(const GeneratedCase& c) {
  GeneratedCase out;
  out.seed = c.seed;
  out.structure = c.structure.Clone();
  out.documents = c.documents;
  out.stylesheet = c.stylesheet;
  out.reject_candidate = c.reject_candidate;
  return out;
}

}  // namespace xdb::difftest
