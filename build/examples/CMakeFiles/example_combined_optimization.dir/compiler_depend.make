# Empty compiler generated dependencies file for example_combined_optimization.
# This may be replaced when dependencies are built.
