#include "wal/format.h"

#include <cstring>

#include "wal/crc32c.h"

namespace xdb::wal {

const char* RecordTypeName(RecordType t) {
  switch (t) {
    case RecordType::kBatchBegin:
      return "BatchBegin";
    case RecordType::kRowBatch:
      return "RowBatch";
    case RecordType::kCreateIndex:
      return "CreateIndex";
    case RecordType::kRegisterSchema:
      return "RegisterSchema";
    case RecordType::kCreateXsltView:
      return "CreateXsltView";
    case RecordType::kDropTable:
      return "DropTable";
    case RecordType::kStats:
      return "Stats";
    case RecordType::kCommit:
      return "Commit";
    case RecordType::kAbort:
      return "Abort";
    case RecordType::kCreateTable:
      return "CreateTable";
    case RecordType::kCheckpointHeader:
      return "CheckpointHeader";
    case RecordType::kCheckpointFooter:
      return "CheckpointFooter";
  }
  return "Unknown";
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

namespace {

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Datum tags. kXml is unencodable by design: XML values never live in base
// tables, only in view results.
enum : uint8_t { kTagNull = 0, kTagInt = 1, kTagDouble = 2, kTagString = 3 };

Status PutDatum(std::string* out, const rel::Datum& d) {
  switch (d.type()) {
    case rel::DataType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return Status::OK();
    case rel::DataType::kInt:
      out->push_back(static_cast<char>(kTagInt));
      PutU64(out, static_cast<uint64_t>(d.AsInt()));
      return Status::OK();
    case rel::DataType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      double v = d.AsDouble();
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      PutU64(out, bits);
      return Status::OK();
    }
    case rel::DataType::kString:
      out->push_back(static_cast<char>(kTagString));
      PutString(out, d.AsString());
      return Status::OK();
    case rel::DataType::kXml:
      return Status::InvalidArgument(
          "XML datum is not WAL-encodable (base tables never hold XML)");
  }
  return Status::InvalidArgument("unknown datum type");
}

// Bounds-checked cursor over a frame payload. Every getter fails with
// kDataLoss on underrun — inside a CRC-valid frame that means version skew
// or an encoder bug, and recovery surfaces it as corruption either way.
class Cursor {
 public:
  explicit Cursor(std::string_view data)
      : p_(reinterpret_cast<const unsigned char*>(data.data())),
        end_(p_ + data.size()) {}

  Status GetU8(uint8_t* v) {
    XDB_RETURN_NOT_OK(Need(1));
    *v = *p_++;
    return Status::OK();
  }
  Status Get32(uint32_t* v) {
    XDB_RETURN_NOT_OK(Need(4));
    *v = GetU32(p_);
    p_ += 4;
    return Status::OK();
  }
  Status Get64(uint64_t* v) {
    XDB_RETURN_NOT_OK(Need(8));
    *v = GetU64(p_);
    p_ += 8;
    return Status::OK();
  }
  Status GetString(std::string* s) {
    uint32_t n = 0;
    XDB_RETURN_NOT_OK(Get32(&n));
    XDB_RETURN_NOT_OK(Need(n));
    s->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return Status::OK();
  }
  Status GetDatum(rel::Datum* d) {
    uint8_t tag = 0;
    XDB_RETURN_NOT_OK(GetU8(&tag));
    switch (tag) {
      case kTagNull:
        *d = rel::Datum::Null();
        return Status::OK();
      case kTagInt: {
        uint64_t v = 0;
        XDB_RETURN_NOT_OK(Get64(&v));
        *d = rel::Datum(static_cast<int64_t>(v));
        return Status::OK();
      }
      case kTagDouble: {
        uint64_t bits = 0;
        XDB_RETURN_NOT_OK(Get64(&bits));
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        *d = rel::Datum(v);
        return Status::OK();
      }
      case kTagString: {
        std::string s;
        XDB_RETURN_NOT_OK(GetString(&s));
        *d = rel::Datum(std::move(s));
        return Status::OK();
      }
      default:
        return Status::DataLoss("unknown datum tag in WAL record");
    }
  }
  bool exhausted() const { return p_ == end_; }

 private:
  Status Need(size_t n) {
    if (static_cast<size_t>(end_ - p_) < n) {
      return Status::DataLoss("truncated WAL record payload");
    }
    return Status::OK();
  }
  const unsigned char* p_;
  const unsigned char* end_;
};

uint8_t DataTypeTag(rel::DataType t) {
  switch (t) {
    case rel::DataType::kNull:
      return 0;
    case rel::DataType::kInt:
      return 1;
    case rel::DataType::kDouble:
      return 2;
    case rel::DataType::kString:
      return 3;
    case rel::DataType::kXml:
      return 4;
  }
  return 3;
}

Result<rel::DataType> DataTypeFromTag(uint8_t tag) {
  switch (tag) {
    case 0:
      return rel::DataType::kNull;
    case 1:
      return rel::DataType::kInt;
    case 2:
      return rel::DataType::kDouble;
    case 3:
      return rel::DataType::kString;
    case 4:
      return rel::DataType::kXml;
    default:
      return Status::DataLoss("unknown column type tag in WAL record");
  }
}

Status PutRows(std::string* out, const std::vector<rel::Row>& rows) {
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const rel::Row& row : rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const rel::Datum& d : row) XDB_RETURN_NOT_OK(PutDatum(out, d));
  }
  return Status::OK();
}

Status GetRows(Cursor* cur, std::vector<rel::Row>* rows) {
  uint32_t n = 0;
  XDB_RETURN_NOT_OK(cur->Get32(&n));
  rows->clear();
  rows->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t cols = 0;
    XDB_RETURN_NOT_OK(cur->Get32(&cols));
    rel::Row row(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      XDB_RETURN_NOT_OK(cur->GetDatum(&row[c]));
    }
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

void PutStringList(std::string* out, const std::vector<std::string>& list) {
  PutU32(out, static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) PutString(out, s);
}

Status GetStringList(Cursor* cur, std::vector<std::string>* list) {
  uint32_t n = 0;
  XDB_RETURN_NOT_OK(cur->Get32(&n));
  list->clear();
  list->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    XDB_RETURN_NOT_OK(cur->GetString(&s));
    list->push_back(std::move(s));
  }
  return Status::OK();
}

Status PutStats(std::string* out, const rel::TableStats& stats) {
  PutU64(out, stats.row_count);
  PutU32(out, static_cast<uint32_t>(stats.columns.size()));
  for (const auto& [name, col] : stats.columns) {
    PutString(out, name);
    PutU64(out, static_cast<uint64_t>(col.ndv));
    PutU64(out, static_cast<uint64_t>(col.null_count));
    XDB_RETURN_NOT_OK(PutDatum(out, col.min));
    XDB_RETURN_NOT_OK(PutDatum(out, col.max));
  }
  return Status::OK();
}

Status GetStats(Cursor* cur, rel::TableStats* stats) {
  uint64_t row_count = 0;
  XDB_RETURN_NOT_OK(cur->Get64(&row_count));
  stats->row_count = static_cast<size_t>(row_count);
  uint32_t n = 0;
  XDB_RETURN_NOT_OK(cur->Get32(&n));
  stats->columns.clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    XDB_RETURN_NOT_OK(cur->GetString(&name));
    rel::ColumnStats col;
    uint64_t v = 0;
    XDB_RETURN_NOT_OK(cur->Get64(&v));
    col.ndv = static_cast<int64_t>(v);
    XDB_RETURN_NOT_OK(cur->Get64(&v));
    col.null_count = static_cast<int64_t>(v);
    XDB_RETURN_NOT_OK(cur->GetDatum(&col.min));
    XDB_RETURN_NOT_OK(cur->GetDatum(&col.max));
    stats->columns.emplace(std::move(name), std::move(col));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeRecord(const Record& r) {
  std::string out;
  PutU64(&out, r.lsn);
  out.push_back(static_cast<char>(r.type));
  PutU64(&out, r.batch_id);
  switch (r.type) {
    case RecordType::kBatchBegin:
    case RecordType::kAbort:
      break;
    case RecordType::kRowBatch:
      PutString(&out, r.table);
      PutU64(&out, r.first_rowid);
      XDB_RETURN_NOT_OK(PutRows(&out, r.rows));
      break;
    case RecordType::kCreateIndex:
      PutString(&out, r.table);
      PutString(&out, r.column);
      break;
    case RecordType::kRegisterSchema:
      PutString(&out, r.view);
      PutString(&out, r.text);
      PutU64(&out, r.batch_rows);
      PutStringList(&out, r.value_indexes);
      break;
    case RecordType::kCreateXsltView:
      PutString(&out, r.view);
      PutString(&out, r.upstream);
      PutString(&out, r.xml_column);
      PutString(&out, r.text);
      break;
    case RecordType::kDropTable:
      PutString(&out, r.table);
      break;
    case RecordType::kStats:
      PutString(&out, r.table);
      XDB_RETURN_NOT_OK(PutStats(&out, r.stats));
      break;
    case RecordType::kCommit:
      PutU64(&out, r.epoch);
      break;
    case RecordType::kCreateTable: {
      PutString(&out, r.table);
      PutU32(&out, static_cast<uint32_t>(r.schema.columns().size()));
      for (const rel::Column& c : r.schema.columns()) {
        PutString(&out, c.name);
        out.push_back(static_cast<char>(DataTypeTag(c.type)));
      }
      PutStringList(&out, r.value_indexes);
      break;
    }
    case RecordType::kCheckpointHeader:
      PutU64(&out, r.last_lsn);
      PutU64(&out, r.commits);
      PutU64(&out, r.epoch);
      break;
    case RecordType::kCheckpointFooter:
      PutU64(&out, r.record_count);
      break;
  }
  return out;
}

Result<Record> DecodeRecord(std::string_view payload) {
  Cursor cur(payload);
  Record r;
  XDB_RETURN_NOT_OK(cur.Get64(&r.lsn));
  uint8_t type = 0;
  XDB_RETURN_NOT_OK(cur.GetU8(&type));
  r.type = static_cast<RecordType>(type);
  XDB_RETURN_NOT_OK(cur.Get64(&r.batch_id));
  switch (r.type) {
    case RecordType::kBatchBegin:
    case RecordType::kAbort:
      break;
    case RecordType::kRowBatch:
      XDB_RETURN_NOT_OK(cur.GetString(&r.table));
      XDB_RETURN_NOT_OK(cur.Get64(&r.first_rowid));
      XDB_RETURN_NOT_OK(GetRows(&cur, &r.rows));
      break;
    case RecordType::kCreateIndex:
      XDB_RETURN_NOT_OK(cur.GetString(&r.table));
      XDB_RETURN_NOT_OK(cur.GetString(&r.column));
      break;
    case RecordType::kRegisterSchema:
      XDB_RETURN_NOT_OK(cur.GetString(&r.view));
      XDB_RETURN_NOT_OK(cur.GetString(&r.text));
      XDB_RETURN_NOT_OK(cur.Get64(&r.batch_rows));
      XDB_RETURN_NOT_OK(GetStringList(&cur, &r.value_indexes));
      break;
    case RecordType::kCreateXsltView:
      XDB_RETURN_NOT_OK(cur.GetString(&r.view));
      XDB_RETURN_NOT_OK(cur.GetString(&r.upstream));
      XDB_RETURN_NOT_OK(cur.GetString(&r.xml_column));
      XDB_RETURN_NOT_OK(cur.GetString(&r.text));
      break;
    case RecordType::kDropTable:
      XDB_RETURN_NOT_OK(cur.GetString(&r.table));
      break;
    case RecordType::kStats:
      XDB_RETURN_NOT_OK(cur.GetString(&r.table));
      XDB_RETURN_NOT_OK(GetStats(&cur, &r.stats));
      break;
    case RecordType::kCommit:
      XDB_RETURN_NOT_OK(cur.Get64(&r.epoch));
      break;
    case RecordType::kCreateTable: {
      XDB_RETURN_NOT_OK(cur.GetString(&r.table));
      uint32_t cols = 0;
      XDB_RETURN_NOT_OK(cur.Get32(&cols));
      std::vector<rel::Column> columns;
      columns.reserve(cols);
      for (uint32_t i = 0; i < cols; ++i) {
        rel::Column c;
        XDB_RETURN_NOT_OK(cur.GetString(&c.name));
        uint8_t tag = 0;
        XDB_RETURN_NOT_OK(cur.GetU8(&tag));
        XDB_ASSIGN_OR_RETURN(c.type, DataTypeFromTag(tag));
        columns.push_back(std::move(c));
      }
      r.schema = rel::Schema(std::move(columns));
      XDB_RETURN_NOT_OK(GetStringList(&cur, &r.value_indexes));
      break;
    }
    case RecordType::kCheckpointHeader:
      XDB_RETURN_NOT_OK(cur.Get64(&r.last_lsn));
      XDB_RETURN_NOT_OK(cur.Get64(&r.commits));
      XDB_RETURN_NOT_OK(cur.Get64(&r.epoch));
      break;
    case RecordType::kCheckpointFooter:
      XDB_RETURN_NOT_OK(cur.Get64(&r.record_count));
      break;
    default:
      return Status::DataLoss("unknown WAL record type " +
                              std::to_string(type));
  }
  if (!cur.exhausted()) {
    return Status::DataLoss("trailing bytes after WAL record payload");
  }
  return r;
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, MaskCrc(Crc32c(payload)));
  frame.append(payload.data(), payload.size());
  return frame;
}

}  // namespace xdb::wal
