// A compact, namespace-aware XML document object model.
//
// All nodes are owned by their Document (arena-style: a std::deque of node
// records gives stable addresses without per-node heap churn). Raw Node*
// pointers are used throughout the library and remain valid for the lifetime
// of the owning Document. The model covers the XPath 1.0 data model subset
// needed by the paper: document, element, attribute, text, comment and
// processing-instruction nodes.
#ifndef XDB_XML_DOM_H_
#define XDB_XML_DOM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/governor.h"

namespace xdb::xml {

class Document;

enum class NodeType {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// \brief One node in an XML tree.
///
/// Elements carry a QName split into prefix / local name plus the resolved
/// namespace URI (resolved at parse or construction time). Attributes hang
/// off their owner element and are not part of the child list, matching the
/// XPath data model.
class Node {
 public:
  NodeType type() const { return type_; }
  Document* document() const { return doc_; }
  Node* parent() const { return parent_; }

  /// Local part of the node name ("template" for xsl:template).
  const std::string& local_name() const { return local_name_; }
  /// Namespace prefix as written in the source document ("" if none).
  const std::string& prefix() const { return prefix_; }
  /// Resolved namespace URI ("" if none).
  const std::string& namespace_uri() const { return ns_uri_; }
  /// QName as written: "prefix:local" or "local".
  std::string qualified_name() const;

  /// Text / comment / PI / attribute value. Empty for elements.
  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }
  bool is_attribute() const { return type_ == NodeType::kAttribute; }

  /// XPath string-value: concatenation of all descendant text for
  /// elements/documents; the stored value for leaf node kinds.
  std::string StringValue() const;

  /// Appends `child` to this element/document node. The child must belong to
  /// the same Document and must not already have a parent.
  void AppendChild(Node* child);

  /// Adds (or replaces) an attribute on this element.
  Node* SetAttribute(std::string_view qname, std::string_view value);

  /// Returns the attribute node with the given QName, or nullptr.
  Node* FindAttribute(std::string_view qname) const;
  /// Returns the attribute's value, or "" when absent.
  std::string GetAttribute(std::string_view qname) const;
  bool HasAttribute(std::string_view qname) const {
    return FindAttribute(qname) != nullptr;
  }

  /// First child element with the given local name, or nullptr.
  Node* FirstChildElement(std::string_view local_name = "") const;
  /// Next sibling element with the given local name, or nullptr.
  Node* NextSiblingElement(std::string_view local_name = "") const;
  /// This node's position in its parent's child list (-1 for attributes/roots).
  int index_in_parent() const { return index_in_parent_; }

  /// Strict document-order comparison: negative / zero / positive when this
  /// node is before / same as / after `other`. Both nodes must belong to the
  /// same document. Attributes order before their element's children.
  int CompareDocumentOrder(const Node* other) const;

 private:
  friend class Document;
  Node(Document* doc, NodeType type) : doc_(doc), type_(type) {}

  Document* doc_;
  NodeType type_;
  std::string prefix_;
  std::string local_name_;
  std::string ns_uri_;
  std::string value_;
  Node* parent_ = nullptr;
  int index_in_parent_ = -1;
  std::vector<Node*> children_;
  std::vector<Node*> attributes_;  // kAttribute nodes, owner element = parent_
};

/// \brief Owner of a tree of nodes.
///
/// CreateX factory methods allocate nodes inside the document arena; the
/// returned pointers are valid until the Document is destroyed.
class Document {
 public:
  Document();
  ~Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Attaches a resource-governor scope: from now on node and string
  /// allocations in this document are charged against the scope's memory
  /// budget, and the total is released when the Document is destroyed. The
  /// scope must outlive the Document. Null detaches (nothing is released
  /// for bytes charged so far).
  void set_budget(governor::BudgetScope* budget) { budget_ = budget; }
  governor::BudgetScope* budget() const { return budget_; }

  /// The document node (root of the tree, XPath "/").
  Node* root() const { return root_; }
  /// The single top-level element, or nullptr for an empty document.
  Node* document_element() const;

  /// Creates an element node. `qname` may carry a prefix; `ns_uri` is the
  /// resolved namespace URI for that prefix (empty when unbound).
  Node* CreateElement(std::string_view qname, std::string_view ns_uri = "");
  Node* CreateText(std::string_view text);
  Node* CreateComment(std::string_view text);
  Node* CreateProcessingInstruction(std::string_view target, std::string_view data);

  /// Deep-copies `node` (from any document) into this document; returns the
  /// new copy, unattached.
  Node* ImportNode(const Node* node);

  /// Transfers ownership of every node in `donor` into this document without
  /// copying. Node records keep their addresses (moving the underlying deque
  /// moves whole blocks), their document() becomes this, and the donor's
  /// tracked memory charge moves to this document's release duty — both
  /// documents' budget scopes must share the same underlying ExecBudget (or
  /// the donor's charge is released immediately when this document has no
  /// budget attached). The donor is left empty: destructible but unusable.
  /// Parent/child links are not touched — detached donor roots stay
  /// detached, which is what the parallel engines' output buffers need.
  void AbsorbNodes(Document* donor);

  /// AbsorbNodes(donor), then splices the children of `donor_parent` onto
  /// `target_parent` in order and re-applies donor_parent's attributes to it
  /// (replace-in-place, matching serial xsl:attribute semantics; skipped
  /// when `target_parent` is not an element). The parallel engines use this
  /// to merge per-task output buffers back into the shared result tree in
  /// document order.
  void AbsorbChildren(Document* donor, Node* donor_parent, Node* target_parent);

  /// Detaches all children of `parent` (a node of this document) and returns
  /// them in order, each with a null parent — ready to AppendChild elsewhere
  /// in this document. The parallel XMLAgg merge uses this to flatten
  /// absorbed fragment wrappers without re-copying subtrees.
  std::vector<Node*> DetachChildren(Node* parent);

  /// Number of nodes allocated in this document (diagnostics / tests).
  size_t node_count() const { return nodes_.size() + absorbed_node_count_; }

 private:
  friend class Node;
  Node* NewNode(NodeType type);
  /// Charges `bytes` of string payload to the attached budget scope.
  void ChargeBytes(size_t bytes) {
    if (budget_ != nullptr) {
      budget_->ChargeMemory(bytes);
      charged_bytes_ += bytes;
    }
  }

  std::deque<Node> nodes_;
  std::vector<std::deque<Node>> absorbed_;  // node storage taken over from
                                            // donor documents (AbsorbNodes)
  size_t absorbed_node_count_ = 0;
  Node* root_;
  governor::BudgetScope* budget_ = nullptr;
  uint64_t charged_bytes_ = 0;
};

/// Splits a QName into (prefix, local). No validation.
void SplitQName(std::string_view qname, std::string* prefix, std::string* local);

}  // namespace xdb::xml

#endif  // XDB_XML_DOM_H_
