// PlanCache: an LRU cache of prepared transforms, the shared-cursor-cache
// analog of what Oracle XML DB does for repeated XMLTransform()/XMLQuery()
// calls. A cold TransformView call parses the stylesheet, compiles it to
// bytecode, runs the XSLT->XQuery->SQL/XML rewrite pipeline and picks an
// execution path; all of that is row-count independent, so a warm call can
// skip straight to per-row execution.
//
// Keying: (view name, FNV-1a hash of the stylesheet/xquery text, fingerprint
// of the prepare-relevant ExecOptions, entry kind). Two views with identical
// stylesheet text get distinct entries — the plan bakes in the view's
// structure and base table.
//
// Invalidation: the cache registers as a rel::DdlListener on the catalog.
//  * CreateIndex on a table  -> drop every plan referencing that table (base
//    or nested detail table — the physical plan may upgrade from a seq scan
//    to an index probe on either side of the publishing join).
//  * CreateTable / view creation -> drop plans naming that object (a fresh
//    name cannot match an existing plan, so this is a no-op today, but the
//    hook is where DROP/REPLACE would plug in).
//  * Insert -> drop only plans that depend on table *statistics*
//    (depends_on_stats): plans whose group-join access path was costed from
//    row counts/NDV. Structure-derived plans survive inserts and a warm plan
//    sees newly inserted rows on its next execution.
#ifndef XDB_CORE_PLAN_CACHE_H_
#define XDB_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/exec_stats.h"
#include "rel/catalog.h"
#include "xquery/ast.h"
#include "xslt/vm.h"

namespace xdb::core {

/// 64-bit FNV-1a (the plan-key text hash).
inline uint64_t Fnv1aHash(std::string_view text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

enum class PreparedKind { kTransform, kQuery };

/// Bit-packs the prepare-relevant ExecOptions (execution-time options like
/// `threads` are deliberately excluded).
uint64_t OptionsFingerprint(const ExecOptions& options);

struct PlanKey {
  std::string view;
  uint64_t text_hash = 0;
  uint64_t options_fp = 0;
  PreparedKind kind = PreparedKind::kTransform;
  /// Snapshot epoch the plan was prepared under; 0 = live (non-session)
  /// execution. Epoch-keyed entries read immutable versioned data, so the
  /// DDL invalidation hooks skip them — a publish simply keys new prepares
  /// under the new epoch, and PurgeEpochsBelow drops entries once no
  /// session can pin their epoch anymore.
  uint64_t epoch = 0;

  bool operator==(const PlanKey& o) const {
    return text_hash == o.text_hash && options_fp == o.options_fp &&
           kind == o.kind && epoch == o.epoch && view == o.view;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    uint64_t h = k.text_hash ^ (k.options_fp * 0x9e3779b97f4a7c15ull) ^
                 (static_cast<uint64_t>(k.kind) << 62);
    h ^= k.epoch * 0xff51afd7ed558ccdull;
    h ^= Fnv1aHash(k.view);
    return static_cast<size_t>(h);
  }
};

/// A fully prepared TransformView/QueryView call: plan A/B/C artifacts plus
/// the chosen execution path. Immutable after prepare; safe to execute from
/// many threads concurrently (all evaluation state lives in per-row
/// ExecCtx/arena instances).
struct PreparedTransform {
  PreparedKind kind = PreparedKind::kTransform;
  ExecutionPath path = ExecutionPath::kFunctional;

  std::string view_name;
  std::string base_table;
  /// Invalidation match targets: the base table plus every nested detail
  /// table the publishing spec joins (a DDL event on any of them can change
  /// the best plan — e.g. an index on a joined column).
  std::vector<std::string> referenced_tables;

  bool ReferencesTable(const std::string& table) const {
    for (const auto& t : referenced_tables) {
      if (t == table) return true;
    }
    return false;
  }

  // Pinned catalog objects (the catalog never drops objects, so raw
  // pointers stay valid for the database's lifetime).
  const rel::XmlView* view = nullptr;
  const rel::XmlView* pub = nullptr;   // publishing view ending the chain
  const rel::Table* base = nullptr;

  // -- plan artifacts ---------------------------------------------------------
  // The user stylesheet (kTransform): parsed + compiled. The compiled form
  // holds a pointer into the parsed form, so both are kept.
  std::shared_ptr<const xslt::Stylesheet> stylesheet;
  std::shared_ptr<const xslt::CompiledStylesheet> compiled;
  // Plan B / functional-query: the rewritten (or user/composed) XQuery.
  std::shared_ptr<const xquery::Query> query;
  // Plan A: the optimized physical relational expression over the base table
  // (lowered from the rewriter's logical plan by rel::Optimizer).
  std::shared_ptr<const rel::RelExpr> sql_expr;

  // -- stats template (copied into the caller's ExecStats per execution) ------
  rewrite::RewriteReport xslt_report;
  bool used_index = false;
  int predicates_pushed = 0;
  std::string xquery_text;
  std::string sql_text;
  std::string logical_plan;
  std::vector<rel::RuleTrace> opt_trace;
  std::string fallback_reason;
  std::vector<rel::JoinChoice> joins;
  int joins_lowered = 0;

  /// True when the plan choice consumed table statistics (row counts,
  /// selectivities). Structure-derived plans leave it false and survive
  /// inserts; plans with cost-based group joins set it, so an insert (which
  /// moves the statistics the hash-vs-index-NL choice was priced on) drops
  /// them and the next prepare re-costs.
  bool depends_on_stats = false;
};

/// \brief Thread-safe LRU plan cache with DDL-driven invalidation.
class PlanCache : public rel::DdlListener {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Cache hit moves the entry to the MRU position. Counts a hit or miss.
  std::shared_ptr<const PreparedTransform> Lookup(const PlanKey& key);
  /// Inserts (or replaces) the entry; evicts from the LRU end past capacity.
  void Insert(const PlanKey& key, std::shared_ptr<const PreparedTransform> plan);

  void Clear();
  void set_capacity(size_t capacity);

  /// Drops every epoch-keyed entry with 0 < epoch < min_epoch. The session
  /// layer calls this when the oldest pinned epoch advances: no session can
  /// execute against those epochs anymore, so their plans (which pin
  /// retired table versions through ExecOptions::snapshot keying) are dead
  /// weight. Live entries (epoch 0) are never touched.
  void PurgeEpochsBelow(uint64_t min_epoch);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  // entries dropped by DDL hooks
    size_t entries = 0;
  };
  Stats stats() const;

  // -- rel::DdlListener (invalidation hooks) ----------------------------------
  void OnTableCreated(const std::string& table) override;
  void OnIndexCreated(const std::string& table,
                      const std::string& column) override;
  void OnViewCreated(const std::string& view) override;
  void OnRowsInserted(const std::string& table) override;
  void OnTableLoaded(const std::string& table) override;
  void OnTableDropped(const std::string& table) override;

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const PreparedTransform>>;

  void InvalidateTableLocked(const std::string& table, bool stats_only);
  void EvictPastCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace xdb::core

#endif  // XDB_CORE_PLAN_CACHE_H_
