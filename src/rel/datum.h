// Relational value model. A Datum is one column value of a row: NULL, a
// 64-bit integer, a double, a string, or an XMLType value (a pointer to an
// XML node owned by some document arena).
#ifndef XDB_REL_DATUM_H_
#define XDB_REL_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "xml/dom.h"

namespace xdb::rel {

enum class DataType { kNull, kInt, kDouble, kString, kXml };

const char* DataTypeName(DataType t);

/// \brief One relational value.
class Datum {
 public:
  Datum() : v_(std::monostate{}) {}
  explicit Datum(int64_t i) : v_(i) {}
  explicit Datum(double d) : v_(d) {}
  explicit Datum(std::string s) : v_(std::move(s)) {}
  explicit Datum(const char* s) : v_(std::string(s)) {}
  explicit Datum(xml::Node* x) : v_(x) {}

  static Datum Null() { return Datum(); }

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kNull;
      case 1:
        return DataType::kInt;
      case 2:
        return DataType::kDouble;
      case 3:
        return DataType::kString;
      default:
        return DataType::kXml;
    }
  }
  bool is_null() const { return type() == DataType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  xml::Node* AsXml() const { return std::get<xml::Node*>(v_); }

  /// Numeric view (int/double promoted; string parsed; NULL -> NaN).
  double ToDouble() const;
  /// Text rendering (XML values serialize to markup).
  std::string ToString() const;

  /// Total order for B-tree keys and ORDER BY: NULLs first, then numeric
  /// keys — ints, doubles, and strings that parse *entirely* as one number —
  /// by numeric value, then remaining text lexically. Classifying each side
  /// independently keeps the order transitive across mixed types (a string
  /// column holding "9" probes correctly against an int 9 bound). XML values
  /// are not orderable (compares by serialized text).
  int Compare(const Datum& other) const;

  /// Stable hash consistent with Compare: Compare(o) == 0 implies
  /// Hash() == o.Hash(). The (value, text) key's equality collapses to "same
  /// canonical text" — numeric ties break on ToString(), int 1 / double 1.0 /
  /// string "1" all print as "1", while distinct spellings ("01", "1e2")
  /// stay distinct — so hashing the canonical text (with a separate NULL
  /// salt; NULL prints as "" like the empty string, but compares apart) is
  /// exactly equality-compatible. This is the hash-join build/probe key.
  uint64_t Hash() const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }
  bool operator<(const Datum& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string, xml::Node*> v_;
};

}  // namespace xdb::rel

#endif  // XDB_REL_DATUM_H_
