// RowExecutor: a small persistent worker pool for data-parallel per-row
// loops. The per-row bodies of plans A, B and C are independent — each row
// evaluates against its own xml::Document arena and ExecCtx — so the loop
// over base-table rows parallelizes trivially. Results are written into a
// caller-pre-sized output slot by row index, which keeps the output ordering
// deterministic and byte-identical to the serial loop.
//
// Scheduling: the row range is split into chunks, dealt round-robin onto
// per-worker deques; each worker drains its own deque from the front and
// steals from the back of a victim's deque when it runs dry. The first row
// error (lowest row index among observed failures) cancels all remaining
// chunks.
//
// Sizing: `XDB_THREADS` overrides the default of hardware_concurrency; a
// per-call `threads` argument overrides both (tests and benchmarks pin it).
// Workers are started lazily and parked on a condition variable between
// jobs, so an idle pool costs nothing on the query path.
#ifndef XDB_CORE_ROW_EXECUTOR_H_
#define XDB_CORE_ROW_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/status.h"

namespace xdb::core {

class RowExecutor {
 public:
  /// The process-wide pool (workers are shared across XmlDb instances).
  static RowExecutor& Global();

  RowExecutor() = default;
  ~RowExecutor();

  RowExecutor(const RowExecutor&) = delete;
  RowExecutor& operator=(const RowExecutor&) = delete;

  /// Runs `body(row)` for every row in [0, n). `threads <= 0` means auto
  /// (XDB_THREADS env var, else hardware_concurrency). Returns the error of
  /// the lowest failing row index observed; later chunks are cancelled after
  /// the first failure — a tripped resource budget surfaces as a row error
  /// and cancels the same way. `threads_used` (optional) reports the
  /// parallelism actually applied, including the calling thread. `cancel`
  /// (optional) is additionally polled before every row so cancellation is
  /// prompt even for bodies that never consult a budget.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                     int threads = 0, int* threads_used = nullptr,
                     const governor::CancelToken* cancel = nullptr);

  /// Resolved auto thread count (env override or hardware concurrency).
  static int DefaultThreads();

 private:
  struct Job;

  void EnsureWorkers(int count);
  void WorkerLoop(int worker_id);
  static void RunWorker(Job* job, int slot);
  static Status CancelledStatus();

  std::mutex submit_mu_;  // serializes jobs (one parallel loop in flight);
                          // nested ParallelFor from a body would self-deadlock
  std::mutex mu_;
  std::condition_variable wake_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;        // current job, guarded by mu_
  int job_waiting_ = 0;       // workers still expected to pick up job_
  bool shutdown_ = false;
};

}  // namespace xdb::core

#endif  // XDB_CORE_ROW_EXECUTOR_H_
