#include "rel/publish.h"

#include "common/faultpoints.h"
#include "rel/catalog.h"
#include "rel/logical.h"

namespace xdb::rel {

std::unique_ptr<PublishSpec> PublishSpec::Element(std::string name) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = Kind::kElement;
  s->name = std::move(name);
  return s;
}

std::unique_ptr<PublishSpec> PublishSpec::Column(std::string column) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = Kind::kColumn;
  s->column = std::move(column);
  return s;
}

std::unique_ptr<PublishSpec> PublishSpec::Text(std::string text) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = Kind::kText;
  s->text = std::move(text);
  return s;
}

std::unique_ptr<PublishSpec> PublishSpec::Nested(
    std::string child_table, std::string outer_key, std::string inner_key,
    std::unique_ptr<PublishSpec> row_elem) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = Kind::kNested;
  s->child_table = std::move(child_table);
  s->outer_key = std::move(outer_key);
  s->inner_key = std::move(inner_key);
  s->row_element = std::move(row_elem);
  return s;
}

std::unique_ptr<PublishSpec> PublishSpec::RecursiveNested(
    std::string child_table, std::string outer_key, std::string inner_key,
    const PublishSpec* recursive_element) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = Kind::kNested;
  s->child_table = std::move(child_table);
  s->outer_key = std::move(outer_key);
  s->inner_key = std::move(inner_key);
  s->recursive_element = recursive_element;
  return s;
}

namespace {

std::unique_ptr<PublishSpec> CloneSpecTree(
    const PublishSpec& from,
    std::map<const PublishSpec*, PublishSpec*>* old_to_new) {
  auto s = std::make_unique<PublishSpec>();
  s->kind = from.kind;
  s->name = from.name;
  s->attr_columns = from.attr_columns;
  s->present_if_column = from.present_if_column;
  for (const auto& c : from.children) {
    s->children.push_back(CloneSpecTree(*c, old_to_new));
  }
  s->column = from.column;
  s->text = from.text;
  s->child_table = from.child_table;
  s->outer_key = from.outer_key;
  s->inner_key = from.inner_key;
  s->order_by_column = from.order_by_column;
  if (from.row_element) {
    s->row_element = CloneSpecTree(*from.row_element, old_to_new);
  }
  s->recursive_element = from.recursive_element;  // fixed up by the caller
  (*old_to_new)[&from] = s.get();
  return s;
}

void FixupRecursiveRefs(PublishSpec* spec,
                        const std::map<const PublishSpec*, PublishSpec*>& map) {
  if (spec->recursive_element != nullptr) {
    auto it = map.find(spec->recursive_element);
    // A recursion target outside the cloned subtree keeps its old pointer —
    // the clone stays tied to the original's lifetime, exactly like the
    // non-owning reference it copies.
    if (it != map.end()) spec->recursive_element = it->second;
  }
  for (auto& c : spec->children) FixupRecursiveRefs(c.get(), map);
  if (spec->row_element) FixupRecursiveRefs(spec->row_element.get(), map);
}

}  // namespace

std::unique_ptr<PublishSpec> PublishSpec::Clone() const {
  std::map<const PublishSpec*, PublishSpec*> old_to_new;
  std::unique_ptr<PublishSpec> s = CloneSpecTree(*this, &old_to_new);
  FixupRecursiveRefs(s.get(), old_to_new);
  return s;
}

namespace {

/// Scope stack entry during compilation: the table whose row is visible at
/// the given expression nesting level.
struct Scope {
  const Table* table;
};

class PublishCompiler {
 public:
  /// With `logical`, kNested subtrees compile to LogicalApplyExpr over a
  /// logical plan instead of a ScalarSubqueryExpr over a physical one.
  explicit PublishCompiler(const Catalog& catalog, bool logical = false)
      : catalog_(catalog), logical_(logical) {}

  Result<RelExprPtr> Compile(const PublishSpec& spec, const Table* base) {
    XDB_FAULT_POINT("publish.compile");
    scopes_.push_back(Scope{base});
    auto result = CompileNode(spec);
    scopes_.pop_back();
    XDB_RETURN_NOT_OK(CheckSlotsResolved());
    return result;
  }

  Result<RelExprPtr> CompileInScope(const PublishSpec& spec,
                                    const std::vector<const Table*>& tables) {
    scopes_.clear();
    for (const Table* t : tables) scopes_.push_back(Scope{t});
    auto result = CompileNode(spec);
    XDB_RETURN_NOT_OK(CheckSlotsResolved());
    return result;
  }

 private:
  Result<RelExprPtr> ColumnRef(const std::string& column, size_t start_level = 0) {
    // Resolve innermost-first, starting at `start_level` (used to skip the
    // inner scope when both tables share a key column name, e.g. deptno).
    for (size_t i = start_level; i < scopes_.size(); ++i) {
      const Scope& s = scopes_[scopes_.size() - 1 - i];
      int ci = s.table->schema().ColumnIndex(column);
      if (ci >= 0) {
        return RelExprPtr(std::make_unique<ColumnRefExpr>(
            static_cast<int>(i), ci, s.table->name() + "." + column));
      }
    }
    return Status::NotFound("publishing spec references unknown column '" + column +
                            "'");
  }

  Result<RelExprPtr> CompileNode(const PublishSpec& spec) {
    switch (spec.kind) {
      case PublishSpec::Kind::kElement: {
        auto elem = std::make_unique<XmlElementExpr>(spec.name);
        for (const auto& [attr, col] : spec.attr_columns) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr e, ColumnRef(col));
          elem->attributes.emplace_back(attr, std::move(e));
        }
        for (const auto& child : spec.children) {
          XDB_ASSIGN_OR_RETURN(RelExprPtr e, CompileNode(*child));
          elem->children.push_back(std::move(e));
        }
        // Resolve recursive back-references registered while compiling the
        // subtree: the slots point at this element's compiled expression.
        // The heap address is stable across unique_ptr moves, and the
        // optimizer only ever replaces kBinary/kCase nodes in place, so the
        // non-owning pointer stays valid for the expression's lifetime.
        auto slots = pending_slots_.find(&spec);
        if (slots != pending_slots_.end()) {
          for (auto& slot : slots->second) slot->target = elem.get();
          pending_slots_.erase(slots);
        }
        if (!spec.present_if_column.empty()) {
          // CASE WHEN col IS NOT NULL THEN XMLElement(...) END — absent
          // optional/choice content publishes nothing, not an empty element.
          XDB_ASSIGN_OR_RETURN(RelExprPtr guard,
                               ColumnRef(spec.present_if_column));
          auto cond = std::make_unique<BinaryRelExpr>(
              RelOp::kIsNotNull, std::move(guard),
              std::make_unique<ConstExpr>(Datum::Null()));
          auto guarded = std::make_unique<CaseRelExpr>();
          guarded->branches.push_back(
              CaseRelExpr::Branch{std::move(cond), std::move(elem)});
          return RelExprPtr(std::move(guarded));
        }
        return RelExprPtr(std::move(elem));
      }
      case PublishSpec::Kind::kColumn:
        return ColumnRef(spec.column);
      case PublishSpec::Kind::kText:
        return RelExprPtr(std::make_unique<ConstExpr>(Datum(spec.text)));
      case PublishSpec::Kind::kNested: {
        XDB_ASSIGN_OR_RETURN(Table * child, catalog_.GetTable(spec.child_table));
        if (spec.recursive_element != nullptr) {
          // Recursive occurrence: child rows live in the recursion target's
          // table and republish through the target's own element expression
          // (resolved via a slot once that ancestor has been compiled).
          int inner_ci = child->schema().ColumnIndex(spec.inner_key);
          if (inner_ci < 0) {
            return Status::NotFound("recursive publish: no column '" +
                                    spec.inner_key + "' in " +
                                    spec.child_table);
          }
          int order_ci = -1;
          if (!spec.order_by_column.empty()) {
            order_ci = child->schema().ColumnIndex(spec.order_by_column);
          }
          XDB_ASSIGN_OR_RETURN(RelExprPtr outer_ref, ColumnRef(spec.outer_key));
          auto slot = std::make_shared<RecursiveApplyExpr::Slot>();
          pending_slots_[spec.recursive_element].push_back(slot);
          return RelExprPtr(std::make_unique<RecursiveApplyExpr>(
              child, std::move(outer_ref), inner_ci, order_ci,
              std::move(slot)));
        }
        // Correlation predicate: child.inner_key = outer.outer_key.
        int inner_ci = child->schema().ColumnIndex(spec.inner_key);
        if (inner_ci < 0) {
          return Status::NotFound("nested publish: no column '" + spec.inner_key +
                                  "' in " + spec.child_table);
        }
        // Outer key resolves against the *enclosing* scopes (level >= 1):
        // the filter row sits at level 0 inside the subquery.
        scopes_.push_back(Scope{child});
        XDB_ASSIGN_OR_RETURN(RelExprPtr outer_ref, ColumnRef(spec.outer_key, 1));
        auto inner_ref = std::make_unique<ColumnRefExpr>(
            0, inner_ci, spec.child_table + "." + spec.inner_key);
        auto pred = std::make_unique<BinaryRelExpr>(RelOp::kEq, std::move(inner_ref),
                                                    std::move(outer_ref));
        XDB_ASSIGN_OR_RETURN(RelExprPtr row_expr, CompileNode(*spec.row_element));
        std::vector<RelExprPtr> exprs;
        exprs.push_back(std::move(row_expr));
        RelExprPtr order_expr;
        if (!spec.order_by_column.empty()) {
          // Project the order key alongside the XML value; XMLAgg orders by
          // the projected row's second column.
          XDB_ASSIGN_OR_RETURN(RelExprPtr key, ColumnRef(spec.order_by_column));
          exprs.push_back(std::move(key));
          order_expr = std::make_unique<ColumnRefExpr>(
              0, 1, spec.child_table + "." + spec.order_by_column);
        }
        scopes_.pop_back();
        if (logical_) {
          LogicalPlanPtr plan = std::make_unique<LogicalScanNode>(child);
          plan = std::make_unique<LogicalFilterNode>(std::move(plan),
                                                     std::move(pred));
          plan = std::make_unique<LogicalProjectNode>(std::move(plan),
                                                      std::move(exprs));
          plan = std::make_unique<LogicalXmlAggNode>(
              std::move(plan), std::move(order_expr), /*descending=*/false);
          return RelExprPtr(std::make_unique<LogicalApplyExpr>(
              std::shared_ptr<LogicalNode>(std::move(plan))));
        }
        PlanPtr scan(new SeqScanNode(child));
        PlanPtr filtered(new FilterNode(std::move(scan), std::move(pred)));
        PlanPtr projected(new ProjectNode(std::move(filtered), std::move(exprs)));
        PlanPtr agg(new XmlAggNode(std::move(projected), std::move(order_expr),
                                   /*descending=*/false));
        return RelExprPtr(std::make_unique<ScalarSubqueryExpr>(std::move(agg)));
      }
    }
    return Status::Internal("unknown publish spec kind");
  }

  Status CheckSlotsResolved() const {
    if (pending_slots_.empty()) return Status::OK();
    // A recursion target outside the compiled subtree cannot be resolved —
    // the caller (e.g. the rewriter rebuilding a copied subtree) must fall
    // back to functional evaluation.
    return Status::NotImplemented(
        "publishing subtree contains a recursive reference to an element "
        "outside the subtree");
  }

  const Catalog& catalog_;
  bool logical_;
  std::vector<Scope> scopes_;
  /// Recursion-target element spec -> slots awaiting its compiled expr.
  std::map<const PublishSpec*,
           std::vector<std::shared_ptr<RecursiveApplyExpr::Slot>>>
      pending_slots_;
};

void DeriveNode(const PublishSpec& spec, schema::ElementStructure* parent,
                std::vector<const PublishSpec*>* nested_chain, PublishInfo* info,
                std::map<const PublishSpec*, schema::ElementStructure*>*
                    elem_of_spec) {
  switch (spec.kind) {
    case PublishSpec::Kind::kElement: {
      schema::ElementStructure* e = info->structure.NewElement(spec.name);
      for (const auto& [attr, col] : spec.attr_columns) e->attributes.push_back(attr);
      info->bindings[e] = PublishBinding{&spec, *nested_chain};
      (*elem_of_spec)[&spec] = e;
      if (parent != nullptr) {
        int min_occurs = spec.present_if_column.empty() ? 1 : 0;
        parent->children.push_back(schema::ChildRef{e, min_occurs, 1, false});
      } else {
        info->structure.set_root(e);
      }
      for (const auto& child : spec.children) {
        DeriveNode(*child, e, nested_chain, info, elem_of_spec);
      }
      break;
    }
    case PublishSpec::Kind::kColumn:
    case PublishSpec::Kind::kText:
      if (parent != nullptr) parent->has_text = true;
      break;
    case PublishSpec::Kind::kNested: {
      if (spec.recursive_element != nullptr) {
        // The recursion target is an enclosing element, already derived
        // (derivation walks top-down): mirror it as a recursive edge.
        auto it = elem_of_spec->find(spec.recursive_element);
        if (it != elem_of_spec->end() && parent != nullptr) {
          parent->children.push_back(schema::ChildRef{it->second, 0, -1, true});
        }
        break;
      }
      nested_chain->push_back(&spec);
      // The repeating row element.
      size_t before = parent->children.size();
      DeriveNode(*spec.row_element, parent, nested_chain, info, elem_of_spec);
      // Mark it 0..unbounded.
      if (parent->children.size() > before) {
        parent->children[before].min_occurs = 0;
        parent->children[before].max_occurs = -1;
      }
      nested_chain->pop_back();
      break;
    }
  }
}

}  // namespace

Result<RelExprPtr> BuildPublishExpr(const PublishSpec& spec, const Catalog& catalog,
                                    const std::string& base_table) {
  XDB_ASSIGN_OR_RETURN(Table * base, catalog.GetTable(base_table));
  PublishCompiler compiler(catalog);
  return compiler.Compile(spec, base);
}

Result<RelExprPtr> CompilePublishSubtree(
    const PublishSpec& spec, const Catalog& catalog,
    const std::vector<const Table*>& scope_tables) {
  PublishCompiler compiler(catalog);
  return compiler.CompileInScope(spec, scope_tables);
}

Result<RelExprPtr> CompileLogicalPublishSubtree(
    const PublishSpec& spec, const Catalog& catalog,
    const std::vector<const Table*>& scope_tables) {
  PublishCompiler compiler(catalog, /*logical=*/true);
  return compiler.CompileInScope(spec, scope_tables);
}

Result<PublishInfo> DerivePublishStructure(const PublishSpec& spec) {
  if (spec.kind != PublishSpec::Kind::kElement) {
    return Status::InvalidArgument("publishing spec root must be an element");
  }
  PublishInfo info;
  std::vector<const PublishSpec*> chain;
  std::map<const PublishSpec*, schema::ElementStructure*> elem_of_spec;
  DeriveNode(spec, nullptr, &chain, &info, &elem_of_spec);
  return info;
}

}  // namespace xdb::rel
