// XPath 1.0 abstract syntax. The AST is deliberately open (public fields,
// kind tags) because the rewrite module inspects and transforms expressions:
// the XSLT->XQuery rewriter analyses select/match paths, and the
// XQuery->SQL/XML rewriter maps path steps onto relational columns.
#ifndef XDB_XPATH_AST_H_
#define XDB_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xdb::xpath {

enum class Axis {
  kChild,
  kDescendant,
  kParent,
  kAncestor,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
  kAttribute,
  kSelf,
  kDescendantOrSelf,
  kAncestorOrSelf,
};

/// Renders the axis in XPath syntax ("child", "descendant-or-self", ...).
const char* AxisName(Axis axis);
/// True for axes that walk backwards/upwards in the document (§3.5 of the
/// paper eliminates tests on these when structure makes them redundant).
bool IsReverseAxis(Axis axis);

/// A node test within a step: name test, wildcard, or kind test.
struct NodeTest {
  enum class Kind { kName, kAnyName, kText, kComment, kProcessingInstruction, kAnyNode };
  Kind kind = Kind::kAnyNode;
  std::string prefix;     // for kName: namespace prefix as written
  std::string local;      // for kName: local name
  std::string pi_target;  // for kProcessingInstruction with a literal target

  std::string ToString() const;
};

enum class ExprKind {
  kLiteral,
  kNumber,
  kVariableRef,
  kBinary,
  kUnary,
  kFunctionCall,
  kPath,
};

/// Base class for all XPath expressions.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;
  ExprKind kind() const { return kind_; }
  /// Renders the expression back to XPath syntax (stable, used in golden
  /// tests and in the emitted XQuery text).
  virtual std::string ToString() const = 0;
  /// Deep copy.
  virtual std::unique_ptr<Expr> Clone() const = 0;

 private:
  ExprKind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(std::string value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  std::string ToString() const override;
  ExprPtr Clone() const override { return std::make_unique<LiteralExpr>(value); }
  std::string value;
};

class NumberExpr : public Expr {
 public:
  explicit NumberExpr(double value) : Expr(ExprKind::kNumber), value(value) {}
  std::string ToString() const override;
  ExprPtr Clone() const override { return std::make_unique<NumberExpr>(value); }
  double value;
};

class VariableRefExpr : public Expr {
 public:
  explicit VariableRefExpr(std::string name)
      : Expr(ExprKind::kVariableRef), name(std::move(name)) {}
  std::string ToString() const override { return "$" + name; }
  ExprPtr Clone() const override { return std::make_unique<VariableRefExpr>(name); }
  std::string name;  // without the leading '$'
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kMultiply,
  kDiv,
  kMod,
  kUnion,
};

const char* BinaryOpName(BinaryOp op);

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kBinary), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
  }
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

class UnaryExpr : public Expr {
 public:
  explicit UnaryExpr(ExprPtr operand)
      : Expr(ExprKind::kUnary), operand(std::move(operand)) {}
  std::string ToString() const override { return "-" + operand->ToString(); }
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(operand->Clone());
  }
  ExprPtr operand;
};

class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFunctionCall), name(std::move(name)), args(std::move(args)) {}
  std::string ToString() const override;
  ExprPtr Clone() const override;
  std::string name;  // possibly prefixed, e.g. "fn:string"
  std::vector<ExprPtr> args;
};

/// One location step: axis::node-test[pred]...[pred].
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;

  std::string ToString() const;
  Step CloneStep() const;
};

/// A (possibly filtered, possibly rooted) location path. This single class
/// covers XPath's LocationPath, FilterExpr and PathExpr productions:
///   - absolute=true, start=null        => /a/b
///   - absolute=false, start=null       => a/b, @x, ..
///   - start!=null                      => $v/a, func()[1]/b, (expr)/c
///   - start!=null, steps empty         => pure filter expr: $v[1], (e)[2]
struct PathExpr : public Expr {
  PathExpr() : Expr(ExprKind::kPath) {}
  std::string ToString() const override;
  ExprPtr Clone() const override;

  bool absolute = false;
  ExprPtr start;                          // may be null
  std::vector<ExprPtr> start_predicates;  // predicates on the start expr
  std::vector<Step> steps;
};

}  // namespace xdb::xpath

#endif  // XDB_XPATH_AST_H_
