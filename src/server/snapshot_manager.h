// SnapshotManager: epoch-versioned publication of whole-catalog snapshots.
//
// The session layer's MVCC spine. A Publish() captures one TableVersion per
// catalog table (copy-on-write: chunk directories and index trees are
// shared, not copied — see rel::Table::CaptureVersion) and swaps the result
// in as the new head atomically. Pin() is wait-free with respect to
// writers: it loads the head shared_ptr and never touches the writer
// serialization, so a reader beginning a session mid-load observes either
// the epoch before the load or the epoch after it, never a half-loaded
// state.
//
// Reclamation is reference-counted: the manager keeps only weak references
// to retired heads, so a retired epoch's chunk directories and index trees
// are freed the moment the last pinning session drains. MinLiveEpoch() is
// what the session layer feeds to PlanCache::PurgeEpochsBelow.
#ifndef XDB_SERVER_SNAPSHOT_MANAGER_H_
#define XDB_SERVER_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rel/catalog.h"
#include "rel/snapshot.h"

namespace xdb::server {

class SnapshotManager {
 public:
  /// Publishes `first_epoch` (a snapshot of the catalog's current state) so
  /// the very first Pin() already has a head to return. A durable database
  /// seeds this with its recovered commit count + 1 so epochs stay monotone
  /// across restarts (an epoch number never refers to two different states).
  explicit SnapshotManager(rel::Catalog* catalog, uint64_t first_epoch = 1);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The current head. Never blocks on a concurrent Publish: this is a
  /// single atomic shared_ptr load (the publish path's only shared state
  /// with readers).
  std::shared_ptr<const rel::Snapshot> Pin() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Captures every catalog table at its current watermark and publishes
  /// the result as the new head (epoch = previous + 1). The caller must
  /// hold the writer serialization (SessionManager's writer mutex): table
  /// version capture and table mutation may not overlap.
  std::shared_ptr<const rel::Snapshot> Publish();

  uint64_t head_epoch() const {
    return head_.load(std::memory_order_acquire)->epoch();
  }

  /// The oldest epoch any holder can still read: the minimum over the head
  /// and every retired snapshot that is still referenced. Epochs below it
  /// are unreachable — their plan-cache entries are dead weight.
  uint64_t MinLiveEpoch() const;

  /// Retired snapshots still kept alive by a pin (the `live_epochs` gauge:
  /// head + this = distinct readable epochs). Prunes dead entries.
  size_t RetiredLiveCount() const;

 private:
  rel::Catalog* catalog_;
  std::atomic<std::shared_ptr<const rel::Snapshot>> head_;
  // Retired heads, weakly held: pruned on the gauge/reclamation paths.
  mutable std::mutex retired_mu_;
  mutable std::vector<std::weak_ptr<const rel::Snapshot>> retired_;
};

}  // namespace xdb::server

#endif  // XDB_SERVER_SNAPSHOT_MANAGER_H_
