// Catalog: tables, indexes and XML views. Two view flavours mirror the
// paper's examples: publishing views (SQL/XML over relational data, Table 3)
// and XSLT views (XMLTransform over another view, Table 9).
#ifndef XDB_REL_CATALOG_H_
#define XDB_REL_CATALOG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/publish.h"
#include "rel/stats.h"
#include "rel/table.h"
#include "xslt/vm.h"

namespace xdb::rel {

/// An XMLType view column definition.
struct XmlView {
  std::string name;
  std::string xml_column = "xml_content";

  // -- publishing view over a base table ------------------------------------
  std::string base_table;                // non-empty => publishing view
  std::unique_ptr<PublishSpec> publish;  // spec tree
  std::unique_ptr<PublishInfo> info;     // derived structure + provenance
  RelExprPtr publish_expr;               // compiled expression

  // -- XSLT view over another view (Table 9) --------------------------------
  std::string upstream_view;  // non-empty => XSLT view
  std::string stylesheet_text;  // source, retained for checkpoint replay
  std::shared_ptr<const xslt::Stylesheet> stylesheet;
  std::shared_ptr<const xslt::CompiledStylesheet> compiled_stylesheet;

  bool is_publishing() const { return !base_table.empty(); }
  bool is_xslt() const { return !upstream_view.empty(); }
};

/// \brief Owns all persistent objects of one database instance.
///
/// The catalog is also the DDL notification hub: tables forward their
/// index-creation and insert events here (via Table::set_ddl_listener), the
/// catalog adds its own table-/view-creation events, and fans everything out
/// to registered listeners (the plan cache registers itself to invalidate
/// stale prepared transforms).
///
/// Thread safety: object lookups and registrations are guarded by an
/// internal shared mutex (many concurrent readers, exclusive writers), and
/// listener fan-out always runs with no catalog lock held — a listener can
/// safely call back into the catalog. Publish-then-notify is the load-path
/// invariant: a NotificationBatch defers every event recorded while it is
/// alive until it closes, so listeners never observe a catalog (or table
/// state) that is still mid-mutation.
class Catalog : public DdlListener {
 public:
  /// RAII event deferral. While at least one batch is alive on the catalog,
  /// DDL/DML events queue (consecutive duplicates collapsed) instead of
  /// firing; the outermost batch's destructor fires them in order, after
  /// every mutation — and, in the session layer, after the new snapshot
  /// epoch — has been published. Nesting is supported (a bulk load inside a
  /// session-level batch defers to the outermost close). Table drops are
  /// exempt: they fire synchronously, because listeners holding pointers to
  /// the table must drop them before the object dies.
  class NotificationBatch {
   public:
    explicit NotificationBatch(Catalog* catalog);
    ~NotificationBatch();
    NotificationBatch(const NotificationBatch&) = delete;
    NotificationBatch& operator=(const NotificationBatch&) = delete;

   private:
    Catalog* catalog_;
  };

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;

  /// Removes `name` from the catalog (used to roll back partially completed
  /// registrations). Fires OnTableDropped so cached plans holding a pointer
  /// to the table are invalidated before it is destroyed.
  Status DropTable(const std::string& name);

  /// Registers a publishing view; derives structure and compiles the
  /// publishing expression.
  Result<XmlView*> CreatePublishingView(const std::string& name,
                                        const std::string& base_table,
                                        std::unique_ptr<PublishSpec> spec,
                                        const std::string& xml_column);

  /// Registers an XSLT view over `upstream_view`.
  Result<XmlView*> CreateXsltView(const std::string& name,
                                  const std::string& upstream_view,
                                  std::string_view stylesheet_text,
                                  const std::string& xml_column);

  Result<const XmlView*> GetView(const std::string& name) const;

  /// Unregisters a view. STRICTLY a registration-rollback hook (a WAL
  /// commit failing after the view was created): there is no drop-view
  /// listener event, so it must not be called once queries may have
  /// compiled plans against the view.
  Status DropView(const std::string& name);

  /// Every table currently registered (stable iteration order). Used by the
  /// session layer to capture a whole-catalog snapshot at publish time.
  std::vector<Table*> AllTables() const;

  /// Every view currently registered (stable iteration order). Used by the
  /// checkpoint writer to serialize the catalog's view definitions.
  std::vector<const XmlView*> AllViews() const;

  /// True when a view named `name` exists (recovery's idempotence probe).
  bool HasView(const std::string& name) const;

  // -- table statistics (the optimizer's cost-model input) --------------------
  /// Publishes a statistics snapshot for `table` (shred::BulkLoader does this
  /// incrementally per completed load). Replaces any previous snapshot.
  void UpdateTableStats(const std::string& table, TableStats stats);
  /// One-shot ANALYZE: full-scans `table` and stores the snapshot.
  Status AnalyzeTable(const std::string& table);
  /// The stored snapshot, or null when the table was never analyzed/loaded
  /// (the cost model then falls back to live row counts + default NDV).
  /// Shared ownership: the snapshot stays valid even if a concurrent load
  /// publishes a fresh one.
  std::shared_ptr<const TableStats> GetTableStats(
      const std::string& table) const;

  /// Registers a DDL listener (not owned; must outlive the catalog or be
  /// removed first).
  void AddDdlListener(DdlListener* listener);
  void RemoveDdlListener(DdlListener* listener);

  // DdlListener fan-out (tables call the index/insert events; the catalog
  // itself fires the creation events). Inside a NotificationBatch all but
  // OnTableDropped are deferred to the batch close.
  void OnTableCreated(const std::string& table) override;
  void OnIndexCreated(const std::string& table,
                      const std::string& column) override;
  void OnViewCreated(const std::string& view) override;
  void OnRowsInserted(const std::string& table) override;
  void OnTableLoaded(const std::string& table) override;
  void OnTableDropped(const std::string& table) override;

 private:
  struct PendingEvent {
    enum class Kind {
      kTableCreated,
      kIndexCreated,
      kViewCreated,
      kRowsInserted,
      kTableLoaded,
    };
    Kind kind;
    std::string name;    // table or view
    std::string column;  // kIndexCreated only
    bool operator==(const PendingEvent&) const = default;
  };

  // Queues the event when a batch is open (collapsing exact duplicates) and
  // returns true; returns false when the caller should fire immediately.
  bool EnqueueIfBatched(PendingEvent event);
  void Dispatch(const PendingEvent& event);
  // Listener-list snapshot for a lock-free dispatch loop.
  std::vector<DdlListener*> ListenersSnapshot() const;
  void CloseBatch();

  mutable std::shared_mutex mu_;  // guards tables_/views_/stats_
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<XmlView>> views_;
  std::map<std::string, std::shared_ptr<const TableStats>> stats_;

  mutable std::mutex notify_mu_;  // guards listeners_/batch_depth_/pending_
  std::vector<DdlListener*> listeners_;
  int batch_depth_ = 0;
  std::vector<PendingEvent> pending_;
};

}  // namespace xdb::rel

#endif  // XDB_REL_CATALOG_H_
