// Conformance corpus: every xsltmark suite case plus mirrors of the
// examples/ programs, each runnable through all four execution paths —
//
//   interpreter   tree-walking xslt::Interpreter over the materialized view
//   vm            TransformView with rewrite disabled (plan C, XSLTVM)
//   xquery        TransformView with SQL rewrite disabled (plan B or fallback)
//   sql           TransformView with the full pipeline (plan A or fallback)
//
// All four outputs are canonicalized and must agree byte-for-byte per base
// row. A case whose stylesheet the rewriter rejects still runs four ways —
// the rewrite arms just fall back to functional, which is itself part of the
// contract being checked.
#ifndef XDB_DIFFTEST_CORPUS_H_
#define XDB_DIFFTEST_CORPUS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_stats.h"
#include "core/xmldb.h"

namespace xdb::difftest {

struct CorpusCase {
  std::string name;        ///< "xsltmark/<case>" or "example/<program>"
  std::string view;        ///< view the stylesheet runs over
  std::string stylesheet;  ///< complete stylesheet text
  /// Builds the case's tables, rows and `view` inside a fresh database.
  std::function<Status(XmlDb*)> setup;
};

/// The full corpus: all 40 xsltmark cases (small scale), the three examples/
/// program mirrors (quickstart, dept_report, schema_transform), and the
/// structural-axis cases (`structural/` prefix: `//`-heavy descendant sweeps
/// and ancestor:: counting over shredded storage — these must stay on the
/// shredded SQL path with the interval index engaged).
std::vector<CorpusCase> ConformanceCorpus();

struct FourWayResult {
  bool agreed = false;
  std::string detail;  ///< first divergence: arm names, row, outputs
  /// Path each TransformView arm actually took (vm, xquery, sql).
  ExecutionPath vm_path = ExecutionPath::kFunctional;
  ExecutionPath xquery_path = ExecutionPath::kFunctional;
  ExecutionPath sql_path = ExecutionPath::kFunctional;
  bool sql_used_index = false;  ///< the sql arm's plan engaged an index
  /// Structural-join operators opened by the sql arm (interval joins).
  uint64_t sql_structural_joins = 0;
  int rows = 0;  ///< base rows compared
};

/// Runs `c` through all four paths in a fresh database and compares the
/// canonicalized outputs row by row.
Result<FourWayResult> RunFourWay(const CorpusCase& c);

}  // namespace xdb::difftest

#endif  // XDB_DIFFTEST_CORPUS_H_
