#include "xquery/ast.h"

#include "common/strings.h"

namespace xdb::xquery {

namespace {
std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

// Escapes literal text for direct-constructor content.
std::string EscapeContent(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '{':
        out += "{{";
        break;
      case '}':
        out += "}}";
        break;
      case '<':
        out += "&lt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string XPathQExpr::ToString(int) const { return expr->ToString(); }

std::string TextLiteralQExpr::ToString(int) const { return EscapeContent(text); }

std::string FlworQExpr::ToString(int indent) const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    const Clause& c = clauses[i];
    if (i > 0) out += "\n" + Indent(indent);
    out += c.kind == Clause::Kind::kFor ? "for $" : "let $";
    out += c.var;
    out += c.kind == Clause::Kind::kFor ? " in " : " := ";
    out += c.expr->ToString(indent + 1);
  }
  if (where != nullptr) {
    out += "\n" + Indent(indent) + "where " + where->ToString(indent + 1);
  }
  if (!order_by.empty()) {
    out += "\n" + Indent(indent) + "order by ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].key->ToString(indent + 1);
      if (order_by[i].descending) out += " descending";
    }
  }
  out += "\n" + Indent(indent) + "return\n";
  out += Indent(indent + 1) + return_expr->ToString(indent + 1);
  return out;
}

QExprPtr FlworQExpr::Clone() const {
  auto out = std::make_unique<FlworQExpr>();
  for (const Clause& c : clauses) {
    out->clauses.push_back(Clause{c.kind, c.var, c.expr->Clone()});
  }
  if (where) out->where = where->Clone();
  for (const OrderSpec& o : order_by) {
    out->order_by.push_back(OrderSpec{o.key->Clone(), o.descending});
  }
  out->return_expr = return_expr->Clone();
  return out;
}

std::string IfQExpr::ToString(int indent) const {
  std::string out = "if (" + cond->ToString(indent) + ") then\n";
  out += Indent(indent + 1) + then_expr->ToString(indent + 1);
  out += "\n" + Indent(indent) + "else\n";
  out += Indent(indent + 1) +
         (else_expr != nullptr ? else_expr->ToString(indent + 1) : "()");
  return out;
}

std::string SequenceQExpr::ToString(int indent) const {
  if (items.empty()) return "()";
  std::string out = "(\n";
  for (size_t i = 0; i < items.size(); ++i) {
    out += Indent(indent + 1) + items[i]->ToString(indent + 1);
    if (i + 1 < items.size()) out += ",";
    out += "\n";
  }
  out += Indent(indent) + ")";
  return out;
}

QExprPtr SequenceQExpr::Clone() const {
  auto out = std::make_unique<SequenceQExpr>();
  for (const auto& i : items) out->items.push_back(i->Clone());
  return out;
}

std::string ElementCtorQExpr::ToString(int indent) const {
  std::string out = "<" + name;
  for (const Attr& a : attributes) {
    out += " " + a.name + "=\"";
    for (const auto& part : a.value_parts) {
      if (part->kind() == QExprKind::kTextLiteral) {
        out += EscapeXmlAttribute(
            static_cast<const TextLiteralQExpr*>(part.get())->text);
      } else {
        out += "{" + part->ToString(indent) + "}";
      }
    }
    out += "\"";
  }
  if (children.empty()) return out + "/>";
  out += ">";
  if (compact) {
    for (const auto& child : children) {
      if (child->kind() == QExprKind::kTextLiteral) {
        out += child->ToString(indent);
      } else {
        out += "{" + child->ToString(indent) + "}";
      }
    }
    return out + "</" + name + ">";
  }
  out += "\n";
  for (const auto& child : children) {
    if (child->kind() == QExprKind::kTextLiteral) {
      out += Indent(indent + 1) + child->ToString(indent + 1) + "\n";
    } else if (child->kind() == QExprKind::kElementCtor) {
      out += Indent(indent + 1) + child->ToString(indent + 1) + "\n";
    } else {
      out += Indent(indent + 1) + "{ " + child->ToString(indent + 1) + " }\n";
    }
  }
  out += Indent(indent) + "</" + name + ">";
  return out;
}

QExprPtr ElementCtorQExpr::Clone() const {
  auto out = std::make_unique<ElementCtorQExpr>(name);
  for (const Attr& a : attributes) {
    Attr na;
    na.name = a.name;
    for (const auto& p : a.value_parts) na.value_parts.push_back(p->Clone());
    out->attributes.push_back(std::move(na));
  }
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->compact = compact;
  return out;
}

std::string TextCtorQExpr::ToString(int indent) const {
  return "text { " + value->ToString(indent) + " }";
}

std::string AttributeCtorQExpr::ToString(int indent) const {
  return "attribute " + name + " { " + value->ToString(indent) + " }";
}

std::string InstanceOfQExpr::ToString(int indent) const {
  std::string type;
  switch (type_kind) {
    case TypeKind::kElement:
      type = "element(" + element_name + ")";
      break;
    case TypeKind::kText:
      type = "text()";
      break;
    case TypeKind::kAttribute:
      type = "attribute(" + element_name + ")";
      break;
    case TypeKind::kDocument:
      type = "document-node()";
      break;
  }
  return expr->ToString(indent) + " instance of " + type;
}

std::string FunctionCallQExpr::ToString(int indent) const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToString(indent);
  }
  return out + ")";
}

QExprPtr FunctionCallQExpr::Clone() const {
  std::vector<QExprPtr> cloned;
  for (const auto& a : args) cloned.push_back(a->Clone());
  return std::make_unique<FunctionCallQExpr>(name, std::move(cloned));
}

std::string Query::ToString() const {
  std::string out;
  for (const VarDecl& v : variables) {
    out += "declare variable $" + v.name + " := " + v.expr->ToString(0) + ";\n";
  }
  for (const FunctionDecl& f : functions) {
    out += "declare function " + f.name + "(";
    for (size_t i = 0; i < f.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += "$" + f.params[i];
    }
    out += ")\n{\n  " + f.body->ToString(1) + "\n};\n";
  }
  if (body != nullptr) out += body->ToString(0);
  return out;
}

QExprPtr MakeXPath(xpath::ExprPtr e) {
  return std::make_unique<XPathQExpr>(std::move(e));
}

QExprPtr MakeVarRef(const std::string& name) {
  return MakeXPath(std::make_unique<xpath::VariableRefExpr>(name));
}

QExprPtr MakeStringLiteral(const std::string& s) {
  return MakeXPath(std::make_unique<xpath::LiteralExpr>(s));
}

}  // namespace xdb::xquery
