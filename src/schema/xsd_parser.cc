#include "schema/xsd_parser.h"

#include <map>
#include <vector>

#include "common/strings.h"
#include "xml/dom.h"
#include "xml/parser.h"

namespace xdb::schema {

namespace {

constexpr std::string_view kXsdNs = "http://www.w3.org/2001/XMLSchema";

bool IsXsd(const xml::Node* n, std::string_view local) {
  return n->is_element() && n->local_name() == local &&
         (n->namespace_uri() == kXsdNs || n->namespace_uri().empty());
}

struct Occurs {
  int min = 1;
  int max = 1;
};

Result<Occurs> ReadOccurs(const xml::Node* n) {
  Occurs o;
  std::string min = n->GetAttribute("minOccurs");
  std::string max = n->GetAttribute("maxOccurs");
  if (!min.empty()) o.min = std::atoi(min.c_str());
  if (!max.empty()) {
    o.max = (max == "unbounded") ? -1 : std::atoi(max.c_str());
  }
  if (o.min < 0 || (o.max != -1 && o.max < o.min)) {
    return Status::ParseError("XSD: invalid minOccurs/maxOccurs");
  }
  return o;
}

class XsdBuilder {
 public:
  explicit XsdBuilder(const xml::Node* schema_root) : schema_(schema_root) {}

  Result<StructuralInfo> Build() {
    // Index global elements and named complex types.
    for (const xml::Node* child : schema_->children()) {
      if (IsXsd(child, "element")) {
        std::string name = child->GetAttribute("name");
        if (name.empty()) return Status::ParseError("XSD: global element w/o name");
        global_elements_[name] = child;
      } else if (IsXsd(child, "complexType")) {
        std::string name = child->GetAttribute("name");
        if (name.empty()) return Status::ParseError("XSD: global type w/o name");
        named_types_[name] = child;
      }
    }
    if (global_elements_.empty()) {
      return Status::ParseError("XSD: no global element declaration");
    }
    // Root: first global element in document order.
    const xml::Node* root_decl = nullptr;
    for (const xml::Node* child : schema_->children()) {
      if (IsXsd(child, "element")) {
        root_decl = child;
        break;
      }
    }
    XDB_ASSIGN_OR_RETURN(ElementStructure * root, BuildElement(root_decl));
    info_.set_root(root);
    return std::move(info_);
  }

 private:
  // Builds (or reuses, for recursion) the structure of one element decl.
  Result<ElementStructure*> BuildElement(const xml::Node* decl) {
    std::string name = decl->GetAttribute("name");
    std::string ref = decl->GetAttribute("ref");
    if (!ref.empty()) {
      auto it = global_elements_.find(StripPrefix(ref));
      if (it == global_elements_.end()) {
        return Status::ParseError("XSD: unresolved element ref '" + ref + "'");
      }
      return BuildElement(it->second);
    }
    if (name.empty()) return Status::ParseError("XSD: element without name");

    // Recursion / sharing: one structure per declaration node.
    auto done = built_.find(decl);
    if (done != built_.end()) return done->second;
    if (in_progress_.count(decl) > 0) {
      // Cycle: hand back the placeholder; the caller marks the edge recursive.
      return in_progress_[decl];
    }

    ElementStructure* e = info_.NewElement(name);
    in_progress_[decl] = e;

    const xml::Node* type_node = nullptr;
    std::string type_attr = StripPrefix(decl->GetAttribute("type"));
    if (!type_attr.empty()) {
      auto nt = named_types_.find(type_attr);
      if (nt != named_types_.end()) {
        type_node = nt->second;
      } else {
        // Built-in simple type (xs:string, xs:int, ...): text-only element.
        e->has_text = true;
      }
    } else {
      for (const xml::Node* child : decl->children()) {
        if (IsXsd(child, "complexType")) {
          type_node = child;
          break;
        }
        if (IsXsd(child, "simpleType")) {
          e->has_text = true;
        }
      }
      if (type_node == nullptr && !e->has_text && decl->children().empty()) {
        // <xs:element name="x"/> — treat as text-capable (anyType-ish).
        e->has_text = true;
      }
    }

    if (type_node != nullptr) {
      XDB_RETURN_NOT_OK(FillComplexType(e, type_node));
    }
    in_progress_.erase(decl);
    built_[decl] = e;
    return e;
  }

  Status FillComplexType(ElementStructure* e, const xml::Node* type_node) {
    if (type_node->GetAttribute("mixed") == "true") e->has_text = true;
    for (const xml::Node* child : type_node->children()) {
      if (IsXsd(child, "sequence")) {
        e->group = ModelGroup::kSequence;
        XDB_RETURN_NOT_OK(FillParticles(e, child));
      } else if (IsXsd(child, "choice")) {
        e->group = ModelGroup::kChoice;
        XDB_RETURN_NOT_OK(FillParticles(e, child));
      } else if (IsXsd(child, "all")) {
        e->group = ModelGroup::kAll;
        XDB_RETURN_NOT_OK(FillParticles(e, child));
      } else if (IsXsd(child, "attribute")) {
        e->attributes.push_back(child->GetAttribute("name"));
      } else if (IsXsd(child, "simpleContent")) {
        e->has_text = true;
        for (const xml::Node* ext : child->children()) {
          if (IsXsd(ext, "extension")) {
            for (const xml::Node* attr : ext->children()) {
              if (IsXsd(attr, "attribute")) {
                e->attributes.push_back(attr->GetAttribute("name"));
              }
            }
          }
        }
      }
    }
    return Status::OK();
  }

  Status FillParticles(ElementStructure* e, const xml::Node* group_node) {
    for (const xml::Node* particle : group_node->children()) {
      if (!IsXsd(particle, "element")) continue;
      XDB_ASSIGN_OR_RETURN(Occurs occ, ReadOccurs(particle));
      XDB_ASSIGN_OR_RETURN(ElementStructure * child, BuildElement(particle));
      bool recursive = built_.find(FindDeclFor(particle)) == built_.end() &&
                       IsInProgressTarget(child);
      e->children.push_back(ChildRef{child, occ.min, occ.max, recursive});
    }
    return Status::OK();
  }

  // Helper: is `s` currently an in-progress placeholder (recursion target)?
  bool IsInProgressTarget(const ElementStructure* s) const {
    for (const auto& [decl, es] : in_progress_) {
      if (es == s) return true;
    }
    return false;
  }

  // For a particle that may be a ref, the declaration node BuildElement used.
  const xml::Node* FindDeclFor(const xml::Node* particle) const {
    std::string ref = particle->GetAttribute("ref");
    if (!ref.empty()) {
      auto it = global_elements_.find(StripPrefix(ref));
      if (it != global_elements_.end()) return it->second;
    }
    return particle;
  }

  static std::string StripPrefix(const std::string& qname) {
    size_t colon = qname.find(':');
    return colon == std::string::npos ? qname : qname.substr(colon + 1);
  }

  const xml::Node* schema_;
  StructuralInfo info_;
  std::map<std::string, const xml::Node*> global_elements_;
  std::map<std::string, const xml::Node*> named_types_;
  std::map<const xml::Node*, ElementStructure*> built_;
  std::map<const xml::Node*, ElementStructure*> in_progress_;
};

}  // namespace

Result<StructuralInfo> ParseXsd(std::string_view xsd_text) {
  xml::ParseOptions opts;
  opts.strip_whitespace_text = true;
  XDB_ASSIGN_OR_RETURN(auto doc, xml::ParseDocument(xsd_text, opts));
  const xml::Node* root = doc->document_element();
  if (!IsXsd(root, "schema")) {
    return Status::ParseError("XSD: document element is not xs:schema");
  }
  XsdBuilder builder(root);
  return builder.Build();
}

}  // namespace xdb::schema
