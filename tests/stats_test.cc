// Table statistics (rel/stats.h): the incremental StatsBuilder against the
// one-shot ANALYZE scan, catalog storage/lookup, and the BulkLoader's
// publish-on-load path that keeps shredded tables analyzed as documents land.
#include "rel/stats.h"

#include <gtest/gtest.h>

#include <string>

#include "core/xmldb.h"
#include "rel/catalog.h"
#include "schema/structure.h"

namespace xdb::rel {
namespace {

class StatsBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "emp", Schema({{"empno", DataType::kInt},
                       {"ename", DataType::kString},
                       {"sal", DataType::kInt}}));
    ASSERT_TRUE(t.ok());
    emp_ = *t;
  }

  void InsertEmp(int64_t empno, const char* ename, Datum sal) {
    ASSERT_TRUE(
        emp_->Insert({Datum(empno), Datum(ename), std::move(sal)}).ok());
  }

  Catalog catalog_;
  Table* emp_ = nullptr;
};

TEST_F(StatsBuilderTest, ComputeTableStatsCountsRowsNdvNullsMinMax) {
  InsertEmp(1, "a", Datum(int64_t{100}));
  InsertEmp(2, "b", Datum(int64_t{300}));
  InsertEmp(3, "a", Datum::Null());
  InsertEmp(4, "c", Datum(int64_t{100}));

  TableStats ts = ComputeTableStats(*emp_);
  EXPECT_EQ(ts.row_count, 4u);
  ASSERT_NE(ts.column("empno"), nullptr);
  EXPECT_EQ(ts.column("empno")->ndv, 4);
  EXPECT_EQ(ts.column("ename")->ndv, 3);  // "a" repeats
  EXPECT_EQ(ts.column("sal")->ndv, 2);    // 100 repeats; NULL not counted
  EXPECT_EQ(ts.column("sal")->null_count, 1);
  EXPECT_EQ(ts.column("sal")->min.Compare(Datum(int64_t{100})), 0);
  EXPECT_EQ(ts.column("sal")->max.Compare(Datum(int64_t{300})), 0);
  EXPECT_TRUE(ComputeTableStats(*emp_).column("empno")->min.Compare(
                  Datum(int64_t{1})) == 0);
}

TEST_F(StatsBuilderTest, IncrementalBuilderMatchesOneShotAnalyze) {
  StatsBuilder builder(&emp_->schema());
  InsertEmp(1, "a", Datum(int64_t{100}));
  InsertEmp(2, "b", Datum(int64_t{200}));
  builder.AddRows(*emp_, 0, emp_->row_count());

  // Second batch folds only the appended range — no re-scan of [0, 2).
  size_t mark = emp_->row_count();
  InsertEmp(3, "a", Datum::Null());
  InsertEmp(4, "z", Datum(int64_t{50}));
  builder.AddRows(*emp_, mark, emp_->row_count());

  TableStats incremental = builder.Snapshot();
  TableStats full = ComputeTableStats(*emp_);
  EXPECT_EQ(incremental.row_count, full.row_count);
  for (const char* col : {"empno", "ename", "sal"}) {
    SCOPED_TRACE(col);
    const ColumnStats* a = incremental.column(col);
    const ColumnStats* b = full.column(col);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->ndv, b->ndv);
    EXPECT_EQ(a->null_count, b->null_count);
    EXPECT_EQ(a->min.Compare(b->min), 0);
    EXPECT_EQ(a->max.Compare(b->max), 0);
  }
}

TEST_F(StatsBuilderTest, EmptyTableSnapshotIsAllZero) {
  TableStats ts = ComputeTableStats(*emp_);
  EXPECT_EQ(ts.row_count, 0u);
  ASSERT_NE(ts.column("sal"), nullptr);
  EXPECT_EQ(ts.column("sal")->ndv, 0);
  EXPECT_TRUE(ts.column("sal")->min.is_null());
}

TEST_F(StatsBuilderTest, CatalogStoresAndAnalyzesStats) {
  EXPECT_EQ(catalog_.GetTableStats("emp"), nullptr);

  InsertEmp(1, "a", Datum(int64_t{100}));
  InsertEmp(2, "b", Datum(int64_t{200}));
  ASSERT_TRUE(catalog_.AnalyzeTable("emp").ok());
  std::shared_ptr<const TableStats> ts = catalog_.GetTableStats("emp");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 2u);
  EXPECT_EQ(ts->column("ename")->ndv, 2);

  // Manual override (the optimizer tests steer cost decisions this way).
  TableStats fake;
  fake.row_count = 1000;
  fake.columns["ename"].ndv = 7;
  catalog_.UpdateTableStats("emp", std::move(fake));
  ts = catalog_.GetTableStats("emp");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 1000u);
  EXPECT_EQ(ts->column("ename")->ndv, 7);

  EXPECT_FALSE(catalog_.AnalyzeTable("no_such_table").ok());
}

// ---------------------------------------------------------------------------
// BulkLoader publishes statistics as documents land.
// ---------------------------------------------------------------------------

schema::StructuralInfo ItemsStructure() {
  schema::StructureBuilder b;
  auto* items = b.Element("items");
  auto* item = b.AddChild(items, "item", 0, -1);
  b.AddText(b.AddChild(item, "sku"));
  return b.Build(items);
}

std::string ItemsDocument(int first_sku, int count) {
  std::string doc = "<items>";
  for (int i = 0; i < count; ++i) {
    doc += "<item><sku>s" + std::to_string(first_sku + i) + "</sku></item>";
  }
  doc += "</items>";
  return doc;
}

TEST(StatsBulkLoadTest, LoadDocumentPublishesStatsIncrementally) {
  XmlDb db;
  ASSERT_TRUE(db.RegisterShreddedSchema("items_view", ItemsStructure()).ok());
  ASSERT_TRUE(db.LoadDocument("items_view", ItemsDocument(0, 5)).ok());

  const shred::ShredMapping* mapping = db.shredded_mapping("items_view");
  ASSERT_NE(mapping, nullptr);
  const shred::ShredTable* item = nullptr;
  for (const auto& t : mapping->tables()) {
    if (!t->is_root) item = t.get();
  }
  ASSERT_NE(item, nullptr);

  std::shared_ptr<const TableStats> ts = db.catalog()->GetTableStats(item->name);
  ASSERT_NE(ts, nullptr) << "BulkLoader should publish stats on load";
  EXPECT_EQ(ts->row_count, 5u);
  const ColumnStats* sku = ts->column("v_sku");
  ASSERT_NE(sku, nullptr);
  EXPECT_EQ(sku->ndv, 5);

  // A second document folds in incrementally: counts accumulate.
  ASSERT_TRUE(db.LoadDocument("items_view", ItemsDocument(5, 3)).ok());
  ts = db.catalog()->GetTableStats(item->name);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->row_count, 8u);
  EXPECT_EQ(ts->column("v_sku")->ndv, 8);
}

}  // namespace
}  // namespace xdb::rel
