// WAL record model and binary encoding.
//
// On disk, both the log (`wal.log`) and checkpoint files (`checkpoint.xck`)
// are sequences of *frames*:
//
//   [u32 payload_len][u32 masked_crc32c(payload)][payload bytes]
//
// (all integers little-endian). A frame whose header is short, whose length
// overruns the file, or whose CRC mismatches marks the torn tail: recovery
// truncates the log there (and reports the finding as kDataLoss). The
// payload is one Record:
//
//   [u64 lsn][u8 type][u64 batch_id][type-specific fields]
//
// LSNs are monotone within one log; batch records between a kBatchBegin and
// its kCommit form one atomic unit (a document load, a DDL statement) —
// recovery rolls back any batch whose commit never made it to disk.
// Checkpoint files reuse the same Record encoding with a private LSN space
// starting at 1; kCheckpointHeader carries the WAL watermark the checkpoint
// covers and kCheckpointFooter proves the file is complete.
#ifndef XDB_WAL_FORMAT_H_
#define XDB_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rel/stats.h"
#include "rel/table.h"

namespace xdb::wal {

/// Size of the [len][crc] frame header.
inline constexpr size_t kFrameHeaderSize = 8;
/// Hard per-frame payload bound; anything larger is treated as corruption
/// rather than an allocation request (a torn length field must never make
/// the reader try to allocate 4 GB).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class RecordType : uint8_t {
  kBatchBegin = 1,     ///< opens batch `batch_id`
  kRowBatch = 2,       ///< rows appended to `table` at position `first_rowid`
  kCreateIndex = 3,    ///< B+tree built on (table, column)
  kRegisterSchema = 4, ///< shredded schema: view + structure blob + options
  kCreateXsltView = 5, ///< XSLT view: view, upstream, xml_column, stylesheet
  kDropTable = 6,      ///< table removed from the catalog
  kStats = 7,          ///< TableStats snapshot published for `table`
  kCommit = 8,         ///< closes batch `batch_id`; the durability point
  kAbort = 9,          ///< batch abandoned (written on clean failure paths)
  kCreateTable = 10,   ///< checkpoint: non-shredded table schema + indexes

  kCheckpointHeader = 32,  ///< last_lsn/commits/epoch the checkpoint covers
  kCheckpointFooter = 33,  ///< record_count; absence = incomplete checkpoint
};

const char* RecordTypeName(RecordType t);

/// One decoded WAL/checkpoint record. A kitchen-sink struct (only the
/// fields of the record's type are meaningful) so replay code can switch on
/// `type` without a class hierarchy.
struct Record {
  uint64_t lsn = 0;
  RecordType type = RecordType::kBatchBegin;
  uint64_t batch_id = 0;

  std::string table;    // kRowBatch/kCreateIndex/kDropTable/kStats/kCreateTable
  std::string column;   // kCreateIndex
  std::string view;     // kRegisterSchema/kCreateXsltView
  std::string upstream; // kCreateXsltView
  std::string xml_column;  // kCreateXsltView
  std::string text;     // kRegisterSchema: structure blob; kCreateXsltView:
                        // stylesheet text
  std::vector<std::string> value_indexes;  // kRegisterSchema (nominated
                                           // paths), kCreateTable (columns)
  uint64_t batch_rows = 0;   // kRegisterSchema
  uint64_t first_rowid = 0;  // kRowBatch: position of rows[0] in the table
  std::vector<rel::Row> rows;  // kRowBatch
  rel::Schema schema;          // kCreateTable
  rel::TableStats stats;       // kStats
  uint64_t epoch = 0;          // kCommit/kCheckpointHeader
  uint64_t last_lsn = 0;       // kCheckpointHeader: WAL LSN watermark
  uint64_t commits = 0;        // kCheckpointHeader: committed batches so far
  uint64_t record_count = 0;   // kCheckpointFooter
};

/// Encodes `record` into a frame payload (no frame header). Fails with
/// kInvalidArgument on values outside the storable model (XML datums).
Result<std::string> EncodeRecord(const Record& record);

/// Decodes one frame payload. A CRC-valid payload that fails to decode is a
/// bug or version skew, reported as kDataLoss.
Result<Record> DecodeRecord(std::string_view payload);

/// Wraps `payload` into a complete frame (header + payload).
std::string EncodeFrame(std::string_view payload);

// -- low-level byte helpers (shared with the checkpoint writer/tests) -------

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
uint32_t GetU32(const unsigned char* p);
uint64_t GetU64(const unsigned char* p);

}  // namespace xdb::wal

#endif  // XDB_WAL_FORMAT_H_
