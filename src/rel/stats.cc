#include "rel/stats.h"

namespace xdb::rel {

StatsBuilder::StatsBuilder(const Schema* schema) : schema_(schema) {
  columns_.resize(schema->column_count());
}

void StatsBuilder::AddRows(const Table& table, size_t begin, size_t end) {
  for (size_t r = begin; r < end && r < table.row_count(); ++r) {
    const Row& row = table.row(static_cast<int64_t>(r));
    ++rows_seen_;
    for (size_t c = 0; c < columns_.size() && c < row.size(); ++c) {
      const Datum& v = row[c];
      ColumnAcc& acc = columns_[c];
      if (v.is_null()) {
        ++acc.null_count;
        continue;
      }
      if (v.type() == DataType::kXml) continue;  // not a key domain
      acc.hashes.insert(v.Hash());
      if (acc.min.is_null() || v.Compare(acc.min) < 0) acc.min = v;
      if (acc.max.is_null() || v.Compare(acc.max) > 0) acc.max = v;
    }
  }
}

TableStats StatsBuilder::Snapshot() const {
  TableStats stats;
  stats.row_count = rows_seen_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnStats cs;
    cs.ndv = static_cast<int64_t>(columns_[c].hashes.size());
    cs.null_count = columns_[c].null_count;
    cs.min = columns_[c].min;
    cs.max = columns_[c].max;
    stats.columns[schema_->column(c).name] = std::move(cs);
  }
  return stats;
}

TableStats ComputeTableStats(const Table& table) {
  StatsBuilder builder(&table.schema());
  builder.AddRows(table, 0, table.row_count());
  return builder.Snapshot();
}

}  // namespace xdb::rel
