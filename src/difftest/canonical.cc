#include "difftest/canonical.h"

#include <algorithm>

#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xdb::difftest {

namespace {

// Copies `src`'s children into `dst` (owned by `out`) in canonical form:
// attributes re-added in sorted order, adjacent text coalesced, empty text
// dropped. Comments and PIs pass through — an engine that emits a comment
// where another does not *is* a divergence.
void CopyCanonicalChildren(const xml::Node* src, xml::Node* dst,
                           xml::Document* out) {
  std::string pending_text;
  auto flush_text = [&] {
    if (!pending_text.empty()) {
      dst->AppendChild(out->CreateText(pending_text));
      pending_text.clear();
    }
  };
  for (const xml::Node* child : src->children()) {
    switch (child->type()) {
      case xml::NodeType::kText:
        pending_text += child->value();
        break;
      case xml::NodeType::kElement: {
        flush_text();
        xml::Node* copy =
            out->CreateElement(child->qualified_name(), child->namespace_uri());
        std::vector<const xml::Node*> attrs(child->attributes().begin(),
                                            child->attributes().end());
        std::sort(attrs.begin(), attrs.end(),
                  [](const xml::Node* a, const xml::Node* b) {
                    return a->qualified_name() < b->qualified_name();
                  });
        for (const xml::Node* a : attrs) {
          copy->SetAttribute(a->qualified_name(), a->value());
        }
        dst->AppendChild(copy);
        CopyCanonicalChildren(child, copy, out);
        break;
      }
      case xml::NodeType::kComment:
        flush_text();
        dst->AppendChild(out->CreateComment(child->value()));
        break;
      case xml::NodeType::kProcessingInstruction:
        flush_text();
        dst->AppendChild(out->CreateProcessingInstruction(child->local_name(),
                                                          child->value()));
        break;
      default:
        break;
    }
  }
  flush_text();
}

}  // namespace

Result<std::string> CanonicalizeXml(std::string_view fragment) {
  // Wrap so multi-root fragments and bare text parse as one document.
  std::string wrapped = "<c14n-wrap>";
  wrapped += fragment;
  wrapped += "</c14n-wrap>";
  XDB_ASSIGN_OR_RETURN(auto doc, xml::ParseDocument(wrapped));
  xml::Document out;
  xml::Node* holder = out.CreateElement("c14n-wrap");
  CopyCanonicalChildren(doc->document_element(), holder, &out);
  std::vector<xml::Node*> children(holder->children().begin(),
                                   holder->children().end());
  return xml::SerializeAll(children);
}

}  // namespace xdb::difftest
