// Session-layer tests: snapshot pin/publish/reclaim, admission control,
// per-session quotas and the epoch-keyed plan cache. The suite names
// (Session*/Snapshot*) are part of the CI TSan filter — everything here
// must stay clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/xmldb.h"
#include "schema/structure.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/snapshot_manager.h"

namespace xdb::server {
namespace {

constexpr const char* kView = "items_view";

constexpr const char* kStylesheet =
    "<xsl:stylesheet version=\"1.0\" "
    "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
    "<xsl:template match=\"/\"><out>"
    "<xsl:for-each select=\"items/item\">"
    "<v><xsl:value-of select=\"sku\"/></v>"
    "</xsl:for-each>"
    "</out></xsl:template></xsl:stylesheet>";

schema::StructuralInfo ItemsStructure() {
  schema::StructureBuilder b;
  auto* items = b.Element("items");
  auto* item = b.AddChild(items, "item", 0, -1);
  b.AddText(b.AddChild(item, "sku"));
  return b.Build(items);
}

std::string ItemsDocument(int first_sku, int count) {
  std::string doc = "<items>";
  for (int i = 0; i < count; ++i) {
    doc += "<item><sku>s" + std::to_string(first_sku + i) + "</sku></item>";
  }
  doc += "</items>";
  return doc;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterShreddedSchema(kView, ItemsStructure()).ok());
    ASSERT_TRUE(db_.LoadDocument(kView, ItemsDocument(0, 4)).ok());
  }

  XmlDb db_;
};

// ---------------------------------------------------------------------------
// SnapshotManager: publish, pin, reclamation accounting
// ---------------------------------------------------------------------------

TEST_F(SessionTest, SnapshotManagerPublishesMonotoneEpochs) {
  SnapshotManager snaps(db_.catalog());
  EXPECT_EQ(snaps.head_epoch(), 1u);
  auto pinned = snaps.Pin();
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_GT(pinned->table_count(), 0u);

  auto e2 = snaps.Publish();
  EXPECT_EQ(e2->epoch(), 2u);
  EXPECT_EQ(snaps.head_epoch(), 2u);
  // The old pin still reads epoch 1 and keeps it alive.
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(snaps.MinLiveEpoch(), 1u);
  EXPECT_EQ(snaps.RetiredLiveCount(), 1u);

  pinned.reset();
  EXPECT_EQ(snaps.MinLiveEpoch(), 2u);
  EXPECT_EQ(snaps.RetiredLiveCount(), 0u);
}

TEST(SnapshotManagerTest, PinIsStableAcrossConcurrentPublishes) {
  XmlDb db;
  ASSERT_TRUE(db.RegisterShreddedSchema(kView, ItemsStructure()).ok());
  ASSERT_TRUE(db.LoadDocument(kView, ItemsDocument(0, 2)).ok());
  SnapshotManager snaps(db.catalog());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    // Publisher-only mutation: Publish requires writer serialization, which
    // this single thread provides.
    while (!stop.load(std::memory_order_acquire)) {
      snaps.Publish();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    auto pin = snaps.Pin();
    ASSERT_NE(pin, nullptr);
    // Epoch and table set are immutable once pinned.
    ASSERT_GT(pin->epoch(), 0u);
    ASSERT_GT(pin->table_count(), 0u);
  }
  stop.store(true, std::memory_order_release);
  publisher.join();
}

// ---------------------------------------------------------------------------
// AdmissionController: slots, queueing, shedding, cancellation
// ---------------------------------------------------------------------------

TEST(SessionAdmissionTest, RejectsWhenQueueIsFull) {
  AdmissionController adm(/*max_concurrent=*/1, /*max_queue=*/0);
  auto t1 = adm.Acquire(nullptr);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(adm.running(), 1u);

  auto t2 = adm.Acquire(nullptr);
  ASSERT_FALSE(t2.ok());
  EXPECT_EQ(t2.status().code(), StatusCode::kResourceExhausted);

  t1->Release();
  EXPECT_EQ(adm.running(), 0u);
  auto t3 = adm.Acquire(nullptr);
  EXPECT_TRUE(t3.ok());
}

TEST(SessionAdmissionTest, QueuedCallerGetsTheFreedSlot) {
  AdmissionController adm(1, 4);
  auto held = adm.Acquire(nullptr);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = adm.Acquire(nullptr);
    ASSERT_TRUE(t.ok());
    admitted.store(true, std::memory_order_release);
  });
  // The waiter must be parked, not admitted.
  while (adm.queue_depth() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));

  held->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load(std::memory_order_acquire));
  EXPECT_EQ(adm.running(), 0u);
}

TEST(SessionAdmissionTest, CancelWhileQueuedReturnsCancelled) {
  AdmissionController adm(1, 4);
  auto held = adm.Acquire(nullptr);
  ASSERT_TRUE(held.ok());

  governor::CancelToken cancel;
  Status queued_status;
  std::thread waiter([&] {
    auto t = adm.Acquire(&cancel);
    queued_status = t.status();
  });
  while (adm.queue_depth() == 0) std::this_thread::yield();
  cancel.Cancel();
  waiter.join();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(adm.queue_depth(), 0u);

  // The abandoned wait consumed nothing: the slot frees cleanly.
  held->Release();
  auto next = adm.Acquire(nullptr);
  EXPECT_TRUE(next.ok());
  EXPECT_EQ(adm.running(), 1u);
}

// ---------------------------------------------------------------------------
// Session lifecycle: pin, publish, isolation, repin, reclaim
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PinnedSessionIsIsolatedFromConcurrentLoads) {
  SessionManager mgr(&db_);
  auto s1 = mgr.Begin();
  ASSERT_TRUE(s1.ok());
  uint64_t epoch = (*s1)->epoch();

  ExecStats stats;
  auto before = (*s1)->Transform(kView, kStylesheet, {}, &stats);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->size(), 1u);  // one loaded document = one base row
  EXPECT_EQ(stats.snapshot_epoch, epoch);

  // A load commits and publishes underneath the pinned session.
  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(100, 3)).ok());
  EXPECT_GT(mgr.head_epoch(), epoch);

  // Byte-identical replay: the pinned session cannot see the load.
  auto after = (*s1)->Transform(kView, kStylesheet);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);

  // A fresh session pins the new head and sees both documents.
  auto s2 = mgr.Begin();
  ASSERT_TRUE(s2.ok());
  EXPECT_GT((*s2)->epoch(), epoch);
  auto fresh = (*s2)->Transform(kView, kStylesheet);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size(), 2u);
}

TEST_F(SessionTest, RepinAdvancesToTheHeadEpoch) {
  SessionManager mgr(&db_);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());
  uint64_t old_epoch = (*s)->epoch();

  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(50, 2)).ok());
  EXPECT_EQ((*s)->epoch(), old_epoch);

  (*s)->Repin();
  EXPECT_GT((*s)->epoch(), old_epoch);
  auto rows = (*s)->Transform(kView, kStylesheet);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SessionTest, ReclaimDropsRetiredEpochsWhenSessionsDrain) {
  SessionManager mgr(&db_);
  auto s1 = mgr.Begin();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(10, 1)).ok());
  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(20, 1)).ok());

  // s1 pins the oldest epoch; the intermediate publish retired with no pins.
  EXPECT_EQ(mgr.live_epochs(), 2u);
  s1->reset();
  EXPECT_EQ(mgr.live_epochs(), 1u);
  EXPECT_EQ(mgr.sessions_active(), 0u);
}

TEST_F(SessionTest, SessionCapReturnsResourceExhausted) {
  SessionManager::Options opts;
  opts.max_sessions = 2;
  SessionManager mgr(&db_, opts);
  auto s1 = mgr.Begin();
  auto s2 = mgr.Begin();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());

  auto s3 = mgr.Begin();
  ASSERT_FALSE(s3.ok());
  EXPECT_EQ(s3.status().code(), StatusCode::kResourceExhausted);

  // Draining one frees the slot.
  s1->reset();
  auto s4 = mgr.Begin();
  EXPECT_TRUE(s4.ok());
}

TEST_F(SessionTest, UnknownStatementHandleIsNotFound) {
  SessionManager mgr(&db_);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());
  auto rows = (*s)->Execute(StatementHandle{42});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Quotas: the governor doubled as admission control
// ---------------------------------------------------------------------------

TEST_F(SessionTest, SessionMemoryQuotaTripsExecution) {
  SessionManager::Options opts;
  opts.session_mem_budget = 1;  // one byte: any materializing plan trips
  SessionManager mgr(&db_, opts);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());

  // Force the functional path so the execution materializes (and charges)
  // the DOM.
  ExecOptions eo;
  eo.enable_rewrite = false;
  ExecStats stats;
  auto rows = (*s)->Transform(kView, kStylesheet, eo, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);

  // An explicit caller-side budget wins over the session quota.
  ExecOptions generous = eo;
  generous.mem_budget_bytes = 64 * 1024 * 1024;
  auto ok_rows = (*s)->Transform(kView, kStylesheet, generous);
  EXPECT_TRUE(ok_rows.ok()) << ok_rows.status().ToString();
}

TEST_F(SessionTest, FairShareTickBudgetTripsExecution) {
  // Load enough rows that the per-row engines tick well past the quota.
  ASSERT_TRUE(db_.LoadDocument(kView, ItemsDocument(1000, 200)).ok());
  SessionManager::Options opts;
  opts.fair_share_ticks = 8;  // pool of 8 ticks across all live sessions
  SessionManager mgr(&db_, opts);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());

  auto rows = (*s)->Transform(kView, kStylesheet);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);

  // A caller-specified tick budget bypasses the fair-share division.
  ExecOptions generous;
  generous.tick_budget = 100'000'000;
  auto ok_rows = (*s)->Transform(kView, kStylesheet, generous);
  EXPECT_TRUE(ok_rows.ok()) << ok_rows.status().ToString();
}

// ---------------------------------------------------------------------------
// Epoch-keyed plan cache
// ---------------------------------------------------------------------------

TEST_F(SessionTest, EpochKeyedPlanSurvivesAConcurrentLoad) {
  SessionManager mgr(&db_);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());

  ExecStats cold;
  auto h1 = (*s)->PrepareTransform(kView, kStylesheet, {}, &cold);
  ASSERT_TRUE(h1.ok());
  EXPECT_FALSE(cold.cache_hit);

  // The load invalidates live (epoch-0) plans over the view's tables, but
  // the session's epoch-keyed entry reads immutable versioned data and
  // survives.
  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(70, 1)).ok());

  ExecStats warm;
  auto h2 = (*s)->PrepareTransform(kView, kStylesheet, {}, &warm);
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(warm.cache_hit);

  // Both handles execute against the pinned epoch.
  auto r1 = (*s)->Execute(*h1);
  auto r2 = (*s)->Execute(*h2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(r1->size(), 1u);
}

TEST_F(SessionTest, DrainedEpochsArePurgedFromThePlanCache) {
  SessionManager mgr(&db_);
  auto s = mgr.Begin();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->PrepareTransform(kView, kStylesheet).ok());

  ASSERT_TRUE(mgr.LoadDocument(kView, ItemsDocument(80, 1)).ok());
  uint64_t invalidations_before = db_.plan_cache()->stats().invalidations;

  // Draining the only session holding the old epoch purges its plans.
  s->reset();
  EXPECT_GT(db_.plan_cache()->stats().invalidations, invalidations_before);
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

TEST_F(SessionTest, ExecStatsCarriesSessionGauges) {
  SessionManager mgr(&db_);
  auto s1 = mgr.Begin();
  auto s2 = mgr.Begin();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());

  ExecStats stats;
  auto rows = (*s1)->Transform(kView, kStylesheet, {}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.snapshot_epoch, (*s1)->epoch());
  EXPECT_EQ(stats.sessions_active, 2u);
  EXPECT_EQ(stats.admission_queue_depth, 0u);

  // Outside the session layer the gauges stay zero.
  ExecStats plain;
  ASSERT_TRUE(db_.TransformView(kView, kStylesheet, {}, &plain).ok());
  EXPECT_EQ(plain.snapshot_epoch, 0u);
  EXPECT_EQ(plain.sessions_active, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent smoke: sessions execute while loads publish (TSan target)
// ---------------------------------------------------------------------------

TEST_F(SessionTest, ConcurrentSessionsAndLoadsStayIsolated) {
  SessionManager mgr(&db_);
  constexpr int kSessions = 4;
  constexpr int kRunsPerSession = 8;

  std::vector<SessionPtr> sessions;
  for (int i = 0; i < kSessions; ++i) {
    auto s = mgr.Begin();
    ASSERT_TRUE(s.ok());
    sessions.push_back(std::move(*s));
  }
  auto reference = db_.TransformView(kView, kStylesheet);
  ASSERT_TRUE(reference.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    Session* session = sessions[static_cast<size_t>(i)].get();
    threads.emplace_back([&, session] {
      for (int r = 0; r < kRunsPerSession; ++r) {
        auto rows = session->Transform(kView, kStylesheet);
        if (!rows.ok() || *rows != *reference) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 6; ++i) {
      auto load = mgr.LoadDocument(kView, ItemsDocument(200 + 10 * i, 2));
      if (!load.ok()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Fresh pin sees all six background loads.
  auto fresh = mgr.Begin();
  ASSERT_TRUE(fresh.ok());
  auto rows = (*fresh)->Transform(kView, kStylesheet);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
}

}  // namespace
}  // namespace xdb::server
