// Fault-point injection: named sites on cold mutation paths (bulk load,
// index build, plan-cache install, publish compilation) where tests can
// force a clean failure and prove the engine recovers.
//
//   XDB_FAULT_POINT("shred.append_rows");
//
// expands to a registration of the site name (once) plus a check that is a
// single relaxed atomic load when nothing is armed — near-zero cost, so the
// macro can stay in release builds. Sites are armed either programmatically
// (fault::Arm in tests) or via the environment:
//
//   XDB_FAULT="shred.append_rows=fail:2"   # fail the 2nd hit of that site
//   XDB_FAULT="a=fail:1,b=fail:3"          # several sites, mixed triggers
//   XDB_FAULT="wal.fsync=crash:2"          # _exit(42) on the 2nd hit
//
// `fail:N` trips the N-th hit (N >= 1, default 1) and every hit after it
// until the site is disarmed. An injected fault surfaces as
// Status::ResourceExhausted("fault injected: <site>") — deliberately a
// non-kInternal code, since tests assert that injected failures are
// indistinguishable from ordinary resource errors.
//
// `crash:N` instead terminates the process with _exit(kCrashExitCode) on
// the N-th hit — no destructors, no atexit, no flushing — simulating a
// power failure at exactly that point. The crash-recovery sweep forks a
// child per (site, hit-count), lets it die here, and recovers in the
// parent.
#ifndef XDB_COMMON_FAULTPOINTS_H_
#define XDB_COMMON_FAULTPOINTS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace xdb::fault {

/// What an armed site does when its trigger count is reached.
enum class Action {
  kFail,   // return Status::ResourceExhausted from the fault point
  kCrash,  // _exit(kCrashExitCode): simulated power failure
};

/// Exit code of a `crash` action; sweeps use it to distinguish an injected
/// crash from an ordinary child failure.
inline constexpr int kCrashExitCode = 42;

/// True when at least one site is armed (relaxed load; the fast-path gate).
bool Enabled();

/// Registers `site` in the process-wide registry (idempotent). Called once
/// per site through the macro's static-local.
void RegisterSite(const char* site);

/// Slow path: returns the injected failure if `site` is armed and this hit
/// reaches its trigger count, OK otherwise.
Status Inject(const char* site);

/// Arms `site`: the `trigger`-th hit (and all later ones) fail — or, with
/// Action::kCrash, the `trigger`-th hit terminates the process. Sites not
/// yet registered may be armed ahead of their first execution.
void Arm(const std::string& site, int trigger = 1,
         Action action = Action::kFail);

/// Disarms everything and resets hit counters.
void DisarmAll();

/// Every site name that has executed at least once, sorted. Tests sweep
/// this after priming the paths under test with one clean run.
std::vector<std::string> RegisteredSites();

/// Parses an XDB_FAULT-style spec and arms every listed site. The grammar
/// is a comma-separated list of `site=action` entries, where action is
/// `fail[:N]` or `crash[:N]`; whitespace around entries, sites and actions
/// is ignored. All-or-nothing: returns false on malformed input with no
/// site armed.
bool ArmFromSpec(const std::string& spec);

}  // namespace xdb::fault

// Evaluates to a `return <error>;` from the enclosing function (which must
// return Status or Result<T>) when the named site is armed and triggered.
#define XDB_FAULT_POINT(site)                                   \
  do {                                                          \
    static const bool _xdb_fault_registered = [] {              \
      ::xdb::fault::RegisterSite(site);                         \
      return true;                                              \
    }();                                                        \
    (void)_xdb_fault_registered;                                \
    if (::xdb::fault::Enabled()) {                              \
      ::xdb::Status _xdb_fault_st = ::xdb::fault::Inject(site); \
      if (!_xdb_fault_st.ok()) return _xdb_fault_st;            \
    }                                                           \
  } while (false)

#endif  // XDB_COMMON_FAULTPOINTS_H_
