#include "rewrite/xslt_rewriter.h"

#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "common/strings.h"
#include "schema/sample_doc.h"
#include "xpath/parser.h"
#include "xquery/parser.h"

namespace xdb::rewrite {

using schema::StructuralInfo;
using xml::Node;
using xml::NodeType;
using xquery::ElementCtorQExpr;
using xquery::FlworQExpr;
using xquery::IfQExpr;
using xquery::InstanceOfQExpr;
using xquery::MakeStringLiteral;
using xquery::MakeVarRef;
using xquery::MakeXPath;
using xquery::QExpr;
using xquery::QExprKind;
using xquery::QExprPtr;
using xquery::Query;
using xquery::SequenceQExpr;
using xquery::TextLiteralQExpr;
using xslt::CompiledParam;
using xslt::CompiledStylesheet;
using xslt::Instruction;
using xslt::Stylesheet;
using xslt::TemplateRule;

namespace {

// ---------------------------------------------------------------------------
// XPath rebasing: rewrites a stylesheet-relative XPath so that the XSLT
// context node becomes an explicit XQuery variable reference, and current()
// becomes the enclosing template's context variable.
// ---------------------------------------------------------------------------

class Rebaser {
 public:
  Rebaser(std::string ctx_var, std::string current_var)
      : ctx_var_(std::move(ctx_var)), current_var_(std::move(current_var)) {}

  Result<xpath::ExprPtr> Rebase(const xpath::Expr& e) const {
    using namespace xpath;
    switch (e.kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kNumber:
      case ExprKind::kVariableRef:
        return e.Clone();
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        XDB_ASSIGN_OR_RETURN(ExprPtr inner, Rebase(*u.operand));
        return ExprPtr(std::make_unique<UnaryExpr>(std::move(inner)));
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        XDB_ASSIGN_OR_RETURN(ExprPtr l, Rebase(*b.lhs));
        XDB_ASSIGN_OR_RETURN(ExprPtr r, Rebase(*b.rhs));
        return ExprPtr(std::make_unique<BinaryExpr>(b.op, std::move(l), std::move(r)));
      }
      case ExprKind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        if (f.name == "current" && f.args.empty()) {
          return ExprPtr(std::make_unique<VariableRefExpr>(current_var_));
        }
        if (f.name == "position" || f.name == "last") {
          return Status::RewriteError(
              "XSLT rewrite: position()/last() depend on the dynamic context "
              "and are outside the translatable subset");
        }
        std::vector<ExprPtr> args;
        for (const auto& a : f.args) {
          XDB_ASSIGN_OR_RETURN(ExprPtr ra, Rebase(*a));
          args.push_back(std::move(ra));
        }
        // Context-dependent zero-argument core functions get an explicit arg.
        if (args.empty() &&
            (f.name == "string" || f.name == "normalize-space" ||
             f.name == "string-length" || f.name == "number" || f.name == "name" ||
             f.name == "local-name" || f.name == "namespace-uri")) {
          args.push_back(std::make_unique<VariableRefExpr>(ctx_var_));
        }
        return ExprPtr(
            std::make_unique<FunctionCallExpr>(f.name, std::move(args)));
      }
      case ExprKind::kPath: {
        const auto& p = static_cast<const PathExpr&>(e);
        auto out = std::make_unique<PathExpr>();
        out->absolute = p.absolute;
        if (p.start != nullptr) {
          XDB_ASSIGN_OR_RETURN(out->start, Rebase(*p.start));
        } else if (!p.absolute) {
          out->start = std::make_unique<VariableRefExpr>(ctx_var_);
        }
        for (const auto& sp : p.start_predicates) {
          XDB_ASSIGN_OR_RETURN(ExprPtr rp, Rebase(*sp));
          out->start_predicates.push_back(std::move(rp));
        }
        for (const Step& s : p.steps) {
          // Step predicates stay relative to their own step context.
          out->steps.push_back(s.CloneStep());
        }
        // "$v/." simplifies to "$v".
        if (out->start != nullptr && out->steps.size() == 1 &&
            out->steps[0].axis == Axis::kSelf &&
            out->steps[0].test.kind == NodeTest::Kind::kAnyNode &&
            out->steps[0].predicates.empty() && out->start_predicates.empty()) {
          return std::move(out->start);
        }
        return ExprPtr(std::move(out));
      }
    }
    return Status::Internal("rebase: unknown expr kind");
  }

 private:
  std::string ctx_var_;
  std::string current_var_;
};

// fn:string(<rebased>)
Result<xpath::ExprPtr> StringOf(const xpath::Expr& select, const Rebaser& rb) {
  XDB_ASSIGN_OR_RETURN(xpath::ExprPtr inner, rb.Rebase(select));
  std::vector<xpath::ExprPtr> args;
  args.push_back(std::move(inner));
  return xpath::ExprPtr(
      std::make_unique<xpath::FunctionCallExpr>("fn:string", std::move(args)));
}

// ---------------------------------------------------------------------------
// Trace recording (the paper's trace-table + execution graph)
// ---------------------------------------------------------------------------

struct DispatchEntry {
  std::vector<Stylesheet::StructuralMatch> candidates;
  bool builtin_fallback = true;
};

class GraphBuilder : public xslt::TraceListener {
 public:
  using Key = std::tuple<int, const Node*, std::string>;

  void OnDispatch(int site_id, Node* node, const std::string& mode,
                  const std::vector<Stylesheet::StructuralMatch>& candidates,
                  bool builtin_fallback) override {
    DispatchEntry& entry = dispatches_[Key{site_id, node, mode}];
    entry.candidates = candidates;
    entry.builtin_fallback = builtin_fallback;
    // Union per (site, mode) for non-inline generation.
    auto& site_union = site_unions_[{site_id, mode}];
    for (const auto& c : candidates) {
      bool present = false;
      for (const auto& u : site_union.candidates) {
        if (u.index == c.index) present = true;
      }
      if (!present) site_union.candidates.push_back(c);
    }
    site_union.builtin_fallback =
        site_union.builtin_fallback || builtin_fallback || candidates.empty();
  }
  void OnActivationBegin(int template_index, Node*) override {
    if (template_index >= 0) activated_.insert(template_index);
  }
  void OnActivationEnd(int) override {}
  void OnRecursion(int, Node*) override { recursion_ = true; }

  const DispatchEntry* Find(int site, const Node* node,
                            const std::string& mode) const {
    auto it = dispatches_.find(Key{site, node, mode});
    return it != dispatches_.end() ? &it->second : nullptr;
  }
  const DispatchEntry* FindUnion(int site, const std::string& mode) const {
    auto it = site_unions_.find({site, mode});
    return it != site_unions_.end() ? &it->second : nullptr;
  }
  const std::set<int>& activated() const { return activated_; }
  bool recursion() const { return recursion_; }

 private:
  std::map<Key, DispatchEntry> dispatches_;
  std::map<std::pair<int, std::string>, DispatchEntry> site_unions_;
  std::set<int> activated_;
  bool recursion_ = false;
};

// ---------------------------------------------------------------------------
// Pattern test synthesis (straightforward / non-inline dispatch, and the
// residual value-predicate tests of the inline mode)
// ---------------------------------------------------------------------------

// Builds the test expression for "does $var match this pattern alternative".
// `structural_known` marks steps whose structural part is proven by context
// (inline mode / unique parents, §3.5): for those only value predicates are
// emitted. Returns null QExpr when no test at all is required (always true).
struct PatternTestResult {
  QExprPtr test;  // null = unconditionally true
  int parent_tests_removed = 0;
  int residual_predicates = 0;
};

Result<PatternTestResult> BuildPatternTest(const xpath::PathExpr& path,
                                           const std::string& var,
                                           const StructuralInfo* structure,
                                           bool assume_structure_matches,
                                           bool enable_parent_removal) {
  using namespace xpath;
  PatternTestResult out;
  if (path.steps.empty()) {
    // match="/": test the document node.
    if (assume_structure_matches) return out;
    out.test = std::make_unique<InstanceOfQExpr>(
        MakeVarRef(var), "", InstanceOfQExpr::TypeKind::kDocument);
    return out;
  }
  int last = static_cast<int>(path.steps.size()) - 1;
  const Step& last_step = path.steps[last];

  // Attribute patterns: only the simple single-step form is translatable in
  // dispatch position.
  if (last_step.axis == Axis::kAttribute) {
    if (path.steps.size() > 1 || !last_step.predicates.empty()) {
      if (!assume_structure_matches) {
        return Status::RewriteError(
            "XSLT rewrite: multi-step attribute pattern in dispatch position");
      }
      return out;  // structure already proves it
    }
    if (assume_structure_matches) return out;
    std::string name =
        last_step.test.kind == NodeTest::Kind::kName ? last_step.test.local : "";
    out.test = std::make_unique<InstanceOfQExpr>(
        MakeVarRef(var), name, InstanceOfQExpr::TypeKind::kAttribute);
    return out;
  }

  // Element / text / comment patterns: build
  //   fn:exists($var/self::TEST[preds][parent::P[preds]...])
  // skipping structural parts that are proven.
  std::string xpath_text = "$" + var + "/self::" + last_step.test.ToString();
  bool any_component = !assume_structure_matches;

  auto append_predicates = [&](const Step& step, std::string* into) {
    for (const auto& pred : step.predicates) {
      *into += "[" + pred->ToString() + "]";
      ++out.residual_predicates;
      any_component = true;
    }
  };
  append_predicates(last_step, &xpath_text);

  // Ancestor chain.
  std::string chain;  // nested predicate text appended to the self step
  std::string element_name =
      last_step.test.kind == NodeTest::Kind::kName ? last_step.test.local : "";
  int i = last - 1;
  int open_brackets = 0;
  bool after_descendant_marker = false;
  while (i >= 0) {
    const Step& step = path.steps[i];
    if (step.axis == Axis::kDescendantOrSelf &&
        step.test.kind == NodeTest::Kind::kAnyNode && step.predicates.empty()) {
      after_descendant_marker = true;
      --i;
      continue;
    }
    bool structural_only = step.predicates.empty();
    bool removable = false;
    if (assume_structure_matches) {
      removable = structural_only;
    } else if (enable_parent_removal && structure != nullptr &&
               structural_only && !after_descendant_marker &&
               step.test.kind == NodeTest::Kind::kName && !element_name.empty()) {
      // §3.5: a parent::P test is redundant when P is the only possible
      // parent of the current element in the structure.
      auto parents = structure->ParentsOf(element_name);
      removable = parents.size() == 1 && *parents.begin() == step.test.local;
    }
    if (removable) {
      ++out.parent_tests_removed;
      element_name =
          step.test.kind == NodeTest::Kind::kName ? step.test.local : "";
      --i;
      continue;
    }
    const char* axis = after_descendant_marker ? "ancestor::" : "parent::";
    chain += std::string("[") + axis + step.test.ToString();
    ++open_brackets;
    append_predicates(step, &chain);
    any_component = true;
    after_descendant_marker = false;
    element_name = step.test.kind == NodeTest::Kind::kName ? step.test.local : "";
    --i;
  }
  if (path.absolute && !assume_structure_matches) {
    // Anchor the chain at the document: the topmost tested ancestor (or the
    // node itself, for single-step absolute patterns) must have no element
    // parent.
    chain += "[fn:empty(parent::*)]";
    any_component = true;
  }
  for (int b = 0; b < open_brackets; ++b) chain += "]";
  xpath_text += chain;
  if (!any_component) return out;  // fully proven

  XDB_ASSIGN_OR_RETURN(xpath::ExprPtr parsed,
                       xpath::ParseXPath("fn:exists(" + xpath_text + ")"));
  out.test = MakeXPath(std::move(parsed));
  return out;
}

// ---------------------------------------------------------------------------
// The rewriter engine
// ---------------------------------------------------------------------------

constexpr int kBuiltinSite = -1;
constexpr int kMaxInlineDepth = 200;

/// Translation context for one body.
struct TransCtx {
  std::string ctx_var;        ///< XQuery variable holding the context node
  const Node* sample = nullptr;  ///< sample node (inline mode only)
  std::string mode;           ///< current XSLT mode
  int depth = 0;
};

enum class GenMode { kStraightforward, kNonInline, kInline };

class RewriterEngine {
 public:
  RewriterEngine(const CompiledStylesheet& cs, const StructuralInfo* structure,
                 const XsltRewriteOptions& options, RewriteReport* report)
      : cs_(cs),
        ss_(cs.source()),
        structure_(structure),
        options_(options),
        report_(report) {}

  Result<Query> Run() {
    report_->templates_total = static_cast<int>(ss_.templates().size());

    if (structure_ == nullptr || options_.force_straightforward) {
      gen_mode_ = GenMode::kStraightforward;
      report_->mode = RewriteReport::Mode::kStraightforward;
      return GenerateStraightforward();
    }

    // Partial evaluation: sample document + traced VM run.
    sample_doc_ = schema::GenerateSampleDocument(*structure_);
    xslt::Vm vm(cs_);
    XDB_RETURN_NOT_OK(vm.TraceRun(sample_doc_->root(), &graph_));
    report_->recursion_detected = graph_.recursion();

    // §3.6: built-in-template-only compaction.
    if (options_.enable_builtin_compaction && graph_.activated().empty()) {
      report_->mode = RewriteReport::Mode::kInline;
      report_->builtin_only = true;
      report_->dead_templates_removed = report_->templates_total;
      return GenerateBuiltinOnly();
    }

    if (!graph_.recursion() && options_.enable_inline) {
      gen_mode_ = GenMode::kInline;
      report_->mode = RewriteReport::Mode::kInline;
      auto q = GenerateInline();
      if (q.ok()) return q;
      // Inline translation hit an untranslatable construct; fall back.
      if (q.status().code() != StatusCode::kRewriteError) return q;
    }
    gen_mode_ = GenMode::kNonInline;
    report_->mode = RewriteReport::Mode::kNonInline;
    return GenerateNonInline();
  }

 private:
  std::string FreshVar() {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "var%03d", var_counter_++);
    return buf;
  }

  // Wraps an atomic-producing expression in text { ... } so adjacent values
  // concatenate without XQuery's sequence-space rule (XSLT text semantics).
  static QExprPtr WrapText(QExprPtr e) {
    return std::make_unique<xquery::TextCtorQExpr>(std::move(e));
  }

  static QExprPtr Combine(std::vector<QExprPtr> items) {
    if (items.empty()) return std::make_unique<SequenceQExpr>();
    if (items.size() == 1) return std::move(items[0]);
    return std::make_unique<SequenceQExpr>(std::move(items));
  }

  // Merges runs of adjacent text/value-of items into fn:concat(...) so that
  // XSLT's no-space text concatenation is preserved (Table 8's
  // fn:concat("Department name: ", fn:string(...))).
  static std::vector<QExprPtr> MergeAtomicRuns(std::vector<QExprPtr> items,
                                               std::vector<bool> atomic) {
    std::vector<QExprPtr> out;
    size_t i = 0;
    while (i < items.size()) {
      if (!atomic[i]) {
        out.push_back(std::move(items[i]));
        ++i;
        continue;
      }
      size_t j = i;
      while (j < items.size() && atomic[j]) ++j;
      if (j - i == 1) {
        // A lone atomic: literal text stays literal (constructor-friendly);
        // computed values become text nodes.
        if (items[i]->kind() == QExprKind::kTextLiteral) {
          out.push_back(std::move(items[i]));
        } else {
          out.push_back(WrapText(std::move(items[i])));
        }
      } else {
        std::vector<xpath::ExprPtr> args;
        for (size_t k = i; k < j; ++k) {
          if (items[k]->kind() == QExprKind::kTextLiteral) {
            args.push_back(std::make_unique<xpath::LiteralExpr>(
                static_cast<TextLiteralQExpr*>(items[k].get())->text));
          } else {
            args.push_back(
                std::move(static_cast<xquery::XPathQExpr*>(items[k].get())->expr));
          }
        }
        out.push_back(WrapText(MakeXPath(std::make_unique<xpath::FunctionCallExpr>(
            "fn:concat", std::move(args)))));
      }
      i = j;
    }
    return out;
  }

  // ---- body translation ---------------------------------------------------

  Result<std::vector<QExprPtr>> TranslateBody(const std::vector<Instruction>& body,
                                              TransCtx& tc, size_t from = 0) {
    std::vector<QExprPtr> items;
    std::vector<bool> atomic;
    for (size_t i = from; i < body.size(); ++i) {
      const Instruction& instr = body[i];
      if (instr.op == Instruction::Op::kVariable) {
        // let $name := value return (rest of the body)
        XDB_ASSIGN_OR_RETURN(QExprPtr value, TranslateVariableValue(instr, tc));
        XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> rest,
                             TranslateBody(body, tc, i + 1));
        auto flwor = std::make_unique<FlworQExpr>();
        flwor->clauses.push_back(FlworQExpr::Clause{
            FlworQExpr::Clause::Kind::kLet, instr.text, std::move(value)});
        flwor->return_expr = Combine(std::move(rest));
        items.push_back(std::move(flwor));
        atomic.push_back(false);
        return MergeAtomicRuns(std::move(items), std::move(atomic));
      }
      XDB_ASSIGN_OR_RETURN(QExprPtr item, TranslateInstruction(instr, tc));
      if (item == nullptr) continue;
      bool is_atomic = instr.op == Instruction::Op::kText ||
                       instr.op == Instruction::Op::kValueOf ||
                       instr.op == Instruction::Op::kNumber;
      items.push_back(std::move(item));
      atomic.push_back(is_atomic);
    }
    return MergeAtomicRuns(std::move(items), std::move(atomic));
  }

  Result<QExprPtr> TranslateVariableValue(const Instruction& instr, TransCtx& tc) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    if (instr.expr != nullptr) {
      XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, rb.Rebase(*instr.expr));
      return MakeXPath(std::move(e));
    }
    XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> content,
                         TranslateBody(instr.body, tc));
    return Combine(std::move(content));
  }

  Result<QExprPtr> TranslateParamValue(const CompiledParam& p, TransCtx& tc) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    if (p.select != nullptr) {
      XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, rb.Rebase(*p.select));
      return MakeXPath(std::move(e));
    }
    if (!p.body.empty()) {
      XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> content,
                           TranslateBody(p.body, tc));
      return Combine(std::move(content));
    }
    return MakeStringLiteral("");
  }

  Result<QExprPtr> TranslateInstruction(const Instruction& instr, TransCtx& tc) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    switch (instr.op) {
      case Instruction::Op::kText:
        return QExprPtr(std::make_unique<TextLiteralQExpr>(instr.text));
      case Instruction::Op::kValueOf: {
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, StringOf(*instr.expr, rb));
        return MakeXPath(std::move(e));
      }
      case Instruction::Op::kLiteralElement: {
        auto elem = std::make_unique<ElementCtorQExpr>(instr.text);
        for (const auto& attr : instr.attrs) {
          ElementCtorQExpr::Attr qattr;
          qattr.name = attr.qname;
          for (const auto& part : attr.value.parts()) {
            if (part.expr == nullptr) {
              qattr.value_parts.push_back(
                  std::make_unique<TextLiteralQExpr>(part.literal));
            } else {
              // XPath 1.0 string conversion: an AVT over a node-set takes the
              // first node, not the XQuery space-joined sequence.
              XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, StringOf(*part.expr, rb));
              qattr.value_parts.push_back(MakeXPath(std::move(e)));
            }
          }
          elem->attributes.push_back(std::move(qattr));
        }
        XDB_ASSIGN_OR_RETURN(elem->children, TranslateBody(instr.body, tc));
        return QExprPtr(std::move(elem));
      }
      case Instruction::Op::kForEach:
        return TranslateForEach(instr, tc);
      case Instruction::Op::kIf: {
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr test, rb.Rebase(*instr.expr));
        XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> body,
                             TranslateBody(instr.body, tc));
        return QExprPtr(std::make_unique<IfQExpr>(
            MakeXPath(std::move(test)), Combine(std::move(body)), nullptr));
      }
      case Instruction::Op::kChoose:
        return TranslateChoose(instr, tc);
      case Instruction::Op::kCopyOf: {
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, rb.Rebase(*instr.expr));
        return MakeXPath(std::move(e));
      }
      case Instruction::Op::kCopy: {
        if (gen_mode_ == GenMode::kInline && tc.sample != nullptr) {
          if (tc.sample->is_element()) {
            auto elem =
                std::make_unique<ElementCtorQExpr>(tc.sample->qualified_name());
            XDB_ASSIGN_OR_RETURN(elem->children, TranslateBody(instr.body, tc));
            return QExprPtr(std::move(elem));
          }
          if (tc.sample->is_text()) {
            XDB_ASSIGN_OR_RETURN(
                xpath::ExprPtr e,
                xpath::ParseXPath("fn:string($" + tc.ctx_var + ")"));
            return WrapText(MakeXPath(std::move(e)));
          }
        }
        return Status::RewriteError(
            "XSLT rewrite: xsl:copy requires known context structure");
      }
      case Instruction::Op::kAttribute: {
        if (!instr.name_avt.IsConstant()) {
          return Status::RewriteError(
              "XSLT rewrite: computed attribute names are not translatable");
        }
        XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> content,
                             TranslateBody(instr.body, tc));
        return QExprPtr(std::make_unique<xquery::AttributeCtorQExpr>(
            instr.name_avt.ConstantValue(), Combine(std::move(content))));
      }
      case Instruction::Op::kElementDyn: {
        if (!instr.name_avt.IsConstant()) {
          return Status::RewriteError(
              "XSLT rewrite: computed element names are not translatable");
        }
        auto elem =
            std::make_unique<ElementCtorQExpr>(instr.name_avt.ConstantValue());
        XDB_ASSIGN_OR_RETURN(elem->children, TranslateBody(instr.body, tc));
        return QExprPtr(std::move(elem));
      }
      case Instruction::Op::kNumber: {
        if (instr.expr != nullptr) {
          XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e, StringOf(*instr.expr, rb));
          return MakeXPath(std::move(e));
        }
        if (gen_mode_ == GenMode::kInline && tc.sample != nullptr &&
            tc.sample->is_element()) {
          XDB_ASSIGN_OR_RETURN(
              xpath::ExprPtr e,
              xpath::ParseXPath("fn:string(count($" + tc.ctx_var +
                                "/preceding-sibling::" +
                                tc.sample->local_name() + ") + 1)"));
          return MakeXPath(std::move(e));
        }
        return Status::RewriteError(
            "XSLT rewrite: positional xsl:number needs known structure");
      }
      case Instruction::Op::kApplyTemplates:
        return TranslateApplyTemplates(instr, tc);
      case Instruction::Op::kCallTemplate:
        return TranslateCallTemplate(instr, tc);
      case Instruction::Op::kComment:
      case Instruction::Op::kProcessingInstr:
        return Status::RewriteError(
            "XSLT rewrite: comment/PI constructors are outside the XQuery "
            "subset");
      case Instruction::Op::kNoop:
        return QExprPtr(nullptr);
      case Instruction::Op::kVariable:
      case Instruction::Op::kWhen:
      case Instruction::Op::kOtherwise:
        return Status::Internal("unexpected instruction in body translation");
    }
    return Status::Internal("unknown instruction op");
  }

  Result<QExprPtr> TranslateChoose(const Instruction& instr, TransCtx& tc) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    QExprPtr chain;  // built back-to-front
    for (auto it = instr.body.rbegin(); it != instr.body.rend(); ++it) {
      XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> body, TranslateBody(it->body, tc));
      if (it->op == Instruction::Op::kOtherwise) {
        chain = Combine(std::move(body));
      } else {
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr test, rb.Rebase(*it->expr));
        chain = std::make_unique<IfQExpr>(MakeXPath(std::move(test)),
                                          Combine(std::move(body)),
                                          std::move(chain));
      }
    }
    if (chain == nullptr) chain = std::make_unique<SequenceQExpr>();
    return chain;
  }

  Result<QExprPtr> TranslateForEach(const Instruction& instr, TransCtx& tc) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    std::string loop_var = FreshVar();
    XDB_ASSIGN_OR_RETURN(xpath::ExprPtr select, rb.Rebase(*instr.expr));
    auto flwor = std::make_unique<FlworQExpr>();
    flwor->clauses.push_back(FlworQExpr::Clause{FlworQExpr::Clause::Kind::kFor,
                                                loop_var,
                                                MakeXPath(std::move(select))});
    XDB_RETURN_NOT_OK(AddSortKeys(instr, loop_var, flwor.get()));

    TransCtx sub = tc;
    sub.ctx_var = loop_var;
    sub.depth = tc.depth + 1;
    if (gen_mode_ == GenMode::kInline && tc.sample != nullptr) {
      // Representative sample node for the loop body.
      XDB_ASSIGN_OR_RETURN(xpath::NodeSet targets,
                           StructuralTargets(instr, tc.sample));
      if (targets.empty()) {
        // Structurally unreachable loop: specialize to the empty sequence.
        return QExprPtr(std::make_unique<SequenceQExpr>());
      }
      sub.sample = targets.front();
    } else {
      sub.sample = nullptr;
    }
    XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> body,
                         TranslateBody(instr.body, sub));
    flwor->return_expr = Combine(std::move(body));
    return QExprPtr(std::move(flwor));
  }

  Status AddSortKeys(const Instruction& instr, const std::string& loop_var,
                     FlworQExpr* flwor) {
    Rebaser rb(loop_var, loop_var);
    for (const auto& key : instr.sorts) {
      XDB_ASSIGN_OR_RETURN(xpath::ExprPtr k, rb.Rebase(*key.select));
      if (key.numeric) {
        std::vector<xpath::ExprPtr> args;
        args.push_back(std::move(k));
        k = std::make_unique<xpath::FunctionCallExpr>("number", std::move(args));
      }
      flwor->order_by.push_back(
          FlworQExpr::OrderSpec{MakeXPath(std::move(k)), key.descending});
    }
    return Status::OK();
  }

  // The structurally selected sample nodes of an apply-templates/for-each.
  Result<xpath::NodeSet> StructuralTargets(const Instruction& instr,
                                           const Node* sample) {
    const xpath::Expr* select = instr.structural_expr.get();
    xpath::EvalContext ctx;
    ctx.node = const_cast<Node*>(sample);
    if (select == nullptr) {
      xpath::NodeSet children;
      for (Node* c : sample->children()) children.push_back(c);
      return children;
    }
    return sample_evaluator_.EvaluateNodeSet(*select, ctx);
  }

  // ---- apply-templates ----------------------------------------------------

  Result<QExprPtr> TranslateApplyTemplates(const Instruction& instr, TransCtx& tc) {
    std::string mode = instr.has_mode ? instr.mode : "";
    switch (gen_mode_) {
      case GenMode::kStraightforward:
      case GenMode::kNonInline:
        return DispatchViaFunctions(instr, tc, mode);
      case GenMode::kInline:
        return InlineApplyTemplates(instr, tc, mode);
    }
    return Status::Internal("bad mode");
  }

  Result<QExprPtr> DispatchViaFunctions(const Instruction& instr, TransCtx& tc,
                                        const std::string& mode) {
    if (!instr.params.empty()) {
      return Status::RewriteError(
          "XSLT rewrite: with-param through apply-templates is only supported "
          "in inline mode");
    }
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    xpath::ExprPtr select;
    if (instr.expr != nullptr) {
      XDB_ASSIGN_OR_RETURN(select, rb.Rebase(*instr.expr));
    } else {
      XDB_ASSIGN_OR_RETURN(select,
                           xpath::ParseXPath("$" + tc.ctx_var + "/node()"));
    }
    std::string loop_var = FreshVar();
    auto flwor = std::make_unique<FlworQExpr>();
    flwor->clauses.push_back(FlworQExpr::Clause{FlworQExpr::Clause::Kind::kFor,
                                                loop_var,
                                                MakeXPath(std::move(select))});
    XDB_RETURN_NOT_OK(AddSortKeys(instr, loop_var, flwor.get()));
    XDB_ASSIGN_OR_RETURN(flwor->return_expr,
                         DispatchCall(instr.site_id, loop_var, mode));
    return QExprPtr(std::move(flwor));
  }

  // A call to the per-mode dispatch machinery for one node variable.
  Result<QExprPtr> DispatchCall(int site_id, const std::string& var,
                                const std::string& mode) {
    if (gen_mode_ == GenMode::kStraightforward) {
      needed_dispatch_modes_.insert(mode);
      std::vector<QExprPtr> args;
      args.push_back(MakeVarRef(var));
      return QExprPtr(std::make_unique<xquery::FunctionCallQExpr>(
          DispatchFnName(mode), std::move(args)));
    }
    // Non-inline: inline the (trace-restricted) conditional chain here.
    const DispatchEntry* entry = graph_.FindUnion(site_id, mode);
    if (entry == nullptr) {
      // Site never reached in the trace: dead code.
      return QExprPtr(std::make_unique<SequenceQExpr>());
    }
    return BuildDispatchChain(entry->candidates, entry->builtin_fallback, var,
                              mode, /*assume_structure=*/false);
  }

  std::string DispatchFnName(const std::string& mode) {
    return "local:dispatch" + ModeSuffix(mode);
  }
  std::string BuiltinFnName(const std::string& mode) {
    return "local:builtin" + ModeSuffix(mode);
  }
  std::string ModeSuffix(const std::string& mode) {
    if (mode.empty()) return "";
    auto [it, inserted] = mode_ids_.emplace(mode, mode_ids_.size() + 1);
    return "_m" + std::to_string(it->second);
  }

  // Conditional chain over candidate templates, ending in builtin handling.
  Result<QExprPtr> BuildDispatchChain(
      const std::vector<Stylesheet::StructuralMatch>& candidates,
      bool builtin_fallback, const std::string& var, const std::string& mode,
      bool assume_structure) {
    QExprPtr chain;
    if (builtin_fallback || candidates.empty()) {
      needed_builtin_modes_.insert(mode);
      std::vector<QExprPtr> args;
      args.push_back(MakeVarRef(var));
      chain = std::make_unique<xquery::FunctionCallQExpr>(BuiltinFnName(mode),
                                                          std::move(args));
    } else {
      chain = std::make_unique<SequenceQExpr>();  // unreachable else-branch
    }
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      XDB_ASSIGN_OR_RETURN(QExprPtr call, TemplateCall(it->index, var));
      XDB_ASSIGN_OR_RETURN(QExprPtr test,
                           CandidateTest(it->index, var, assume_structure));
      if (test == nullptr) {
        chain = std::move(call);  // unconditional
      } else {
        ++report_->dispatch_conditionals;
        chain = std::make_unique<IfQExpr>(std::move(test), std::move(call),
                                          std::move(chain));
      }
    }
    return chain;
  }

  // The best (lowest-cost) test that decides whether `var` matches template
  // `idx`'s pattern; null when always true.
  Result<QExprPtr> CandidateTest(int idx, const std::string& var,
                                 bool assume_structure) {
    const TemplateRule& rule = ss_.templates()[idx];
    if (rule.match == nullptr) return QExprPtr(nullptr);
    // Multiple alternatives OR together; we emit the chain as nested ifs over
    // one test each, so build one combined exists() when possible.
    QExprPtr combined;
    for (const auto& alt : rule.match->alternatives()) {
      XDB_ASSIGN_OR_RETURN(
          PatternTestResult t,
          BuildPatternTest(*alt.path, var, structure_, assume_structure,
                           options_.enable_parent_test_removal));
      report_->parent_tests_removed += t.parent_tests_removed;
      report_->residual_predicate_tests += t.residual_predicates;
      if (t.test == nullptr) return QExprPtr(nullptr);  // one alt always true
      if (combined == nullptr) {
        combined = std::move(t.test);
      } else {
        // OR at the XPath level when both are xpath; otherwise keep first
        // (conservative: may dispatch less precisely than the union).
        if (combined->kind() == QExprKind::kXPath &&
            t.test->kind() == QExprKind::kXPath) {
          auto* l = static_cast<xquery::XPathQExpr*>(combined.get());
          auto* r = static_cast<xquery::XPathQExpr*>(t.test.get());
          combined = MakeXPath(std::make_unique<xpath::BinaryExpr>(
              xpath::BinaryOp::kOr, std::move(l->expr), std::move(r->expr)));
        }
      }
    }
    return combined;
  }

  // local:tmplN($var, <defaults...>)
  Result<QExprPtr> TemplateCall(int idx, const std::string& var) {
    needed_templates_.insert(idx);
    const xslt::CompiledTemplate& tmpl = cs_.templates()[idx];
    std::vector<QExprPtr> args;
    args.push_back(MakeVarRef(var));
    TransCtx tc;
    tc.ctx_var = var;
    for (const CompiledParam& p : tmpl.params) {
      XDB_ASSIGN_OR_RETURN(QExprPtr dflt, TranslateParamValue(p, tc));
      args.push_back(std::move(dflt));
    }
    return QExprPtr(std::make_unique<xquery::FunctionCallQExpr>(
        TemplateFnName(idx), std::move(args)));
  }

  std::string TemplateFnName(int idx) {
    return "local:tmpl" + std::to_string(idx);
  }

  Result<QExprPtr> TranslateCallTemplate(const Instruction& instr, TransCtx& tc) {
    if (gen_mode_ == GenMode::kInline) {
      return InlineTemplateWithParams(instr.target_template, instr.params, tc,
                                      tc.sample, tc.ctx_var);
    }
    needed_templates_.insert(instr.target_template);
    const xslt::CompiledTemplate& tmpl = cs_.templates()[instr.target_template];
    std::vector<QExprPtr> args;
    args.push_back(MakeVarRef(tc.ctx_var));
    for (const CompiledParam& declared : tmpl.params) {
      const CompiledParam* provided = nullptr;
      for (const CompiledParam& wp : instr.params) {
        if (wp.name == declared.name) provided = &wp;
      }
      XDB_ASSIGN_OR_RETURN(QExprPtr value,
                           TranslateParamValue(provided ? *provided : declared, tc));
      args.push_back(std::move(value));
    }
    return QExprPtr(std::make_unique<xquery::FunctionCallQExpr>(
        TemplateFnName(instr.target_template), std::move(args)));
  }

  // ---- inline mode ----------------------------------------------------------

  Result<QExprPtr> InlineApplyTemplates(const Instruction& instr, TransCtx& tc,
                                        const std::string& mode) {
    if (tc.sample == nullptr) {
      return Status::RewriteError(
          "XSLT rewrite: lost sample context during inline translation");
    }
    if (tc.depth > kMaxInlineDepth) {
      return Status::Internal("XSLT rewrite: inline depth exceeded");
    }
    XDB_ASSIGN_OR_RETURN(xpath::NodeSet targets, StructuralTargets(instr, tc.sample));
    return InlineDispatchTargets(instr.site_id, instr.expr.get(), &instr, targets,
                                 tc, mode);
  }

  // Generates the per-target let/for + chain code for a set of structurally
  // selected sample nodes (§3.3/§3.4).
  Result<QExprPtr> InlineDispatchTargets(int site_id, const xpath::Expr* select,
                                         const Instruction* instr,
                                         const xpath::NodeSet& targets,
                                         TransCtx& tc, const std::string& mode) {
    Rebaser rb(tc.ctx_var, tc.ctx_var);
    // Does the select already pin a single element name?
    std::string pinned_name;
    if (select != nullptr && select->kind() == xpath::ExprKind::kPath) {
      const auto& p = static_cast<const xpath::PathExpr&>(*select);
      if (!p.steps.empty() &&
          p.steps.back().test.kind == xpath::NodeTest::Kind::kName) {
        pinned_name = p.steps.back().test.local;
      }
    }

    // Group targets: one group per element name (or node kind).
    struct Group {
      std::string nav_label;  // element name, "#text", "@name"
      const Node* representative;
      size_t count = 0;
    };
    std::vector<Group> groups;
    for (const Node* m : targets) {
      std::string label;
      if (m->is_element()) {
        label = m->local_name();
      } else if (m->is_text()) {
        label = "#text";
      } else if (m->is_attribute()) {
        label = "@" + m->local_name();
      } else {
        continue;  // comments/PIs: built-in does nothing
      }
      bool found = false;
      for (Group& g : groups) {
        if (g.nav_label == label) {
          ++g.count;
          found = true;
        }
      }
      if (!found) groups.push_back(Group{label, m, 1});
    }
    if (groups.empty()) return QExprPtr(std::make_unique<SequenceQExpr>());

    // Model group of the parent (annotations on the sample node's children
    // apply when iterating default child::node()).
    std::string parent_group =
        tc.sample != nullptr
            ? tc.sample->GetAttribute(schema::kAttrGroup)
            : "";
    bool heterogeneous_default = select == nullptr && groups.size() > 1;

    // Per-group generation.
    auto gen_group = [&](const Group& g) -> Result<QExprPtr> {
      // Navigation expression.
      xpath::ExprPtr nav;
      if (!pinned_name.empty() && g.representative->is_element() &&
          g.representative->local_name() == pinned_name) {
        XDB_ASSIGN_OR_RETURN(nav, rb.Rebase(*select));  // keeps predicates
      } else if (g.nav_label == "#text") {
        XDB_ASSIGN_OR_RETURN(nav,
                             xpath::ParseXPath("$" + tc.ctx_var + "/text()"));
      } else if (g.nav_label[0] == '@') {
        XDB_ASSIGN_OR_RETURN(
            nav, xpath::ParseXPath("$" + tc.ctx_var + "/" + g.nav_label));
      } else {
        XDB_ASSIGN_OR_RETURN(
            nav, xpath::ParseXPath("$" + tc.ctx_var + "/" + g.nav_label));
      }
      // Cardinality (§3.4): certain singletons become let, everything else a
      // for loop. A target is repeating/optional when it or any ancestor on
      // the navigation path (up to the context sample node) is annotated --
      // e.g. ".//sal" repeats because it passes through the repeating emp.
      bool repeating = g.count > 1 || g.nav_label == "#text";
      for (const Node* a = g.representative; a != nullptr && a != tc.sample;
           a = a->parent()) {
        if (a->HasAttribute(schema::kAttrMaxOccurs) ||
            a->HasAttribute(schema::kAttrMinOccurs) ||
            a->HasAttribute(schema::kAttrRecursive)) {
          repeating = true;
        }
        // A member of a choice group is not a certain singleton even at
        // (1,1): each instance takes only one branch, so the others are
        // absent and a `let` would emit their bodies unconditionally.
        if (a->parent() != nullptr &&
            a->parent()->GetAttribute(schema::kAttrGroup) == "choice") {
          repeating = true;
        }
      }
      if (select != nullptr) {
        // An explicit select may carry predicates: even a (1,1) child can be
        // filtered out at runtime, so use a for loop unless predicate-free.
        if (!pinned_name.empty()) {
          const auto& p = static_cast<const xpath::PathExpr&>(*select);
          for (const auto& st : p.steps) {
            if (!st.predicates.empty()) repeating = true;
          }
        }
      }
      if (!options_.enable_cardinality) repeating = true;

      std::string var = FreshVar();
      XDB_ASSIGN_OR_RETURN(
          QExprPtr body,
          InlineChainFor(site_id, g.representative, var, mode, tc.depth + 1,
                         instr));
      auto flwor = std::make_unique<FlworQExpr>();
      flwor->clauses.push_back(FlworQExpr::Clause{
          repeating ? FlworQExpr::Clause::Kind::kFor
                    : FlworQExpr::Clause::Kind::kLet,
          var, MakeXPath(std::move(nav))});
      if (instr != nullptr && repeating) {
        XDB_RETURN_NOT_OK(AddSortKeys(*instr, var, flwor.get()));
      }
      flwor->return_expr = std::move(body);
      return QExprPtr(std::move(flwor));
    };

    // Choice model group (Table 13): if ($v/n1) then ... else if ($v/n2) ...
    if (heterogeneous_default && parent_group == "choice") {
      QExprPtr chain = std::make_unique<SequenceQExpr>();
      for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
        XDB_ASSIGN_OR_RETURN(QExprPtr code, gen_group(*it));
        if (it->nav_label == "#text" || it->nav_label[0] == '@') {
          // text/attrs: no existence-alternative semantics; just append.
          std::vector<QExprPtr> both;
          both.push_back(std::move(code));
          both.push_back(std::move(chain));
          chain = Combine(std::move(both));
          continue;
        }
        XDB_ASSIGN_OR_RETURN(
            xpath::ExprPtr exists,
            xpath::ParseXPath("$" + tc.ctx_var + "/" + it->nav_label));
        chain = std::make_unique<IfQExpr>(MakeXPath(std::move(exists)),
                                          std::move(code), std::move(chain));
      }
      return chain;
    }

    // "all" model group (Table 12): order unknown, iterate node() with
    // instance-of tests.
    if (heterogeneous_default && parent_group == "all") {
      std::string var = FreshVar();
      QExprPtr chain = std::make_unique<SequenceQExpr>();
      for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
        XDB_ASSIGN_OR_RETURN(
            QExprPtr code,
            InlineChainFor(site_id, it->representative, var, mode, tc.depth + 1,
                           instr));
        QExprPtr test;
        if (it->nav_label == "#text") {
          test = std::make_unique<InstanceOfQExpr>(
              MakeVarRef(var), "", InstanceOfQExpr::TypeKind::kText);
        } else {
          test = std::make_unique<InstanceOfQExpr>(
              MakeVarRef(var), it->nav_label, InstanceOfQExpr::TypeKind::kElement);
        }
        chain = std::make_unique<IfQExpr>(std::move(test), std::move(code),
                                          std::move(chain));
      }
      auto flwor = std::make_unique<FlworQExpr>();
      XDB_ASSIGN_OR_RETURN(xpath::ExprPtr nav,
                           xpath::ParseXPath("$" + tc.ctx_var + "/node()"));
      flwor->clauses.push_back(FlworQExpr::Clause{FlworQExpr::Clause::Kind::kFor,
                                                  var, MakeXPath(std::move(nav))});
      flwor->return_expr = std::move(chain);
      return QExprPtr(std::move(flwor));
    }

    // Sequence model group (Table 14/15): per-child code in declared order.
    std::vector<QExprPtr> items;
    for (const Group& g : groups) {
      XDB_ASSIGN_OR_RETURN(QExprPtr code, gen_group(g));
      items.push_back(std::move(code));
    }
    return Combine(std::move(items));
  }

  // Candidate chain for one sample node bound to `var` (§4.3, Tables 18/19).
  Result<QExprPtr> InlineChainFor(int site_id, const Node* m,
                                  const std::string& var,
                                  const std::string& mode, int depth,
                                  const Instruction* instr) {
    const DispatchEntry* entry = graph_.Find(site_id, m, mode);
    if (entry == nullptr) {
      // Not dispatched in the trace (e.g. unreachable); built-in as fallback.
      return InlineBuiltin(m, var, mode, depth);
    }
    QExprPtr chain;
    if (entry->builtin_fallback) {
      XDB_ASSIGN_OR_RETURN(chain, InlineBuiltin(m, var, mode, depth));
    } else {
      chain = std::make_unique<SequenceQExpr>();
    }
    for (auto it = entry->candidates.rbegin(); it != entry->candidates.rend();
         ++it) {
      static const std::vector<CompiledParam> kNoParams;
      const std::vector<CompiledParam>& wp =
          instr != nullptr ? instr->params : kNoParams;
      XDB_ASSIGN_OR_RETURN(QExprPtr body,
                           InlineTemplateWithParams(it->index, wp,
                                                    /*caller=*/nullptr, m, var,
                                                    mode, depth));
      if (!it->conditional) {
        chain = std::move(body);
        continue;
      }
      XDB_ASSIGN_OR_RETURN(QExprPtr test,
                           CandidateTest(it->index, var, /*assume_structure=*/true));
      if (test == nullptr) {
        chain = std::move(body);
      } else {
        chain = std::make_unique<IfQExpr>(std::move(test), std::move(body),
                                          std::move(chain));
      }
    }
    return chain;
  }

  // Inline a template body for sample node `m`, context variable `var`,
  // binding declared params from `with_params` (caller context tc) or
  // defaults (callee context).
  Result<QExprPtr> InlineTemplateWithParams(
      int idx, const std::vector<CompiledParam>& with_params, TransCtx* caller,
      const Node* m, const std::string& var, const std::string& mode = "",
      int depth = 0) {
    const xslt::CompiledTemplate& tmpl = cs_.templates()[idx];
    const TemplateRule& rule = ss_.templates()[idx];
    if (depth > kMaxInlineDepth) {
      return Status::Internal("XSLT rewrite: inline depth exceeded");
    }
    inlined_.insert(idx);

    TransCtx body_tc;
    body_tc.ctx_var = var;
    body_tc.sample = m;
    body_tc.mode = rule.mode;
    body_tc.depth = depth + 1;

    XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> body,
                         TranslateBody(tmpl.body, body_tc));
    QExprPtr result = Combine(std::move(body));

    // Bind params back-to-front as lets.
    for (auto it = tmpl.params.rbegin(); it != tmpl.params.rend(); ++it) {
      const CompiledParam* provided = nullptr;
      for (const CompiledParam& wp : with_params) {
        if (wp.name == it->name) provided = &wp;
      }
      QExprPtr value;
      if (provided != nullptr && caller != nullptr) {
        XDB_ASSIGN_OR_RETURN(value, TranslateParamValue(*provided, *caller));
      } else if (provided != nullptr) {
        TransCtx caller_tc;
        caller_tc.ctx_var = var;  // apply-templates caller ctx approximated
        caller_tc.sample = m;
        XDB_ASSIGN_OR_RETURN(value, TranslateParamValue(*provided, caller_tc));
      } else {
        XDB_ASSIGN_OR_RETURN(value, TranslateParamValue(*it, body_tc));
      }
      auto flwor = std::make_unique<FlworQExpr>();
      flwor->clauses.push_back(FlworQExpr::Clause{FlworQExpr::Clause::Kind::kLet,
                                                  it->name, std::move(value)});
      flwor->return_expr = std::move(result);
      result = std::move(flwor);
    }
    (void)mode;
    return result;
  }

  // Overload used by call-template inlining (caller context known).
  Result<QExprPtr> InlineTemplateWithParams(int idx,
                                            const std::vector<CompiledParam>& wp,
                                            TransCtx& caller, const Node* m,
                                            const std::string& var) {
    return InlineTemplateWithParams(idx, wp, &caller, m, var, caller.mode,
                                    caller.depth + 1);
  }

  // Built-in template behaviour, inlined for a specific sample node.
  Result<QExprPtr> InlineBuiltin(const Node* m, const std::string& var,
                                 const std::string& mode, int depth) {
    if (depth > kMaxInlineDepth) {
      return Status::Internal("XSLT rewrite: inline depth exceeded");
    }
    switch (m->type()) {
      case NodeType::kText:
      case NodeType::kAttribute: {
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr e,
                             xpath::ParseXPath("fn:string($" + var + ")"));
        return WrapText(MakeXPath(std::move(e)));
      }
      case NodeType::kDocument:
      case NodeType::kElement: {
        if (m->GetAttribute(schema::kAttrRecursive) == "true") {
          return Status::RewriteError(
              "XSLT rewrite: recursive structure reached built-in expansion");
        }
        xpath::NodeSet children;
        for (Node* c : m->children()) children.push_back(c);
        TransCtx tc;
        tc.ctx_var = var;
        tc.sample = m;
        tc.mode = mode;
        tc.depth = depth;
        return InlineDispatchTargets(kBuiltinSite, nullptr, nullptr, children, tc,
                                     mode);
      }
      default:
        return QExprPtr(std::make_unique<SequenceQExpr>());
    }
  }

  // ---- top-level generators -------------------------------------------------

  Result<Query> GenerateBuiltinOnly() {
    Query q;
    XDB_ASSIGN_OR_RETURN(QExprPtr root, ParseBody(R"q(
      fn:string-join(
        for $var001 in $var000//text()
        return fn:string($var001), ""))q"));
    q.variables.push_back(xquery::VarDecl{"var000", MakeXPath(
        xpath::ParseXPath(".").MoveValue())});
    q.body = std::move(root);
    return q;
  }

  Result<QExprPtr> ParseBody(const std::string& text) {
    XDB_ASSIGN_OR_RETURN(QExprPtr e, xquery::ParseExpression(text));
    return e;
  }

  Result<Query> GenerateInline() {
    Query q;
    q.variables.push_back(xquery::VarDecl{
        "var000", MakeXPath(xpath::ParseXPath(".").MoveValue())});
    var_counter_ = 2;
    // Root dispatch: the document node of the sample document through the
    // built-in rule machinery (matches the VM's Run()).
    Node* doc_root = sample_doc_->root();
    XDB_ASSIGN_OR_RETURN(QExprPtr body,
                         InlineChainFor(kBuiltinSite, doc_root, "var000", "", 0,
                                        nullptr));
    q.body = std::move(body);
    report_->templates_translated = static_cast<int>(inlined_.size());
    if (options_.enable_dead_template_removal) {
      report_->dead_templates_removed =
          report_->templates_total - static_cast<int>(graph_.activated().size());
    }
    return q;
  }

  Result<Query> GenerateNonInline() {
    var_counter_ = 2;
    needed_templates_.clear();
    // §3.7: only templates the trace activated are candidates; the dispatch
    // chains may still reference them lazily, so emit functions on demand.
    Query q;
    q.variables.push_back(xquery::VarDecl{
        "var000", MakeXPath(xpath::ParseXPath(".").MoveValue())});
    XDB_ASSIGN_OR_RETURN(q.body, DispatchCall(kBuiltinSite, "var000", ""));

    XDB_RETURN_NOT_OK(EmitTemplateFunctions(&q));
    XDB_RETURN_NOT_OK(EmitBuiltinFunctions(&q, /*straightforward=*/false));
    report_->templates_translated = static_cast<int>(emitted_templates_.size());
    if (options_.enable_dead_template_removal) {
      report_->dead_templates_removed =
          report_->templates_total - report_->templates_translated;
    }
    return q;
  }

  Result<Query> GenerateStraightforward() {
    var_counter_ = 2;
    Query q;
    q.variables.push_back(xquery::VarDecl{
        "var000", MakeXPath(xpath::ParseXPath(".").MoveValue())});
    needed_dispatch_modes_.insert("");
    {
      std::vector<QExprPtr> args;
      args.push_back(MakeVarRef("var000"));
      q.body = std::make_unique<xquery::FunctionCallQExpr>(DispatchFnName(""),
                                                           std::move(args));
    }
    // All templates become functions in the [9] baseline.
    for (const TemplateRule& rule : ss_.templates()) {
      needed_templates_.insert(rule.index);
    }
    XDB_RETURN_NOT_OK(EmitTemplateFunctions(&q));
    XDB_RETURN_NOT_OK(EmitDispatchFunctions(&q));
    XDB_RETURN_NOT_OK(EmitBuiltinFunctions(&q, /*straightforward=*/true));
    report_->templates_translated = static_cast<int>(emitted_templates_.size());
    return q;
  }

  Status EmitTemplateFunctions(Query* q) {
    // Translating a template body may request more templates; iterate to a
    // fixed point.
    bool progress = true;
    while (progress) {
      progress = false;
      std::set<int> pending = needed_templates_;
      for (int idx : pending) {
        if (emitted_templates_.count(idx) > 0) continue;
        emitted_templates_.insert(idx);
        progress = true;
        const xslt::CompiledTemplate& tmpl = cs_.templates()[idx];
        xquery::FunctionDecl f;
        f.name = TemplateFnName(idx);
        f.params.push_back("n");
        for (const CompiledParam& p : tmpl.params) f.params.push_back(p.name);
        TransCtx tc;
        tc.ctx_var = "n";
        tc.mode = ss_.templates()[idx].mode;
        XDB_ASSIGN_OR_RETURN(std::vector<QExprPtr> body,
                             TranslateBody(tmpl.body, tc));
        f.body = Combine(std::move(body));
        q->functions.push_back(std::move(f));
      }
    }
    return Status::OK();
  }

  Status EmitDispatchFunctions(Query* q) {
    for (const std::string& mode : needed_dispatch_modes_) {
      xquery::FunctionDecl f;
      f.name = DispatchFnName(mode);
      f.params.push_back("n");
      // All templates of this mode, best priority first, later-index first.
      std::vector<Stylesheet::StructuralMatch> candidates;
      std::vector<std::pair<double, int>> ordered;
      for (const TemplateRule& rule : ss_.templates()) {
        if (rule.match == nullptr || rule.mode != mode) continue;
        double best = -1e9;
        for (const auto& alt : rule.match->alternatives()) {
          best = std::max(best, rule.PriorityOf(alt));
        }
        ordered.emplace_back(best, rule.index);
      }
      std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second > b.second;
      });
      for (const auto& [prio, idx] : ordered) {
        candidates.push_back(Stylesheet::StructuralMatch{idx, true, prio});
      }
      XDB_ASSIGN_OR_RETURN(f.body,
                           BuildDispatchChain(candidates, /*builtin=*/true, "n",
                                              mode, /*assume_structure=*/false));
      q->functions.push_back(std::move(f));
    }
    return Status::OK();
  }

  Status EmitBuiltinFunctions(Query* q, bool straightforward) {
    // Built-in translation may (in straightforward mode) reference dispatch
    // functions that in turn need more builtins; the mode set is small, so a
    // snapshot loop suffices.
    std::set<std::string> done;
    bool progress = true;
    while (progress) {
      progress = false;
      std::set<std::string> pending = needed_builtin_modes_;
      if (straightforward) {
        pending.insert(needed_dispatch_modes_.begin(),
                       needed_dispatch_modes_.end());
      }
      for (const std::string& mode : pending) {
        if (done.count(mode) > 0) continue;
        done.insert(mode);
        progress = true;
        xquery::FunctionDecl f;
        f.name = BuiltinFnName(mode);
        f.params.push_back("n");
        // if ($n instance of text()) then fn:string($n)
        // else if ($n instance of attribute()) then fn:string($n)
        // else for $c in $n/node() return <dispatch>
        std::string var = FreshVar();
        QExprPtr recurse;
        if (straightforward) {
          needed_dispatch_modes_.insert(mode);
          std::vector<QExprPtr> args;
          args.push_back(MakeVarRef(var));
          recurse = std::make_unique<xquery::FunctionCallQExpr>(
              DispatchFnName(mode), std::move(args));
        } else {
          const DispatchEntry* entry = graph_.FindUnion(kBuiltinSite, mode);
          if (entry != nullptr) {
            XDB_ASSIGN_OR_RETURN(
                recurse, BuildDispatchChain(entry->candidates, true, var, mode,
                                            false));
          } else {
            std::vector<QExprPtr> args;
            args.push_back(MakeVarRef(var));
            recurse = std::make_unique<xquery::FunctionCallQExpr>(
                BuiltinFnName(mode), std::move(args));
          }
        }
        auto flwor = std::make_unique<FlworQExpr>();
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr nav, xpath::ParseXPath("$n/node()"));
        flwor->clauses.push_back(FlworQExpr::Clause{
            FlworQExpr::Clause::Kind::kFor, var, MakeXPath(std::move(nav))});
        flwor->return_expr = std::move(recurse);

        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr str_n,
                             xpath::ParseXPath("fn:string($n)"));
        QExprPtr text_branch = WrapText(MakeXPath(std::move(str_n)));
        XDB_ASSIGN_OR_RETURN(xpath::ExprPtr str_n2,
                             xpath::ParseXPath("fn:string($n)"));
        QExprPtr attr_branch = WrapText(MakeXPath(std::move(str_n2)));

        QExprPtr attr_if = std::make_unique<IfQExpr>(
            std::make_unique<InstanceOfQExpr>(MakeVarRef("n"), "",
                                              InstanceOfQExpr::TypeKind::kAttribute),
            std::move(attr_branch), std::move(flwor));
        f.body = std::make_unique<IfQExpr>(
            std::make_unique<InstanceOfQExpr>(MakeVarRef("n"), "",
                                              InstanceOfQExpr::TypeKind::kText),
            std::move(text_branch), std::move(attr_if));
        q->functions.push_back(std::move(f));
      }
    }
    return Status::OK();
  }

  const CompiledStylesheet& cs_;
  const Stylesheet& ss_;
  const StructuralInfo* structure_;
  XsltRewriteOptions options_;
  RewriteReport* report_;

  GenMode gen_mode_ = GenMode::kStraightforward;
  std::unique_ptr<xml::Document> sample_doc_;
  GraphBuilder graph_;
  xpath::Evaluator sample_evaluator_;
  int var_counter_ = 2;

  std::set<int> needed_templates_;
  std::set<int> emitted_templates_;
  std::set<int> inlined_;
  std::set<std::string> needed_dispatch_modes_;
  std::set<std::string> needed_builtin_modes_;
  std::map<std::string, size_t> mode_ids_;
};

}  // namespace

Result<Query> RewriteXsltToXQuery(const CompiledStylesheet& stylesheet,
                                  const StructuralInfo* structure,
                                  const XsltRewriteOptions& options,
                                  RewriteReport* report) {
  RewriteReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RewriteReport();
  RewriterEngine engine(stylesheet, structure, options, report);
  return engine.Run();
}

}  // namespace xdb::rewrite
