// Output canonicalization for the differential oracle: before two engines'
// results are compared, both are reduced to a canonical form that erases
// representation noise a correct engine is allowed to produce (attribute
// order, fragmented text nodes) while preserving everything that could hide
// a real divergence (text content byte-for-byte, numeric lexical forms like
// "1" vs "1.0", namespace prefixes, comments and processing instructions).
#ifndef XDB_DIFFTEST_CANONICAL_H_
#define XDB_DIFFTEST_CANONICAL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace xdb::difftest {

/// Canonicalizes a serialized XML fragment (zero or more top-level nodes,
/// possibly bare text):
///   * attributes sorted by qualified name,
///   * adjacent text nodes coalesced, empty text dropped,
///   * everything else — element names, prefixes, text bytes, numeric
///     formatting, comments, PIs — preserved verbatim.
/// Returns kParseError when the fragment is not well-formed.
Result<std::string> CanonicalizeXml(std::string_view fragment);

}  // namespace xdb::difftest

#endif  // XDB_DIFFTEST_CANONICAL_H_
