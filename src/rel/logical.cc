#include "rel/logical.h"

namespace xdb::rel {

const char* LogicalKindName(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
      return "Scan";
    case LogicalKind::kFilter:
      return "Filter";
    case LogicalKind::kProject:
      return "Project";
    case LogicalKind::kXmlAgg:
      return "XMLAgg";
    case LogicalKind::kScalarAgg:
      return "ScalarAgg";
    case LogicalKind::kJoin:
      return "GroupJoin";
    case LogicalKind::kStructuralJoin:
      return "StructuralJoin";
  }
  return "?";  // out-of-range cast from untrusted int
}

LogicalApplyExpr::LogicalApplyExpr(std::shared_ptr<LogicalNode> plan)
    : RelExpr(RelExprKind::kLogicalApply), plan(std::move(plan)) {}
LogicalApplyExpr::~LogicalApplyExpr() = default;

Result<Datum> LogicalApplyExpr::Eval(ExecCtx&) const {
  return Status::Internal(
      "logical plan evaluated without lowering; run rel::Optimizer first");
}

std::string LogicalApplyExpr::ToSql() const {
  std::string inner;
  ExplainLogical(*plan, 1, &inner);
  return "(SELECT\n" + inner + ")";
}

namespace {
std::string Pad(int indent) {
  return std::string(static_cast<size_t>(indent) * 2, ' ');
}
}  // namespace

void ExplainLogical(const LogicalNode& node, int indent, std::string* out) {
  switch (node.kind()) {
    case LogicalKind::kScan: {
      const auto& s = static_cast<const LogicalScanNode&>(node);
      if (s.index_range.has_value()) {
        const IndexRange& r = *s.index_range;
        *out += Pad(indent) + "IndexScan(" + s.table->name() + "." + r.column;
        if (r.lo != nullptr) {
          *out += std::string(r.lo_inclusive ? " >= " : " > ") + r.lo->ToSql();
        }
        if (r.hi != nullptr) {
          *out += std::string(r.hi_inclusive ? " <= " : " < ") + r.hi->ToSql();
        }
        *out += ")\n";
      } else {
        *out += Pad(indent) + "Scan(" + s.table->name() + ")\n";
      }
      return;
    }
    case LogicalKind::kFilter: {
      const auto& f = static_cast<const LogicalFilterNode&>(node);
      *out += Pad(indent) + "Filter(" + f.predicate->ToSql() + ")\n";
      ExplainLogical(*f.child, indent + 1, out);
      return;
    }
    case LogicalKind::kProject: {
      const auto& p = static_cast<const LogicalProjectNode&>(node);
      *out += Pad(indent) + "Project(";
      for (size_t i = 0; i < p.exprs.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += p.exprs[i]->ToSql();
      }
      *out += ")\n";
      ExplainLogical(*p.child, indent + 1, out);
      return;
    }
    case LogicalKind::kXmlAgg: {
      const auto& a = static_cast<const LogicalXmlAggNode&>(node);
      *out += Pad(indent) + "XMLAgg(";
      if (a.order_by != nullptr) {
        *out += "ORDER BY " + a.order_by->ToSql();
        if (a.descending) *out += " DESC";
      }
      *out += ")\n";
      ExplainLogical(*a.child, indent + 1, out);
      return;
    }
    case LogicalKind::kScalarAgg: {
      const auto& a = static_cast<const LogicalScalarAggNode&>(node);
      const char* name = a.agg == AggKind::kSum
                             ? "SUM"
                             : (a.agg == AggKind::kCount
                                    ? "COUNT"
                                    : (a.agg == AggKind::kMin ? "MIN" : "MAX"));
      *out += Pad(indent) + std::string(name) + "(" +
              (a.arg != nullptr ? a.arg->ToSql() : "*") + ")\n";
      ExplainLogical(*a.child, indent + 1, out);
      return;
    }
    case LogicalKind::kJoin: {
      const auto& j = static_cast<const LogicalJoinNode&>(node);
      std::string agg;
      if (j.is_xmlagg) {
        agg = "XMLAgg";
        if (j.xml_order_by != nullptr) {
          agg += " ORDER BY " + j.xml_order_by->ToSql();
          if (j.descending) agg += " DESC";
        }
      } else {
        const char* name =
            j.agg == AggKind::kSum
                ? "SUM"
                : (j.agg == AggKind::kCount
                       ? "COUNT"
                       : (j.agg == AggKind::kMin ? "MIN" : "MAX"));
        agg = std::string(name) + "(" +
              (j.agg_arg != nullptr ? j.agg_arg->ToSql() : "*") + ")";
      }
      *out += Pad(indent) + "GroupJoin(" + j.right_table->name() + "." +
              j.right_key_name + " = " + j.left_key->ToSql() + ", " + agg +
              ", strategy=" + JoinStrategyName(j.strategy) + ")\n";
      if (!j.residual.empty()) {
        *out += Pad(indent + 1) + "Residual(";
        for (size_t i = 0; i < j.residual.size(); ++i) {
          if (i > 0) *out += " AND ";
          *out += j.residual[i]->ToSql();
        }
        *out += ")\n";
      }
      ExplainLogical(*j.left, indent + 1, out);
      return;
    }
    case LogicalKind::kStructuralJoin: {
      const auto& j = static_cast<const LogicalStructuralJoinNode&>(node);
      *out += Pad(indent) + "StructuralJoin(" + j.table->name() + ", axis=" +
              StructuralAxisName(j.axis) + ", anchor=[" +
              j.outer_start->ToSql() + ", " + j.outer_end->ToSql() +
              "], strategy=" + StructuralStrategyName(j.strategy) + ")\n";
      return;
    }
  }
  *out += Pad(indent) + "?\n";  // out-of-range kind
}

std::string ExplainLogicalPlan(const LogicalNode& node) {
  std::string out;
  ExplainLogical(node, 0, &out);
  return out;
}

}  // namespace xdb::rel
