// XSLT -> XQuery rewrite: the paper's primary contribution (§3-§4).
//
// Two strategies:
//
//  * Straightforward translation (Fokoue et al. [9], the paper's baseline):
//    every template becomes an XQuery function; <xsl:apply-templates> becomes
//    a per-mode dispatch function built from a chain of conditional pattern
//    tests (instance-of + reversed-step existence tests); the built-in rules
//    become recursive functions. Correct without any structural knowledge,
//    but the dispatch chains are long and data-independent work is repeated.
//
//  * Partial-evaluation rewrite (the paper's approach, §4): generate the
//    annotated sample document from the input's structural information, run
//    the XSLTVM over it in trace mode, build the template execution graph,
//    and specialize:
//      - acyclic graph  -> INLINE mode: one main expression, all activated
//        template bodies inlined at their call sites (§3.3), child dispatch
//        arranged by model group and cardinality (§3.4, Tables 12-15),
//        backward-axis tests eliminated (§3.5), value predicates kept as
//        residual conditionals (§4.3, Tables 18-19);
//      - cyclic graph   -> NON-INLINE mode: functions only for templates the
//        trace actually instantiated (§3.7), call-site dispatch chains
//        restricted to the trace-call-list, parent-axis tests dropped when
//        the structure proves a unique parent (§3.5);
//      - no user template ever activated -> built-in-only compaction (§3.6,
//        Tables 20-21).
#ifndef XDB_REWRITE_XSLT_REWRITER_H_
#define XDB_REWRITE_XSLT_REWRITER_H_

#include <string>

#include "common/status.h"
#include "schema/structure.h"
#include "xquery/ast.h"
#include "xslt/vm.h"

namespace xdb::rewrite {

/// Outcome statistics, used by tests, EXPERIMENTS.md and the ablation
/// benchmarks.
struct RewriteReport {
  enum class Mode { kInline, kNonInline, kStraightforward };
  Mode mode = Mode::kStraightforward;
  /// §3.6: the entire query collapsed to the built-in-only compact form.
  bool builtin_only = false;
  /// Trace found a recursive template activation.
  bool recursion_detected = false;
  int templates_total = 0;
  /// Templates that received a translation (inlined or emitted as functions).
  int templates_translated = 0;
  /// §3.7: templates dropped because the trace never instantiated them.
  int dead_templates_removed = 0;
  /// §3.5: reversed-step (parent/ancestor) tests eliminated.
  int parent_tests_removed = 0;
  /// Residual value-predicate conditionals kept (Tables 18/19).
  int residual_predicate_tests = 0;
  /// Dispatch conditionals emitted (straightforward/non-inline modes).
  int dispatch_conditionals = 0;

  const char* ModeName() const {
    switch (mode) {
      case Mode::kInline:
        return "inline";
      case Mode::kNonInline:
        return "non-inline";
      case Mode::kStraightforward:
        return "straightforward";
    }
    return "?";
  }
};

/// Optimization switches (defaults reproduce the paper; individual flags are
/// turned off by the ablation benchmarks).
struct XsltRewriteOptions {
  /// Ignore structural information entirely (forces the [9] baseline).
  bool force_straightforward = false;
  bool enable_inline = true;                ///< §3.3 / §4.4 inline mode
  bool enable_cardinality = true;           ///< §3.4 let-vs-for refinement
  bool enable_parent_test_removal = true;   ///< §3.5
  bool enable_builtin_compaction = true;    ///< §3.6
  bool enable_dead_template_removal = true; ///< §3.7
};

/// Rewrites `stylesheet` into an equivalent XQuery.
///
/// With `structure` present, applies the partial-evaluation rewrite; without
/// it (nullptr), falls back to the straightforward translation. Returns a
/// RewriteError when the stylesheet uses constructs outside the translatable
/// subset (callers then evaluate the stylesheet functionally instead).
Result<xquery::Query> RewriteXsltToXQuery(
    const xslt::CompiledStylesheet& stylesheet,
    const schema::StructuralInfo* structure,
    const XsltRewriteOptions& options = {}, RewriteReport* report = nullptr);

}  // namespace xdb::rewrite

#endif  // XDB_REWRITE_XSLT_REWRITER_H_
