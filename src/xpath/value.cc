#include "xpath/value.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace xdb::xpath {

void SortDocumentOrder(NodeSet* nodes) {
  std::sort(nodes->begin(), nodes->end(), [](xml::Node* a, xml::Node* b) {
    return a->CompareDocumentOrder(b) < 0;
  });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

double StringToNumber(const std::string& s) {
  std::string_view t = TrimWhitespace(s);
  if (t.empty()) return std::nan("");
  // XPath numbers: '-'? digits ('.' digits?)? | '-'? '.' digits
  size_t i = 0;
  if (t[i] == '-') ++i;
  bool digits = false;
  while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
    ++i;
    digits = true;
  }
  if (i < t.size() && t[i] == '.') {
    ++i;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
      ++i;
      digits = true;
    }
  }
  if (!digits || i != t.size()) return std::nan("");
  return std::strtod(std::string(t).c_str(), nullptr);
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNodeSet: {
      const NodeSet& ns = node_set();
      return ns.empty() ? std::string() : ns.front()->StringValue();
    }
    case Type::kString:
      return std::get<std::string>(v_);
    case Type::kNumber:
      return FormatXPathNumber(std::get<double>(v_));
    case Type::kBoolean:
      return std::get<bool>(v_) ? "true" : "false";
  }
  return {};
}

double Value::ToNumber() const {
  switch (type()) {
    case Type::kNodeSet:
    case Type::kString:
      return StringToNumber(ToString());
    case Type::kNumber:
      return std::get<double>(v_);
    case Type::kBoolean:
      return std::get<bool>(v_) ? 1.0 : 0.0;
  }
  return std::nan("");
}

bool Value::ToBoolean() const {
  switch (type()) {
    case Type::kNodeSet:
      return !node_set().empty();
    case Type::kString:
      return !std::get<std::string>(v_).empty();
    case Type::kNumber: {
      double d = std::get<double>(v_);
      return d != 0.0 && !std::isnan(d);
    }
    case Type::kBoolean:
      return std::get<bool>(v_);
  }
  return false;
}

Result<NodeSet> Value::ToNodeSet() const {
  if (!is_node_set()) {
    return Status::TypeError(std::string("expected a node-set, got ") +
                             TypeName(type()));
  }
  return node_set();
}

const char* Value::TypeName(Type type) {
  switch (type) {
    case Type::kNodeSet:
      return "node-set";
    case Type::kString:
      return "string";
    case Type::kNumber:
      return "number";
    case Type::kBoolean:
      return "boolean";
  }
  return "unknown";
}

namespace {

bool CompareNumbers(double a, double b, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareAtomic(const Value& lhs, const Value& rhs, CompareOp op) {
  using T = Value::Type;
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    // §3.4: boolean > number > string in conversion preference.
    if (lhs.type() == T::kBoolean || rhs.type() == T::kBoolean) {
      bool eq = lhs.ToBoolean() == rhs.ToBoolean();
      return op == CompareOp::kEq ? eq : !eq;
    }
    if (lhs.type() == T::kNumber || rhs.type() == T::kNumber) {
      return CompareNumbers(lhs.ToNumber(), rhs.ToNumber(), op);
    }
    bool eq = lhs.ToString() == rhs.ToString();
    return op == CompareOp::kEq ? eq : !eq;
  }
  // Relational operators always compare as numbers.
  return CompareNumbers(lhs.ToNumber(), rhs.ToNumber(), op);
}

}  // namespace

bool CompareValues(const Value& lhs, const Value& rhs, CompareOp op) {
  // Existential semantics when node-sets are involved.
  if (lhs.is_node_set() && rhs.is_node_set()) {
    for (xml::Node* a : lhs.node_set()) {
      Value va(a->StringValue());
      for (xml::Node* b : rhs.node_set()) {
        if (CompareAtomic(va, Value(b->StringValue()), op)) return true;
      }
    }
    return false;
  }
  if (lhs.is_node_set()) {
    for (xml::Node* a : lhs.node_set()) {
      if (CompareAtomic(Value(a->StringValue()), rhs, op)) return true;
    }
    return false;
  }
  if (rhs.is_node_set()) {
    for (xml::Node* b : rhs.node_set()) {
      if (CompareAtomic(lhs, Value(b->StringValue()), op)) return true;
    }
    return false;
  }
  return CompareAtomic(lhs, rhs, op);
}

}  // namespace xdb::xpath
