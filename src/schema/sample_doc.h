// Sample-document generation (paper §4.2): builds a special XML document
// that captures all the *structural* information of the input XMLType but
// none of the content values. Model-group and cardinality facts that a
// one-occurrence instance cannot express are carried by annotation
// attributes in a reserved namespace, exactly as the paper describes for
// Oracle's XDB namespace.
#ifndef XDB_SCHEMA_SAMPLE_DOC_H_
#define XDB_SCHEMA_SAMPLE_DOC_H_

#include <memory>

#include "schema/structure.h"
#include "xml/dom.h"

namespace xdb::schema {

/// Reserved annotation namespace and prefix.
inline constexpr std::string_view kSampleNs = "http://xdb.example.org/xdb/sample";
inline constexpr std::string_view kSamplePrefix = "xdbs";

/// Annotation attribute names (QNames carry the kSamplePrefix prefix).
inline constexpr std::string_view kAttrGroup = "xdbs:group";           // choice|all
inline constexpr std::string_view kAttrMinOccurs = "xdbs:minOccurs";   // "0"
inline constexpr std::string_view kAttrMaxOccurs = "xdbs:maxOccurs";   // "unbounded"|N
inline constexpr std::string_view kAttrRecursive = "xdbs:recursive";   // "true"
inline constexpr std::string_view kAttrText = "xdbs:text";             // "true"

/// Placeholder value used for sample text nodes and attribute values. The
/// partial evaluator never relies on it (content predicates are assumed
/// true, §4.3), but it keeps the sample document well-formed and non-empty.
inline constexpr std::string_view kSampleTextValue = "?";

/// Generates the annotated sample document for `info`. Each declared child
/// appears exactly once; repeating/optional/choice/recursive facts are
/// recorded via the annotation attributes above.
std::unique_ptr<xml::Document> GenerateSampleDocument(const StructuralInfo& info);

/// True when `attr_qname` is one of the reserved annotation attributes.
bool IsAnnotationAttribute(std::string_view attr_qname);

}  // namespace xdb::schema

#endif  // XDB_SCHEMA_SAMPLE_DOC_H_
