#include "common/governor.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

// Sanitizer instrumentation inflates the recursive engines' stack frames
// (the XSLT interpreter most of all) far past what an 8 MiB thread stack
// fits at the release-build caps, so the depth defaults scale down when
// ASan/TSan is active. XDB_MAX_*_DEPTH still overrides either way.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define XDB_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define XDB_SANITIZER_BUILD 1
#endif
#endif

namespace xdb::governor {

namespace {

#ifdef XDB_SANITIZER_BUILD
constexpr int kDefaultMaxTemplateDepth = 512;
constexpr int kDefaultMaxXmlDepth = 512;
#else
constexpr int kDefaultMaxTemplateDepth = 2000;
constexpr int kDefaultMaxXmlDepth = 1000;
#endif

/// Reads an integral env var once per process; `fallback` on unset or
/// unparsable values.
int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(raw, raw + std::string_view(raw).size(), value);
  if (ec != std::errc() || *ptr != '\0') return fallback;
  return value;
}

uint64_t EnvByteSize(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  uint64_t bytes = 0;
  if (!ParseByteSize(raw, &bytes)) return fallback;
  return bytes;
}

}  // namespace

void ExecBudget::set_timeout_ms(int64_t ms) {
  if (ms <= 0) {
    has_deadline_ = false;
    return;
  }
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

bool ExecBudget::active() const {
  return has_deadline_ || cancel_ != nullptr || mem_limit_ != 0 ||
         out_limit_ != 0 || tick_limit_ != 0 || max_template_depth_ > 0;
}

int ExecBudget::max_template_depth() const {
  return max_template_depth_ > 0 ? max_template_depth_ : MaxTemplateDepth();
}

Status ExecBudget::Trip(Status status, std::atomic<bool>* flag) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  if (!tripped_.load(std::memory_order_relaxed)) {
    trip_status_ = std::move(status);
    if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
    tripped_.store(true, std::memory_order_release);
  }
  return trip_status_;
}

Status ExecBudget::trip_status() const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  return trip_status_;
}

Status ExecBudget::Admit(uint64_t tick_delta, int64_t mem_delta,
                         uint64_t out_delta) {
  uint64_t ticks = tick_delta != 0
                       ? ticks_.fetch_add(tick_delta,
                                          std::memory_order_relaxed) +
                             tick_delta
                       : ticks_.load(std::memory_order_relaxed);
  int64_t mem = mem_delta != 0
                    ? mem_bytes_.fetch_add(mem_delta,
                                           std::memory_order_relaxed) +
                          mem_delta
                    : mem_bytes_.load(std::memory_order_relaxed);
  if (mem_delta > 0) {
    uint64_t observed = mem > 0 ? static_cast<uint64_t>(mem) : 0;
    uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
    while (observed > peak && !mem_peak_.compare_exchange_weak(
                                  peak, observed, std::memory_order_relaxed)) {
    }
  }
  uint64_t out = out_delta != 0
                     ? out_bytes_.fetch_add(out_delta,
                                            std::memory_order_relaxed) +
                           out_delta
                     : out_bytes_.load(std::memory_order_relaxed);

  if (tripped_.load(std::memory_order_acquire)) return trip_status();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Trip(Status::Cancelled("execution cancelled by caller"),
                &cancelled_flag_);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::ResourceExhausted("execution deadline exceeded"),
                &timed_out_);
  }
  if (mem_limit_ != 0 && mem > 0 && static_cast<uint64_t>(mem) > mem_limit_) {
    return Trip(Status::ResourceExhausted(
                    "memory budget exceeded (" + std::to_string(mem) + " > " +
                    std::to_string(mem_limit_) + " bytes)"),
                nullptr);
  }
  if (out_limit_ != 0 && out > out_limit_) {
    return Trip(Status::ResourceExhausted(
                    "output budget exceeded (" + std::to_string(out) + " > " +
                    std::to_string(out_limit_) + " bytes)"),
                nullptr);
  }
  if (tick_limit_ != 0 && ticks > tick_limit_) {
    return Trip(Status::ResourceExhausted(
                    "tick budget exceeded (" + std::to_string(ticks) + " > " +
                    std::to_string(tick_limit_) + ")"),
                nullptr);
  }
  return Status::OK();
}

void ExecBudget::AdmitRelaxed(uint64_t tick_delta, int64_t mem_delta) {
  if (tick_delta != 0) ticks_.fetch_add(tick_delta, std::memory_order_relaxed);
  if (mem_delta != 0) mem_bytes_.fetch_add(mem_delta, std::memory_order_relaxed);
}

int BudgetScope::max_template_depth() const {
  return budget_ != nullptr ? budget_->max_template_depth()
                            : MaxTemplateDepth();
}

int MaxTemplateDepth() {
  static const int depth = [] {
    int64_t v = EnvInt64("XDB_MAX_TEMPLATE_DEPTH", kDefaultMaxTemplateDepth);
    return v > 0 ? static_cast<int>(v) : kDefaultMaxTemplateDepth;
  }();
  return depth;
}

int MaxXmlDepth() {
  static const int depth = [] {
    int64_t v = EnvInt64("XDB_MAX_XML_DEPTH", kDefaultMaxXmlDepth);
    return v > 0 ? static_cast<int>(v) : kDefaultMaxXmlDepth;
  }();
  return depth;
}

uint64_t MaxXmlInputBytes() {
  static const uint64_t bytes =
      EnvByteSize("XDB_MAX_XML_BYTES", uint64_t{1} << 30);
  return bytes;
}

int64_t EnvDefaultTimeoutMs() {
  static const int64_t ms = [] {
    int64_t v = EnvInt64("XDB_TIMEOUT_MS", 0);
    return v > 0 ? v : 0;
  }();
  return ms;
}

uint64_t EnvDefaultMemBudgetBytes() {
  static const uint64_t bytes = EnvByteSize("XDB_MEM_BUDGET", 0);
  return bytes;
}

bool ParseByteSize(const std::string& text, uint64_t* bytes) {
  if (text.empty()) return false;
  size_t len = text.size();
  uint64_t multiplier = 1;
  switch (std::toupper(static_cast<unsigned char>(text[len - 1]))) {
    case 'K':
      multiplier = uint64_t{1} << 10;
      --len;
      break;
    case 'M':
      multiplier = uint64_t{1} << 20;
      --len;
      break;
    case 'G':
      multiplier = uint64_t{1} << 30;
      --len;
      break;
    default:
      break;
  }
  if (len == 0) return false;
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + len, value);
  if (ec != std::errc() || ptr != text.data() + len) return false;
  *bytes = value * multiplier;
  return true;
}

}  // namespace xdb::governor
