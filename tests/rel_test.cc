#include <gtest/gtest.h>

#include <random>

#include "rel/btree.h"
#include "rel/catalog.h"
#include "rel/exec.h"
#include "rel/expr.h"
#include "rel/publish.h"
#include "xml/serializer.h"

namespace xdb::rel {
namespace {

TEST(DatumTest, TypesAndConversions) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_EQ(Datum(static_cast<int64_t>(7)).ToString(), "7");
  EXPECT_EQ(Datum(2.5).ToString(), "2.5");
  EXPECT_EQ(Datum("x").ToString(), "x");
  EXPECT_DOUBLE_EQ(Datum("3.5").ToDouble(), 3.5);
  EXPECT_TRUE(std::isnan(Datum("abc").ToDouble()));
  EXPECT_TRUE(std::isnan(Datum().ToDouble()));
}

TEST(DatumTest, Ordering) {
  EXPECT_LT(Datum(static_cast<int64_t>(1)).Compare(Datum(static_cast<int64_t>(2))), 0);
  EXPECT_EQ(Datum(static_cast<int64_t>(2)).Compare(Datum(2.0)), 0);
  EXPECT_LT(Datum(1.5).Compare(Datum(static_cast<int64_t>(2))), 0);
  EXPECT_LT(Datum("a").Compare(Datum("b")), 0);
  EXPECT_LT(Datum().Compare(Datum("a")), 0);  // NULLs first
  EXPECT_EQ(Datum("10").Compare(Datum(static_cast<int64_t>(10))), 0);
}

TEST(DatumTest, NumericallyEqualStringsOfDifferentFormStayDistinct) {
  // Equality must not conflate distinct text that parses to the same double:
  // the effective key is (numeric value, canonical text).
  EXPECT_NE(Datum("01").Compare(Datum("1")), 0);
  EXPECT_NE(Datum("007").Compare(Datum("7")), 0);
  EXPECT_NE(Datum("1.0").Compare(Datum("1")), 0);
  EXPECT_NE(Datum("1e2").Compare(Datum("100")), 0);
  EXPECT_NE(Datum(" 7").Compare(Datum("7")), 0);  // whitespace is not numeric
  // A typed bound still matches the text it prints as, which is what the
  // shredded numeric index probe relies on.
  EXPECT_EQ(Datum("9").Compare(Datum(static_cast<int64_t>(9))), 0);
  EXPECT_NE(Datum("09").Compare(Datum(static_cast<int64_t>(9))), 0);
  // Value still dominates the order; text only breaks exact-value ties, so
  // the order stays total and transitive.
  EXPECT_LT(Datum("01").Compare(Datum("2")), 0);
  EXPECT_LT(Datum("1").Compare(Datum("01")) *
                Datum("01").Compare(Datum("1")),
            0);  // antisymmetric
}

TEST(BTreeTest, InsertAndPointLookup) {
  BTreeIndex index(8);
  for (int i = 0; i < 100; ++i) {
    index.Insert(Datum(static_cast<int64_t>(i * 3 % 97)), i);
  }
  EXPECT_EQ(index.entry_count(), 100u);
  std::vector<int64_t> out;
  // 3i = 6 (mod 97) has two solutions in [0, 100): i = 2 and i = 99.
  index.Lookup(Datum(static_cast<int64_t>(6)), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 99);
}

TEST(BTreeTest, RangeScanOrderedAndBounded) {
  BTreeIndex index(8);
  std::mt19937 rng(42);
  std::vector<int> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(i);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int k : keys) index.Insert(Datum(static_cast<int64_t>(k)), k);
  EXPECT_GT(index.height(), 1);

  std::vector<int64_t> out;
  Bound lo{Datum(static_cast<int64_t>(100)), true};
  Bound hi{Datum(static_cast<int64_t>(110)), false};
  index.Scan(&lo, &hi, &out);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], 100 + i);

  out.clear();
  index.Scan(nullptr, nullptr, &out);
  ASSERT_EQ(out.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex index(4);
  for (int i = 0; i < 200; ++i) {
    index.Insert(Datum(static_cast<int64_t>(i % 10)), i);
  }
  std::vector<int64_t> out;
  index.Lookup(Datum(static_cast<int64_t>(3)), &out);
  EXPECT_EQ(out.size(), 20u);
  for (int64_t id : out) EXPECT_EQ(id % 10, 3);
}

TEST(BTreeTest, StringKeysAndOpenRanges) {
  BTreeIndex index(4);
  const char* words[] = {"delta", "alpha", "echo", "bravo", "charlie"};
  for (int i = 0; i < 5; ++i) index.Insert(Datum(words[i]), i);
  std::vector<int64_t> out;
  Bound lo{Datum("bravo"), false};  // exclusive
  index.Scan(&lo, nullptr, &out);
  ASSERT_EQ(out.size(), 3u);  // charlie, delta, echo
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 2);
}

TEST(BTreeTest, LargeScaleHeight) {
  BTreeIndex index(64);
  for (int i = 0; i < 100000; ++i) {
    index.Insert(Datum(static_cast<int64_t>(i)), i);
  }
  EXPECT_EQ(index.entry_count(), 100000u);
  EXPECT_GE(index.height(), 3);
  std::vector<int64_t> out;
  Bound lo{Datum(static_cast<int64_t>(99990)), true};
  index.Scan(&lo, nullptr, &out);
  EXPECT_EQ(out.size(), 10u);
}

// ---------------------------------------------------------------------------

class RelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // The paper's Tables 1-2.
    auto dept = catalog_.CreateTable(
        "dept", Schema({{"deptno", DataType::kInt},
                        {"dname", DataType::kString},
                        {"loc", DataType::kString}}));
    ASSERT_TRUE(dept.ok());
    (*dept)->Insert({Datum(int64_t{10}), Datum("ACCOUNTING"), Datum("NEW YORK")});
    (*dept)->Insert({Datum(int64_t{40}), Datum("OPERATIONS"), Datum("BOSTON")});

    auto emp = catalog_.CreateTable(
        "emp", Schema({{"empno", DataType::kInt},
                       {"ename", DataType::kString},
                       {"job", DataType::kString},
                       {"sal", DataType::kInt},
                       {"deptno", DataType::kInt}}));
    ASSERT_TRUE(emp.ok());
    (*emp)->Insert({Datum(int64_t{7782}), Datum("CLARK"), Datum("MANAGER"),
                    Datum(int64_t{2450}), Datum(int64_t{10})});
    (*emp)->Insert({Datum(int64_t{7934}), Datum("MILLER"), Datum("CLERK"),
                    Datum(int64_t{1300}), Datum(int64_t{10})});
    (*emp)->Insert({Datum(int64_t{7954}), Datum("SMITH"), Datum("VP"),
                    Datum(int64_t{4900}), Datum(int64_t{40})});
    ASSERT_TRUE((*emp)->CreateIndex("sal").ok());
  }

  std::unique_ptr<PublishSpec> DeptEmpSpec() {
    auto dept = PublishSpec::Element("dept");
    dept->AddChild(PublishSpec::Element("dname"))
        ->AddChild(PublishSpec::Column("dname"));
    dept->AddChild(PublishSpec::Element("loc"))
        ->AddChild(PublishSpec::Column("loc"));
    auto emp_elem = PublishSpec::Element("emp");
    emp_elem->AddChild(PublishSpec::Element("empno"))
        ->AddChild(PublishSpec::Column("empno"));
    emp_elem->AddChild(PublishSpec::Element("ename"))
        ->AddChild(PublishSpec::Column("ename"));
    emp_elem->AddChild(PublishSpec::Element("sal"))
        ->AddChild(PublishSpec::Column("sal"));
    auto employees = PublishSpec::Element("employees");
    employees->AddChild(
        PublishSpec::Nested("emp", "deptno", "deptno", std::move(emp_elem)));
    dept->children.push_back(std::move(employees));
    return dept;
  }

  Catalog catalog_;
};

TEST_F(RelFixture, SeqScanAndFilter) {
  Table* emp = *catalog_.GetTable("emp");
  // WHERE sal > 2000
  auto pred = std::make_unique<BinaryRelExpr>(
      RelOp::kGt, std::make_unique<ColumnRefExpr>(0, 3, "emp.sal"),
      std::make_unique<ConstExpr>(Datum(int64_t{2000})));
  FilterNode plan(PlanPtr(new SeqScanNode(emp)), std::move(pred));
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(plan, ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1].ToString(), "CLARK");
  EXPECT_EQ((*rows)[1][1].ToString(), "SMITH");
}

TEST_F(RelFixture, IndexRangeScan) {
  Table* emp = *catalog_.GetTable("emp");
  IndexRangeScanNode plan(emp, "sal",
                          std::make_unique<ConstExpr>(Datum(int64_t{2000})),
                          /*lo_inclusive=*/false, nullptr, true);
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(plan, ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  // Index order: by sal ascending.
  EXPECT_EQ((*rows)[0][1].ToString(), "CLARK");
  EXPECT_EQ((*rows)[1][1].ToString(), "SMITH");
}

TEST_F(RelFixture, ProjectAndSort) {
  Table* emp = *catalog_.GetTable("emp");
  std::vector<SortNode::Key> keys;
  keys.push_back(SortNode::Key{std::make_unique<ColumnRefExpr>(0, 3, "emp.sal"),
                               /*descending=*/true});
  PlanPtr sorted(new SortNode(PlanPtr(new SeqScanNode(emp)), std::move(keys)));
  std::vector<RelExprPtr> exprs;
  exprs.push_back(std::make_unique<ColumnRefExpr>(0, 1, "emp.ename"));
  ProjectNode plan(std::move(sorted), std::move(exprs));
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(plan, ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].ToString(), "SMITH");
  EXPECT_EQ((*rows)[2][0].ToString(), "MILLER");
}

TEST_F(RelFixture, ScalarAggregates) {
  Table* emp = *catalog_.GetTable("emp");
  ScalarAggNode sum(PlanPtr(new SeqScanNode(emp)), AggKind::kSum,
                    std::make_unique<ColumnRefExpr>(0, 3, "emp.sal"));
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(sum, ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0][0].ToDouble(), 8650.0);

  ScalarAggNode cnt(PlanPtr(new SeqScanNode(emp)), AggKind::kCount, nullptr);
  auto crows = ExecuteAll(cnt, ctx);
  ASSERT_TRUE(crows.ok());
  EXPECT_EQ((*crows)[0][0].AsInt(), 3);
}

TEST_F(RelFixture, XmlElementConstruction) {
  Table* dept = *catalog_.GetTable("dept");
  auto elem = std::make_unique<XmlElementExpr>("dept");
  elem->attributes.emplace_back("no",
                                std::make_unique<ColumnRefExpr>(0, 0, "deptno"));
  auto dname = std::make_unique<XmlElementExpr>("dname");
  dname->children.push_back(std::make_unique<ColumnRefExpr>(0, 1, "dname"));
  elem->children.push_back(std::move(dname));
  std::vector<RelExprPtr> exprs;
  exprs.push_back(std::move(elem));
  ProjectNode plan(PlanPtr(new SeqScanNode(dept)), std::move(exprs));
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(plan, ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(xml::Serialize((*rows)[0][0].AsXml()),
            "<dept no=\"10\"><dname>ACCOUNTING</dname></dept>");
}

TEST_F(RelFixture, PublishingViewProducesTable4) {
  auto view = catalog_.CreatePublishingView("dept_emp", "dept", DeptEmpSpec(),
                                            "dept_content");
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  Table* dept = *catalog_.GetTable("dept");
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  std::vector<std::string> results;
  for (size_t i = 0; i < dept->row_count(); ++i) {
    const Row& row = dept->row(static_cast<int64_t>(i));
    ctx.rows.push_back(&row);
    auto v = (*view)->publish_expr->Eval(ctx);
    ctx.rows.pop_back();
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    results.push_back(xml::Serialize(v->AsXml()));
  }
  // Table 4 row 1.
  EXPECT_EQ(results[0],
            "<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>"
            "<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>"
            "<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>"
            "</employees></dept>");
  // Table 4 row 2.
  EXPECT_EQ(results[1],
            "<dept><dname>OPERATIONS</dname><loc>BOSTON</loc><employees>"
            "<emp><empno>7954</empno><ename>SMITH</ename><sal>4900</sal></emp>"
            "</employees></dept>");
}

TEST_F(RelFixture, PublishStructureDerivation) {
  auto spec = DeptEmpSpec();
  auto info = DerivePublishStructure(*spec);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  const schema::StructuralInfo& s = info->structure;
  EXPECT_EQ(s.root()->name, "dept");
  ASSERT_EQ(s.root()->children.size(), 3u);
  EXPECT_TRUE(s.root()->children[0].elem->has_text);  // dname
  const schema::ElementStructure* employees = s.FindUnique("employees");
  ASSERT_NE(employees, nullptr);
  const schema::ChildRef* emp = employees->FindChild("emp");
  ASSERT_NE(emp, nullptr);
  EXPECT_TRUE(emp->repeating());
  // Provenance: emp element binds to the nested spec scope.
  auto it = info->bindings.find(emp->elem);
  ASSERT_NE(it, info->bindings.end());
  ASSERT_EQ(it->second.nested_chain.size(), 1u);
  EXPECT_EQ(it->second.nested_chain[0]->child_table, "emp");
  // dept element has no nested scope.
  auto root_binding = info->bindings.find(s.root());
  ASSERT_NE(root_binding, info->bindings.end());
  EXPECT_TRUE(root_binding->second.nested_chain.empty());
  // §3.5: empno's only parent is emp.
  EXPECT_EQ(s.ParentsOf("empno").size(), 1u);
}

TEST_F(RelFixture, XmlTransformFunctionalEvaluation) {
  // Functional (no-rewrite) path: materialize view XML, run XSLTVM on it.
  auto view = catalog_.CreatePublishingView("dept_emp", "dept", DeptEmpSpec(),
                                            "dept_content");
  ASSERT_TRUE(view.ok());
  auto ss = xslt::Stylesheet::Parse(
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"dept\"><names><xsl:apply-templates "
      "select=\"employees/emp[sal &gt; 2000]/ename\"/></names></xsl:template>"
      "<xsl:template match=\"ename\"><n><xsl:value-of select=\".\"/></n>"
      "</xsl:template></xsl:stylesheet>");
  ASSERT_TRUE(ss.ok()) << ss.status().ToString();
  auto compiled = xslt::CompiledStylesheet::Compile(**ss);
  ASSERT_TRUE(compiled.ok());
  std::shared_ptr<const xslt::CompiledStylesheet> shared(std::move(*compiled));

  Table* dept = *catalog_.GetTable("dept");
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  const Row& row = dept->row(0);
  ctx.rows.push_back(&row);
  auto xml_val = (*view)->publish_expr->Eval(ctx);
  ASSERT_TRUE(xml_val.ok());
  XmlTransformExpr transform(shared,
                             std::make_unique<ConstExpr>(*xml_val));
  auto out = transform.Eval(ctx);
  ctx.rows.pop_back();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Fragment wrapper serializes its children.
  std::string rendered = xml::SerializeAll(out->AsXml()->children());
  EXPECT_EQ(rendered, "<names><n>CLARK</n></names>");
}

TEST_F(RelFixture, CorrelatedSubqueryInProject) {
  // For each dept: (SELECT COUNT(*) FROM emp WHERE emp.deptno = dept.deptno)
  Table* dept = *catalog_.GetTable("dept");
  Table* emp = *catalog_.GetTable("emp");
  auto corr = std::make_unique<BinaryRelExpr>(
      RelOp::kEq, std::make_unique<ColumnRefExpr>(0, 4, "emp.deptno"),
      std::make_unique<ColumnRefExpr>(1, 0, "dept.deptno"));
  PlanPtr inner(new FilterNode(PlanPtr(new SeqScanNode(emp)), std::move(corr)));
  PlanPtr agg(new ScalarAggNode(std::move(inner), AggKind::kCount, nullptr));
  std::vector<RelExprPtr> exprs;
  exprs.push_back(std::make_unique<ColumnRefExpr>(0, 1, "dept.dname"));
  exprs.push_back(std::make_unique<ScalarSubqueryExpr>(std::move(agg)));
  ProjectNode plan(PlanPtr(new SeqScanNode(dept)), std::move(exprs));
  xml::Document arena;
  ExecCtx ctx;
  ctx.arena = &arena;
  auto rows = ExecuteAll(plan, ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1].AsInt(), 2);  // ACCOUNTING has 2 emps
  EXPECT_EQ((*rows)[1][1].AsInt(), 1);  // OPERATIONS has 1
}

TEST_F(RelFixture, ExplainRendersPlan) {
  Table* emp = *catalog_.GetTable("emp");
  auto pred = std::make_unique<BinaryRelExpr>(
      RelOp::kGt, std::make_unique<ColumnRefExpr>(0, 3, "emp.sal"),
      std::make_unique<ConstExpr>(Datum(int64_t{2000})));
  FilterNode plan(PlanPtr(new SeqScanNode(emp)), std::move(pred));
  std::string text = ExplainPlan(plan);
  EXPECT_NE(text.find("Filter(emp.sal > 2000)"), std::string::npos);
  EXPECT_NE(text.find("SeqScan(emp)"), std::string::npos);
}

TEST_F(RelFixture, CatalogErrors) {
  EXPECT_FALSE(catalog_.GetTable("nope").ok());
  EXPECT_FALSE(catalog_.GetView("nope").ok());
  EXPECT_FALSE(catalog_.CreateTable("dept", Schema()).ok());
  Table* emp = *catalog_.GetTable("emp");
  EXPECT_FALSE(emp->CreateIndex("nocolumn").ok());
  EXPECT_FALSE(emp->Insert({Datum(int64_t{1})}).ok());  // arity mismatch
  EXPECT_FALSE(
      catalog_.CreateXsltView("v", "missing_upstream", "<xsl/>", "c").ok());
}

}  // namespace
}  // namespace xdb::rel
