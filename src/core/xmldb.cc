#include "core/xmldb.h"

#include "rewrite/compose.h"
#include "rewrite/static_type.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xslt/vm.h"

namespace xdb {

using rel::Datum;
using rel::ExecCtx;
using rel::Table;
using rel::XmlView;

const char* ExecutionPathName(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::kSqlRewritten:
      return "sql-rewritten";
    case ExecutionPath::kXQueryRewritten:
      return "xquery-rewritten";
    case ExecutionPath::kFunctional:
      return "functional";
  }
  return "?";
}

namespace {

std::string SerializeDatum(const Datum& d) {
  if (d.type() != rel::DataType::kXml || d.AsXml() == nullptr) return d.ToString();
  xml::Node* n = d.AsXml();
  if (n->local_name() == rel::kFragmentName ||
      n->type() == xml::NodeType::kDocument) {
    return xml::SerializeAll(n->children());
  }
  return xml::Serialize(n);
}

// Applies a compiled stylesheet to an XMLType value (functional path).
Result<Datum> ApplyStylesheet(const xslt::CompiledStylesheet& compiled,
                              const Datum& in, xml::Document* arena) {
  if (in.type() != rel::DataType::kXml || in.AsXml() == nullptr) {
    return Status::TypeError("XMLTransform input is not XMLType");
  }
  xml::Document wrapper;
  xml::Node* source = in.AsXml();
  if (source->type() != xml::NodeType::kDocument && source->parent() == nullptr) {
    if (source->local_name() == rel::kFragmentName) {
      for (xml::Node* c : source->children()) {
        wrapper.root()->AppendChild(wrapper.ImportNode(c));
      }
    } else {
      wrapper.root()->AppendChild(wrapper.ImportNode(source));
    }
    source = wrapper.root();
  }
  xslt::Vm vm(compiled);
  XDB_ASSIGN_OR_RETURN(auto result_doc, vm.Transform(source));
  xml::Node* frag = arena->CreateElement(rel::kFragmentName);
  for (xml::Node* child : result_doc->root()->children()) {
    frag->AppendChild(arena->ImportNode(child));
  }
  return Datum(frag);
}

// Evaluates a parsed XQuery against an XMLType value (plan B).
Result<std::string> ApplyXQuery(const xquery::Query& query, const Datum& in) {
  xml::Document wrapper;
  xml::Node* ctx = in.AsXml();
  if (ctx->type() != xml::NodeType::kDocument) {
    if (ctx->local_name() == rel::kFragmentName) {
      for (xml::Node* c : ctx->children()) {
        wrapper.root()->AppendChild(wrapper.ImportNode(c));
      }
    } else {
      wrapper.root()->AppendChild(wrapper.ImportNode(ctx));
    }
    ctx = wrapper.root();
  }
  xquery::QueryEvaluator qe;
  XDB_ASSIGN_OR_RETURN(auto doc, qe.EvaluateToDocument(query, ctx));
  return xml::Serialize(doc->root());
}

}  // namespace

Status XmlDb::Insert(const std::string& table, rel::Row row) {
  XDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Status XmlDb::CreateIndex(const std::string& table, const std::string& column) {
  XDB_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->CreateIndex(column);
}

Result<const XmlView*> XmlDb::ResolveChain(
    const XmlView* view, std::vector<const XmlView*>* xslt_views) const {
  const XmlView* cur = view;
  std::vector<const XmlView*> reversed;
  while (cur->is_xslt()) {
    reversed.push_back(cur);
    XDB_ASSIGN_OR_RETURN(cur, catalog_.GetView(cur->upstream_view));
  }
  if (!cur->is_publishing()) {
    return Status::Internal("view chain does not end in a publishing view");
  }
  // Application order: innermost (closest to the publishing view) first.
  xslt_views->assign(reversed.rbegin(), reversed.rend());
  return cur;
}

Result<Datum> XmlDb::ViewValueForRow(const XmlView* view, int64_t row_id,
                                     ExecCtx* ctx) {
  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(view, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  const rel::Row& row = base->row(row_id);
  ctx->rows.push_back(&row);
  auto value = pub->publish_expr->Eval(*ctx);
  ctx->rows.pop_back();
  XDB_RETURN_NOT_OK(value.status());
  Datum v = value.MoveValue();
  for (const XmlView* xv : xslt_views) {
    XDB_ASSIGN_OR_RETURN(v, ApplyStylesheet(*xv->compiled_stylesheet, v,
                                            ctx->arena));
  }
  return v;
}

Result<std::vector<std::string>> XmlDb::MaterializeView(const std::string& view) {
  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));
  std::vector<std::string> out;
  for (size_t i = 0; i < base->row_count(); ++i) {
    xml::Document arena;
    ExecCtx ctx;
    ctx.arena = &arena;
    XDB_ASSIGN_OR_RETURN(Datum d,
                         ViewValueForRow(v, static_cast<int64_t>(i), &ctx));
    out.push_back(SerializeDatum(d));
  }
  return out;
}

Result<std::vector<std::string>> XmlDb::TransformView(
    const std::string& view, std::string_view stylesheet_text,
    const ExecOptions& options, ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats();

  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  XDB_ASSIGN_OR_RETURN(auto parsed, xslt::Stylesheet::Parse(stylesheet_text));
  XDB_ASSIGN_OR_RETURN(auto compiled, xslt::CompiledStylesheet::Compile(*parsed));

  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));

  // ---- rewrite pipeline -----------------------------------------------------
  if (options.enable_rewrite && xslt_views.size() <= 1) {
    // Resolve the effective query: either the user stylesheet rewritten over
    // the publishing structure directly, or — for an XSLT view chain (§3.2) —
    // the upstream stylesheet rewritten first, its result structure derived
    // by static typing, the user stylesheet rewritten against *that*, and
    // both queries composed.
    Result<xquery::Query> query = Status::Internal("unset");
    if (xslt_views.empty()) {
      query = rewrite::RewriteXsltToXQuery(*compiled, &pub->info->structure,
                                           options.xslt, &stats->xslt_report);
    } else {
      rewrite::RewriteReport upstream_report;
      auto q1 = rewrite::RewriteXsltToXQuery(
          *xslt_views[0]->compiled_stylesheet, &pub->info->structure,
          options.xslt, &upstream_report);
      if (!q1.ok()) {
        query = q1.status();
      } else {
        auto inferred =
            rewrite::InferResultStructure(*q1, pub->info->structure);
        if (!inferred.ok()) {
          query = inferred.status();
        } else {
          auto q2 = rewrite::RewriteXsltToXQuery(*compiled, &*inferred,
                                                 options.xslt,
                                                 &stats->xslt_report);
          if (!q2.ok()) {
            query = q2.status();
          } else {
            query = rewrite::ComposeQueries(*q1, *q2);
          }
        }
      }
    }
    if (query.ok()) {
      stats->xquery_text = query->ToString();
      if (options.enable_sql_rewrite) {
        auto sql = rewrite::RewriteXQueryToSql(*query, *pub, catalog_, options.sql);
        if (sql.ok()) {
          stats->path = ExecutionPath::kSqlRewritten;
          stats->used_index = sql->used_index;
          stats->predicates_pushed = sql->predicates_pushed;
          stats->sql_text = sql->expr->ToSql();
          std::vector<std::string> out;
          for (size_t i = 0; i < base->row_count(); ++i) {
            xml::Document arena;
            ExecCtx ctx;
            ctx.arena = &arena;
            const rel::Row& row = base->row(static_cast<int64_t>(i));
            ctx.rows.push_back(&row);
            auto d = sql->expr->Eval(ctx);
            ctx.rows.pop_back();
            XDB_RETURN_NOT_OK(d.status());
            out.push_back(SerializeDatum(*d));
          }
          return out;
        }
        stats->fallback_reason = sql.status().message();
      }
      // Plan B: rewritten XQuery over the materialized *publishing* value
      // (for view chains, the composed query re-applies the upstream
      // transformation itself).
      stats->path = ExecutionPath::kXQueryRewritten;
      std::vector<std::string> out;
      for (size_t i = 0; i < base->row_count(); ++i) {
        xml::Document arena;
        ExecCtx ctx;
        ctx.arena = &arena;
        const rel::Row& row = base->row(static_cast<int64_t>(i));
        ctx.rows.push_back(&row);
        auto value = pub->publish_expr->Eval(ctx);
        ctx.rows.pop_back();
        XDB_RETURN_NOT_OK(value.status());
        XDB_ASSIGN_OR_RETURN(std::string s, ApplyXQuery(*query, *value));
        out.push_back(std::move(s));
      }
      return out;
    }
    stats->fallback_reason = query.status().message();
  } else if (options.enable_rewrite) {
    stats->fallback_reason =
        "multi-level XSLT view chains are evaluated functionally";
  }

  // ---- plan C: functional (the paper's "no rewrite") --------------------------
  stats->path = ExecutionPath::kFunctional;
  std::vector<std::string> out;
  for (size_t i = 0; i < base->row_count(); ++i) {
    xml::Document arena;
    ExecCtx ctx;
    ctx.arena = &arena;
    XDB_ASSIGN_OR_RETURN(Datum value,
                         ViewValueForRow(v, static_cast<int64_t>(i), &ctx));
    XDB_ASSIGN_OR_RETURN(Datum result, ApplyStylesheet(*compiled, value, &arena));
    out.push_back(SerializeDatum(result));
  }
  return out;
}

Result<std::vector<std::string>> XmlDb::QueryView(const std::string& view,
                                                  std::string_view xquery_text,
                                                  const ExecOptions& options,
                                                  ExecStats* stats) {
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats();

  XDB_ASSIGN_OR_RETURN(const XmlView* v, catalog_.GetView(view));
  XDB_ASSIGN_OR_RETURN(xquery::Query user_query, xquery::ParseQuery(xquery_text));

  std::vector<const XmlView*> xslt_views;
  XDB_ASSIGN_OR_RETURN(const XmlView* pub, ResolveChain(v, &xslt_views));
  XDB_ASSIGN_OR_RETURN(Table * base, catalog_.GetTable(pub->base_table));

  if (options.enable_rewrite && xslt_views.size() <= 1) {
    // Compose through a single XSLT view (Example 2), or use the user query
    // directly over a publishing view.
    Status compose_status = Status::OK();
    std::unique_ptr<xquery::Query> composed;
    if (xslt_views.empty()) {
      composed = std::make_unique<xquery::Query>();
      for (const auto& decl : user_query.variables) {
        composed->variables.push_back(
            xquery::VarDecl{decl.name, decl.expr->Clone()});
      }
      for (const auto& f : user_query.functions) {
        xquery::FunctionDecl nf;
        nf.name = f.name;
        nf.params = f.params;
        nf.body = f.body->Clone();
        composed->functions.push_back(std::move(nf));
      }
      composed->body = user_query.body->Clone();
    } else {
      auto view_query = rewrite::RewriteXsltToXQuery(
          *xslt_views[0]->compiled_stylesheet, &pub->info->structure,
          options.xslt, &stats->xslt_report);
      if (view_query.ok()) {
        auto c = rewrite::ComposeQueries(*view_query, user_query);
        if (c.ok()) {
          composed = std::make_unique<xquery::Query>(c.MoveValue());
        } else {
          compose_status = c.status();
        }
      } else {
        compose_status = view_query.status();
      }
    }
    if (composed != nullptr) {
      stats->xquery_text = composed->ToString();
      if (options.enable_sql_rewrite) {
        auto sql =
            rewrite::RewriteXQueryToSql(*composed, *pub, catalog_, options.sql);
        if (sql.ok()) {
          stats->path = ExecutionPath::kSqlRewritten;
          stats->used_index = sql->used_index;
          stats->predicates_pushed = sql->predicates_pushed;
          stats->sql_text = sql->expr->ToSql();
          std::vector<std::string> out;
          for (size_t i = 0; i < base->row_count(); ++i) {
            xml::Document arena;
            ExecCtx ctx;
            ctx.arena = &arena;
            const rel::Row& row = base->row(static_cast<int64_t>(i));
            ctx.rows.push_back(&row);
            auto d = sql->expr->Eval(ctx);
            ctx.rows.pop_back();
            XDB_RETURN_NOT_OK(d.status());
            out.push_back(SerializeDatum(*d));
          }
          return out;
        }
        stats->fallback_reason = sql.status().message();
      }
      // Plan B: composed XQuery over the publishing view's value.
      stats->path = ExecutionPath::kXQueryRewritten;
      std::vector<std::string> out;
      for (size_t i = 0; i < base->row_count(); ++i) {
        xml::Document arena;
        ExecCtx ctx;
        ctx.arena = &arena;
        // The composed query navigates from the *publishing* value.
        std::vector<const XmlView*> none;
        XDB_ASSIGN_OR_RETURN(const XmlView* p2, ResolveChain(pub, &none));
        (void)p2;
        const rel::Row& row = base->row(static_cast<int64_t>(i));
        ctx.rows.push_back(&row);
        auto value = pub->publish_expr->Eval(ctx);
        ctx.rows.pop_back();
        XDB_RETURN_NOT_OK(value.status());
        XDB_ASSIGN_OR_RETURN(std::string s, ApplyXQuery(*composed, *value));
        out.push_back(std::move(s));
      }
      return out;
    }
    stats->fallback_reason = compose_status.message();
  } else if (options.enable_rewrite) {
    stats->fallback_reason = "multi-level XSLT view chains are evaluated "
                             "functionally";
  }

  // Functional: user XQuery over the fully materialized view value.
  stats->path = ExecutionPath::kFunctional;
  std::vector<std::string> out;
  for (size_t i = 0; i < base->row_count(); ++i) {
    xml::Document arena;
    ExecCtx ctx;
    ctx.arena = &arena;
    XDB_ASSIGN_OR_RETURN(Datum d,
                         ViewValueForRow(v, static_cast<int64_t>(i), &ctx));
    XDB_ASSIGN_OR_RETURN(std::string s, ApplyXQuery(user_query, d));
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace xdb
