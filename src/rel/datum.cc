#include "rel/datum.h"

#include <cmath>
#include <cstdlib>

#include "common/strings.h"
#include "xml/serializer.h"

namespace xdb::rel {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kXml:
      return "XMLTYPE";
  }
  return "?";
}

double Datum::ToDouble() const {
  switch (type()) {
    case DataType::kNull:
      return std::nan("");
    case DataType::kInt:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    case DataType::kString: {
      char* end = nullptr;
      const std::string& s = AsString();
      double d = std::strtod(s.c_str(), &end);
      if (end == s.c_str()) return std::nan("");
      return d;
    }
    case DataType::kXml:
      return std::nan("");
  }
  return std::nan("");
}

std::string Datum::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kDouble:
      return FormatXPathNumber(AsDouble());
    case DataType::kString:
      return AsString();
    case DataType::kXml:
      return AsXml() != nullptr ? xml::Serialize(AsXml()) : "";
  }
  return "";
}

int Datum::Compare(const Datum& other) const {
  bool lnull = is_null(), rnull = other.is_null();
  if (lnull || rnull) return lnull == rnull ? 0 : (lnull ? -1 : 1);

  auto numeric = [](const Datum& d) {
    return d.type() == DataType::kInt || d.type() == DataType::kDouble;
  };
  if (numeric(*this) && numeric(other)) {
    // Avoid double rounding for large ints: compare ints directly.
    if (type() == DataType::kInt && other.type() == DataType::kInt) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble(), b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (numeric(*this) != numeric(other)) {
    // Mixed: try numeric comparison, else numeric sorts first.
    double a = ToDouble(), b = other.ToDouble();
    if (!std::isnan(a) && !std::isnan(b)) return a < b ? -1 : (a > b ? 1 : 0);
    return numeric(*this) ? -1 : 1;
  }
  return ToString().compare(other.ToString());
}

}  // namespace xdb::rel
