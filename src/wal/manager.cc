#include "wal/manager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/faultpoints.h"
#include "common/governor.h"

namespace xdb::wal {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

const char* SyncModeName(SyncMode m) {
  switch (m) {
    case SyncMode::kOff:
      return "off";
    case SyncMode::kBatch:
      return "batch";
    case SyncMode::kAlways:
      return "always";
  }
  return "unknown";
}

bool ParseSyncMode(const std::string& text, SyncMode* mode) {
  if (text == "off") {
    *mode = SyncMode::kOff;
  } else if (text == "batch") {
    *mode = SyncMode::kBatch;
  } else if (text == "always") {
    *mode = SyncMode::kAlways;
  } else {
    return false;
  }
  return true;
}

Status EnsureDataDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("durability requires a data directory");
  }
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    partial = dir.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir '" + partial + "': " +
                              std::strerror(errno));
    }
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("data directory '" + dir +
                                   "' is not a directory");
  }
  return Status::OK();
}

DurabilityOptions DurabilityOptions::FromEnv() {
  DurabilityOptions o;
  if (const char* dir = std::getenv("XDB_DATA_DIR"); dir != nullptr) {
    o.data_dir = dir;
  }
  if (const char* sync = std::getenv("XDB_WAL_SYNC");
      sync != nullptr && *sync != '\0') {
    (void)ParseSyncMode(sync, &o.sync);
  }
  if (const char* bytes = std::getenv("XDB_CHECKPOINT_BYTES");
      bytes != nullptr && *bytes != '\0') {
    uint64_t parsed = 0;
    if (governor::ParseByteSize(bytes, &parsed)) o.checkpoint_bytes = parsed;
  }
  return o;
}

Result<std::unique_ptr<Manager>> Manager::Open(const DurabilityOptions& options,
                                               uint64_t next_lsn,
                                               uint64_t next_batch_id,
                                               uint64_t commits) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("durability requires a data directory");
  }
  std::string path = WalPath(options.data_dir);
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<LogWriter> writer,
                       LogWriter::Open(path, FileSize(path)));
  return std::unique_ptr<Manager>(new Manager(options, std::move(writer),
                                              next_lsn == 0 ? 1 : next_lsn,
                                              next_batch_id == 0 ? 1 : next_batch_id,
                                              commits));
}

Status Manager::Append(Record record) {
  record.lsn = next_lsn_;
  record.batch_id = batch_id_;
  XDB_ASSIGN_OR_RETURN(std::string payload, EncodeRecord(record));
  uint64_t before = writer_->size();
  XDB_RETURN_NOT_OK(writer_->AppendFrame(payload));
  next_lsn_ += 1;
  metrics_.wal_bytes += writer_->size() - before;
  return Status::OK();
}

Result<uint64_t> Manager::BeginBatch() {
  if (in_batch_) {
    return Status::Internal("WAL batch already open (writer not serialized?)");
  }
  batch_id_ = next_batch_id_++;
  in_batch_ = true;
  batch_start_offset_ = writer_->size();
  Record r;
  r.type = RecordType::kBatchBegin;
  Status st = Append(std::move(r));
  if (!st.ok()) {
    in_batch_ = false;
    return st;
  }
  return batch_id_;
}

#define XDB_WAL_REQUIRE_BATCH()                                         \
  do {                                                                  \
    if (!in_batch_) {                                                   \
      return Status::Internal("WAL record logged outside a batch");     \
    }                                                                   \
  } while (false)

Status Manager::LogRowBatch(const std::string& table, uint64_t first_rowid,
                            const std::vector<rel::Row>& rows) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kRowBatch;
  r.table = table;
  r.first_rowid = first_rowid;
  r.rows = rows;
  return Append(std::move(r));
}

Status Manager::LogCreateIndex(const std::string& table,
                               const std::string& column) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kCreateIndex;
  r.table = table;
  r.column = column;
  return Append(std::move(r));
}

Status Manager::LogRegisterSchema(const std::string& view,
                                  const std::string& structure_blob,
                                  uint64_t batch_rows,
                                  const std::vector<std::string>& value_indexes) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kRegisterSchema;
  r.view = view;
  r.text = structure_blob;
  r.batch_rows = batch_rows;
  r.value_indexes = value_indexes;
  return Append(std::move(r));
}

Status Manager::LogCreateXsltView(const std::string& view,
                                  const std::string& upstream,
                                  const std::string& xml_column,
                                  const std::string& stylesheet) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kCreateXsltView;
  r.view = view;
  r.upstream = upstream;
  r.xml_column = xml_column;
  r.text = stylesheet;
  return Append(std::move(r));
}

Status Manager::LogDropTable(const std::string& table) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kDropTable;
  r.table = table;
  return Append(std::move(r));
}

Status Manager::LogStats(const std::string& table,
                         const rel::TableStats& stats) {
  XDB_WAL_REQUIRE_BATCH();
  Record r;
  r.type = RecordType::kStats;
  r.table = table;
  r.stats = stats;
  return Append(std::move(r));
}

#undef XDB_WAL_REQUIRE_BATCH

Status Manager::SyncLog() {
  XDB_RETURN_NOT_OK(writer_->Sync());
  metrics_.fsyncs += 1;
  last_sync_us_ = NowUs();
  return Status::OK();
}

Status Manager::Commit() {
  if (!in_batch_) {
    return Status::Internal("WAL commit without an open batch");
  }
  int64_t t0 = NowUs();
  Status st = [&]() -> Status {
    Record r;
    r.type = RecordType::kCommit;
    r.epoch = commits_ + 1;
    XDB_RETURN_NOT_OK(Append(std::move(r)));
    switch (options_.sync) {
      case SyncMode::kAlways:
        return SyncLog();
      case SyncMode::kBatch:
        // Group commit: the first commit after a quiet period syncs; a burst
        // within the window rides the next commit's (or checkpoint's) fsync.
        if (NowUs() - last_sync_us_ >= options_.group_window_us) {
          return SyncLog();
        }
        break;
      case SyncMode::kOff:
        break;
    }
    return Status::OK();
  }();
  if (!st.ok()) {
    // The commit record may be partially durable (a failed fsync promises
    // nothing either way). Scrub the whole batch so the log matches the
    // in-memory rollback the caller performs on this error.
    uint64_t scrubbed = writer_->size() - batch_start_offset_;
    if (writer_->TruncateTo(batch_start_offset_).ok()) {
      metrics_.wal_bytes -= scrubbed;
    }
    in_batch_ = false;
    batch_id_ = 0;
    return st;
  }
  in_batch_ = false;
  batch_id_ = 0;
  commits_ += 1;
  metrics_.commits += 1;
  metrics_.commit_latency_us += static_cast<uint64_t>(NowUs() - t0);
  return Status::OK();
}

void Manager::Abort() {
  if (!in_batch_) return;
  // Prefer scrubbing the batch outright (reclaims the space and spares
  // recovery the replay-then-rollback work); fall back to an explicit abort
  // record — and if even that fails, the missing commit still rolls the
  // batch back at recovery.
  uint64_t scrubbed = writer_->size() - batch_start_offset_;
  if (writer_->TruncateTo(batch_start_offset_).ok()) {
    metrics_.wal_bytes -= scrubbed;
  } else {
    Record r;
    r.type = RecordType::kAbort;
    (void)Append(std::move(r));
  }
  in_batch_ = false;
  batch_id_ = 0;
}

bool Manager::ShouldCheckpoint() const {
  return options_.checkpoint_bytes > 0 &&
         writer_->size() >= options_.checkpoint_bytes;
}

Status Manager::WriteCheckpoint(std::vector<Record> body) {
  if (in_batch_) {
    return Status::Internal("checkpoint inside an open WAL batch");
  }
  const std::string tmp = CheckpointTmpPath(options_.data_dir);
  const std::string final_path = CheckpointPath(options_.data_dir);
  {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<LogWriter> ck,
                         LogWriter::Open(tmp, 0));
    // Checkpoint records live in a private LSN space starting at 1; the
    // header carries the *log* watermark this state covers.
    uint64_t ck_lsn = 1;
    Record header;
    header.type = RecordType::kCheckpointHeader;
    header.last_lsn = next_lsn_ - 1;
    header.commits = commits_;
    header.epoch = commits_;
    auto append = [&](Record rec) -> Status {
      XDB_FAULT_POINT("wal.checkpoint_write");
      rec.lsn = ck_lsn++;
      rec.batch_id = 0;
      XDB_ASSIGN_OR_RETURN(std::string payload, EncodeRecord(rec));
      return ck->AppendFrame(payload);
    };
    XDB_RETURN_NOT_OK(append(std::move(header)));
    for (Record& rec : body) XDB_RETURN_NOT_OK(append(std::move(rec)));
    Record footer;
    footer.type = RecordType::kCheckpointFooter;
    footer.record_count = static_cast<uint64_t>(body.size()) + 2;
    XDB_RETURN_NOT_OK(append(std::move(footer)));
    XDB_RETURN_NOT_OK(ck->Sync());
    metrics_.fsyncs += 1;
  }
  // Atomic cutover: after the rename either the old or the new checkpoint
  // is the one complete file named checkpoint.xck.
  {
    XDB_FAULT_POINT("wal.checkpoint_rename");
    if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
      return Status::Internal(std::string("checkpoint rename: ") +
                              std::strerror(errno));
    }
  }
  XDB_RETURN_NOT_OK(SyncParentDir(final_path));
  // The checkpoint now covers every logged record: drop the log. A crash
  // before this point replays the (now redundant, LSN-skipped) tail.
  XDB_RETURN_NOT_OK(writer_->Reset());
  metrics_.fsyncs += 1;  // Reset fsyncs the truncated log
  metrics_.checkpoints += 1;
  return Status::OK();
}

}  // namespace xdb::wal
